"""Online performance monitoring with dynamic component replacement.

The paper's closing vision (Section 6): "dynamic performance optimization
which uses online performance monitoring to determine when performance
expectations are not being met and new model-guided decisions of component
use need to take place."

This example stages exactly that scenario:

1. the application is assembled with **GodunovFlux** and an expectation
   model calibrated for **EFMFlux** (as if the deployment environment no
   longer matches the model repository);
2. the :class:`~repro.perf.online.OnlineMonitor` watches the flux proxy's
   recent invocations, detects that expectations are violated,
3. consults the candidate models, and hot-swaps the flux component through
   the framework — after which the drift clears.

Run:  python examples/online_monitoring.py
"""

import numpy as np

from repro.cca import Framework
from repro.euler.efm import EFMFluxComponent, EFMKernel
from repro.euler.godunov import GodunovKernel
from repro.euler.ports import FluxPort
from repro.euler.states import StatesKernel
from repro.harness.sweeps import measure_mode_sweep, q_grid, synthetic_patch_stack
from repro.models.performance import build_model
from repro.perf import Candidate, Expectation, Mastermind, OnlineMonitor, insert_proxy
from repro.tau.component import TauMeasurementComponent
from repro.cca.component import Component


class FluxCaller(Component):
    """Stand-in workload driver invoking the flux port patch by patch."""

    def set_services(self, sv):
        self.sv = sv
        sv.register_uses_port("flux", FluxPort)

    def drive(self, qs):
        states = StatesKernel()
        flux = self.sv.get_port("flux")
        for q in qs:
            U = synthetic_patch_stack(q, seed=q)
            for mode in ("x", "y"):
                WL, WR = states.compute(U, mode)
                flux.compute(WL, WR, mode)


def fit_kernel_model(name, kernel, quality=1.0):
    states = StatesKernel()
    cache = {}

    def invoke(U, mode):
        key = (id(U), mode)
        if key not in cache:
            cache[key] = states.compute(U, mode)
        wl, wr = cache[key]
        return kernel.compute(wl, wr, mode)

    samples = measure_mode_sweep(invoke, q_grid(5, 2_000, 40_000),
                                 nprocs=1, repeats=3)
    q, t = samples.mode_averaged()
    return build_model(name, q, t, mean_families=("linear", "power"),
                       quality=quality)


def main() -> None:
    print("calibrating per-implementation models offline...")
    model_efm = fit_kernel_model("EFMFlux", EFMKernel(),
                                 EFMFluxComponent.QUALITY)
    model_god = fit_kernel_model("GodunovFlux", GodunovKernel())
    print(f"  EFM:     {model_efm.mean_fit.formula}")
    print(f"  Godunov: {model_god.mean_fit.formula}")

    # Deploy with GodunovFlux, but expect EFMFlux performance.
    from repro.euler.godunov import GodunovFluxComponent

    fw = Framework()
    fw.create("flux", GodunovFluxComponent)
    caller = fw.create("caller", FluxCaller)
    fw.create("tau", TauMeasurementComponent)
    mm = fw.create("mastermind", Mastermind)
    fw.connect("caller", "flux", "flux", "flux")
    fw.connect("mastermind", "measurement", "tau", "measurement")
    insert_proxy(fw, "caller", "flux", "mastermind", label="g_proxy")

    qs = [10_000] * 8
    print("\nrunning the workload (GodunovFlux deployed)...")
    caller.drive(qs)

    monitor = OnlineMonitor(mm, window=16, drift_threshold=0.5)
    expectation = Expectation("g_proxy", "compute", model_efm, floor_us=500.0)
    report = monitor.check(expectation)
    print(report)

    candidates = [Candidate(EFMFluxComponent, model_efm)]
    report = monitor.check_and_reoptimize(expectation, fw, "flux", candidates)
    print(report)

    print("\nre-running the workload after replacement...")
    mm.record("g_proxy", "compute").invocations.clear()
    caller.drive(qs)
    report = monitor.check(expectation)
    print(report)
    print("\nmodel-guided dynamic optimization loop closed.")


if __name__ == "__main__":
    main()
