"""Quickstart: instrument a tiny component application.

Builds the smallest useful assembly — one provider, one driver — then adds
the PMM infrastructure (TAU component, Mastermind, an auto-generated
proxy), runs it, and prints the TAU profile, the per-invocation records and
a fitted performance model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cca import Component, Framework, Port
from repro.cca.ports import GoPort
from repro.perf import Mastermind, insert_proxy, perf_params
from repro.tau import function_summary
from repro.tau.component import TauMeasurementComponent
from repro.util.rng import make_rng


# --- 1. Declare a port interface, with perf_params mark-up ------------- #
class SolverPort(Port):
    """Some numerical service whose cost depends on the input size."""

    @perf_params(lambda args, kwargs: {"Q": int(args[0].size)})
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        raise NotImplementedError


# --- 2. Implement it as a component ------------------------------------ #
class JacobiSolver(Component, SolverPort):
    """A deliberately size-sensitive kernel (a few Jacobi sweeps)."""

    FUNCTIONALITY = "solver"

    def set_services(self, services):
        services.add_provides_port(self, "solver", SolverPort)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        x = np.zeros_like(rhs)
        for _ in range(20):
            x = 0.5 * (np.roll(x, 1) + np.roll(x, -1)) + rhs
        return x


# --- 3. A driver that exercises the solver over several sizes ---------- #
class Driver(Component, GoPort):
    def set_services(self, services):
        self.services = services
        services.register_uses_port("solver", SolverPort)
        services.add_provides_port(self, "go", GoPort)

    def go(self) -> int:
        solver = self.services.get_port("solver")
        rng = make_rng(0)
        for q in (1_000, 10_000, 100_000):
            for _ in range(5):
                solver.solve(rng.random(q))
        return 0


def main() -> None:
    # --- 4. Assemble, instrument, run ----------------------------------- #
    fw = Framework()
    fw.create("solver", JacobiSolver)
    fw.create("driver", Driver)
    fw.create("tau", TauMeasurementComponent)
    fw.create("mastermind", Mastermind)
    fw.connect("driver", "solver", "solver", "solver")
    fw.connect("mastermind", "measurement", "tau", "measurement")

    # The proxy snoops driver->solver calls and reports to the Mastermind.
    insert_proxy(fw, "driver", "solver", "mastermind", label="solver_proxy")

    with fw.profiler.timer("main"):
        status = fw.go("driver")
    print(f"application finished with status {status}\n")

    # --- 5. Inspect: profile, records, model ---------------------------- #
    print(function_summary([fw.profiler.timers_snapshot()], total_name="main"))

    mm = fw.component("mastermind")
    record = mm.record("solver_proxy", "solve")
    print(f"\nrecorded {len(record)} invocations; first rows:")
    print("\n".join(record.to_text().splitlines()[:6]))

    model = mm.build_performance_model("solver_proxy", "solve",
                                       mean_families=("linear", "power"))
    print("\nfitted performance model:")
    print(model.describe())
    print(f"\npredicted mean time at Q=50_000: "
          f"{float(model.predict_mean(50_000)):.1f} us")


if __name__ == "__main__":
    main()
