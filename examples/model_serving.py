"""Serve fitted performance models over an async prediction service.

The closing step of the paper's program: once component performance
models exist (Eq. 1/2 fits), they become a queryable service that other
tools — schedulers, assembly optimizers, dashboards — consult at run
time.  This example walks the full serving lifecycle in-process:

1. Measures the two flux kernels on a small sweep, fits models, and
   stores them in a :class:`ModelRepository` directory.
2. Starts :class:`ModelServer` (micro-batching + prediction cache +
   directory watcher) and exercises every endpoint through
   ``server.handle`` — no sockets needed.
3. Asks ``/v1/optimize`` which implementation the measured workload
   favors.
4. Hot-reloads: re-stores a model while the server runs and shows the
   version stamp change without a restart.
5. Runs the seeded load generator and prints p50/p99/throughput plus
   cache effectiveness.

Run:  python examples/model_serving.py
For the HTTP front end:  python -m repro.serve --models <dir> --port 8077
then:  curl -s localhost:8077/v1/predict -d '{"component":"EFMFlux","q":50000}'
"""

import argparse
import asyncio
import json
import tempfile

from repro.euler.efm import EFMKernel
from repro.euler.godunov import GodunovKernel
from repro.euler.states import StatesKernel
from repro.harness.sweeps import measure_mode_sweep, q_grid
from repro.models.performance import PerformanceModel, build_model
from repro.models.serialize import ModelRepository
from repro.serve import LoadMix, ModelServer, ServeConfig, run_load


def fit_kernel(name: str, kernel, quality: float,
               points: int, qmax: int) -> PerformanceModel:
    states = StatesKernel()
    cache = {}

    def invoke(U, mode):
        key = (id(U), mode)
        if key not in cache:
            cache[key] = states.compute(U, mode)
        wl, wr = cache[key]
        return kernel.compute(wl, wr, mode)

    samples = measure_mode_sweep(invoke, q_grid(points, 2_000, qmax),
                                 nprocs=1, repeats=2)
    q, t = samples.mode_averaged()
    return build_model(name, q, t, mean_families=("linear", "power"),
                       quality=quality)


async def demo(models_dir: str, requests: int, concurrency: int) -> None:
    repo = ModelRepository(models_dir)
    server = ModelServer(models_dir,
                         ServeConfig(reload_interval_s=0.05))

    async def get(path):
        return json.loads((await server.handle("GET", path)).body)

    async def post(path, obj):
        resp = await server.handle("POST", path, json.dumps(obj).encode())
        return resp.status, json.loads(resp.body)

    async with server:
        health = await get("/healthz")
        print(f"healthz: {health['status']}, {health['models']} models, "
              f"version {health['model_version']}")

        catalog = await get("/v1/models")
        for m in catalog["models"]:
            print(f"  model: {m['component']:12s} "
                  f"functionality={m['functionality']} "
                  f"family={m['family']} r2={m['r2']:.3f}")

        status, doc = await post("/v1/predict",
                                 {"component": "EFMFlux", "q": 5e4})
        pred = doc["prediction"]
        print(f"predict EFMFlux @ q=5e4: {pred['mean_us']:.1f} us "
              f"(model {pred['model']}, version {doc['model_version']})")

        status, doc = await post("/v1/optimize", {"slots": [
            {"slot": "flux", "q_values": [1e4, 5e4], "counts": [4, 2]}]})
        best = doc["best"]
        print(f"optimize over {doc['search_space']} assemblies: "
              f"best binding {best['binding']} "
              f"(cost {best['cost_us']:.1f} us)")

        # Hot reload: store an updated model while the server is live.
        v_before = (await get("/healthz"))["model_version"]
        repo.store("flux", fit_kernel("EFMFlux", EFMKernel(),
                                      quality=0.75, points=3, qmax=20_000))
        for _ in range(100):
            await asyncio.sleep(0.05)
            v_after = (await get("/healthz"))["model_version"]
            if v_after != v_before:
                break
        print(f"hot reload: version {v_before} -> {v_after} "
              f"(no restart, atomic swap)")

        stats = await run_load(server, total=requests,
                               concurrency=concurrency, seed=0,
                               mix=LoadMix())
        print(f"load: {stats.requests} requests in "
              f"{stats.duration_us / 1e6:.2f} s -> "
              f"{stats.throughput_rps:,.0f} req/s, "
              f"p50 {stats.p50_us:.0f} us, p99 {stats.p99_us:.0f} us, "
              f"errors {stats.errors}")
        print(f"cache: {server.cache.hits} hits / "
              f"{server.cache.misses} misses "
              f"(hit rate {server.cache.hit_rate():.0%}), "
              f"{server.cache.evictions} evictions")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--points", type=int, default=4,
                    help="sweep points per kernel fit")
    ap.add_argument("--qmax", type=int, default=40_000)
    ap.add_argument("--requests", type=int, default=800)
    ap.add_argument("--concurrency", type=int, default=16)
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as models_dir:
        repo = ModelRepository(models_dir)
        for name, kernel, quality in (("EFMFlux", EFMKernel(), 0.75),
                                      ("GodunovFlux", GodunovKernel(), 1.0)):
            model = fit_kernel(name, kernel, quality,
                               args.points, args.qmax)
            path = repo.store("flux", model)
            print(f"stored {name}: {path}")
        asyncio.run(demo(models_dir, args.requests, args.concurrency))


if __name__ == "__main__":
    main()
