"""Model-guided component-assembly optimization (the paper's end goal).

1. Measures EFMFlux and GodunovFlux over an array-size sweep and fits a
   performance model per implementation (Eq. 1/2 style).
2. Runs the instrumented case study once to obtain the application's call
   trace and workloads, and builds its *dual* — the composite performance
   model with the flux slot left as a variable (Figure 10).
3. Evaluates the composite under each binding and selects the optimal
   assembly, with and without a Quality-of-Service accuracy weight.
4. Demonstrates dynamic replacement: the losing implementation is swapped
   in-place through the framework's AbstractFramework port.

Run:  python examples/assembly_optimization.py
"""

from repro.cca import Framework
from repro.euler.efm import EFMFluxComponent, EFMKernel
from repro.euler.godunov import GodunovFluxComponent, GodunovKernel
from repro.euler.ports import DriverParams
from repro.euler.states import StatesKernel
from repro.harness.casestudy import (FLUX_PROXY, STATES_PROXY,
                                     CaseStudyConfig, compose_case_study,
                                     run_case_study)
from repro.harness.figures import qos_flip_weight
from repro.harness.sweeps import measure_mode_sweep, q_grid
from repro.models.performance import PerformanceModel, build_model
from repro.perf.dualgraph import dual_to_composite
from repro.perf.optimizer import AssemblyOptimizer


def fit_flux_model(name: str, kernel, quality: float) -> PerformanceModel:
    """Sweep-measure a flux kernel and fit its performance model."""
    states = StatesKernel()
    cache = {}

    def invoke(U, mode):
        key = (id(U), mode)
        if key not in cache:
            cache[key] = states.compute(U, mode)
        wl, wr = cache[key]
        return kernel.compute(wl, wr, mode)

    samples = measure_mode_sweep(invoke, q_grid(6, 2_000, 80_000),
                                 nprocs=1, repeats=3)
    q, t = samples.mode_averaged()
    model = build_model(name, q, t, mean_families=("linear", "power"),
                        quality=quality)
    return model


def main() -> None:
    print("fitting per-implementation performance models...\n")
    model_efm = fit_flux_model("EFMFlux", EFMKernel(),
                               EFMFluxComponent.QUALITY)
    model_god = fit_flux_model("GodunovFlux", GodunovKernel(),
                               GodunovFluxComponent.QUALITY)
    print(model_efm.describe())
    print(model_god.describe())

    print("\nrecording the application's call trace and workloads...")
    config = CaseStudyConfig(
        params=DriverParams(nx=40, ny=40, max_levels=2, steps=3,
                            regrid_every=2, max_patch_cells=1024),
        flux="efm",
        nranks=3,
    )
    run = run_case_study(config)
    mastermind = run.extras[0].mastermind

    model_states = mastermind.build_performance_model(
        STATES_PROXY, "compute", mean_families=("power", "linear"),
        min_bin_count=2,
    )
    composite = dual_to_composite(
        mastermind,
        slots={FLUX_PROXY: "flux"},
        models={f"{STATES_PROXY}::compute()": model_states},
    )
    print(f"composite model nodes: {composite.nodes()}")
    print(f"free slots: {composite.free_slots()}")

    optimizer = AssemblyOptimizer(composite,
                                  {"flux": [model_efm, model_god]})
    plain = optimizer.optimize(qos_weight=0.0)
    print("\n--- lowest-execution-time selection ---")
    print(plain.summary())

    flip = qos_flip_weight(plain)
    qos = optimizer.optimize(qos_weight=1.25 * flip if flip else 0.0)
    print(f"\n--- QoS-weighted selection (weight {1.25 * flip:.2f}, "
          "accuracy matters) ---" if flip else "\n--- QoS: no flip possible ---")
    print(qos.summary())

    # Dynamic replacement through the AbstractFramework port.
    print("\ndynamically replacing the flux component in a live assembly...")
    fw = Framework()
    compose_case_study(fw, CaseStudyConfig(
        params=DriverParams(nx=32, ny=32, max_levels=1, steps=1),
        flux="efm", instrument=False, nranks=1))
    afp = fw.builtin_port(Framework.ABSTRACT_FRAMEWORK_PORT)
    print(f"before: {afp.component_class('flux').__name__}")
    winner = qos.best.binding_names()["flux"]
    cls = GodunovFluxComponent if winner == "GodunovFlux" else EFMFluxComponent
    afp.replace("flux", cls)
    print(f"after:  {afp.component_class('flux').__name__}")
    status = fw.go("driver")
    print(f"re-run with the selected implementation: status {status}")


if __name__ == "__main__":
    main()
