"""Fault injection and resilience on the paper's SCMD case study.

Part 1 runs the case study under the canned ``dropped-messages`` fault
plan with the resilient MPI layer enabled: dropped ghost-exchange
messages time out at the receiver and are recovered by retransmission,
and the run completes cleanly.  The recovery statistics and the injected
fault schedule are printed, and the rank-0 timeline (faults and
recoveries as instant events) is dumped as a Chrome/Perfetto trace.

Part 2 demonstrates checkpoint/restart: the same application is killed
mid-run by a ``kill_at_step`` crash point, then resumed from the latest
checkpoint.  The resumed run's final AMR hierarchy is compared bitwise
against an uninterrupted run.

Run:  python examples/fault_tolerance.py [--steps N]
"""

import argparse
import dataclasses

from repro.euler.ports import DriverParams
from repro.faults.checkpoint import CheckpointConfig, hierarchy_states_equal
from repro.faults.plan import FaultPlan, canned_plans
from repro.faults.policy import ResiliencePolicy
from repro.harness.casestudy import CaseStudyConfig, run_case_study
from repro.mpi.runner import RankFailure
from repro.tau.trace import dump_chrome_trace


def merged_resilience(result) -> dict[str, int]:
    merged: dict[str, int] = {}
    for harvest in result.extras:
        for key, val in (harvest.resilience or {}).items():
            merged[key] = merged.get(key, 0) + val
    return merged


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=6)
    ap.add_argument("--nx", type=int, default=32)
    ap.add_argument("--trace-out", default="fault_trace.json")
    args = ap.parse_args()

    params = DriverParams(nx=args.nx, ny=args.nx, max_levels=2,
                          steps=args.steps, regrid_every=2,
                          max_patch_cells=512)
    base = CaseStudyConfig(params=params, nranks=3,
                           resilience=ResiliencePolicy(retry_timeout_s=0.05))

    # ------------------------------------------- part 1: surviving faults
    plan = canned_plans()["dropped-messages"]
    print(f"=== Part 1: fault plan {plan.name!r} with resilience on ===")
    print(f"({plan.n_faults} faults, seed {plan.seed}; "
          f"{params.steps} steps on {base.nranks} simulated processors)\n")

    result = run_case_study(dataclasses.replace(base, fault_plan=plan))
    print(f"run completed: rank results {result.results}")
    print(f"injected faults: {result.world.injector.total_counts()}")
    print(f"recovery stats:  {merged_resilience(result)}")

    dump_chrome_trace(result.world.injector.tracers[0].records(),
                      args.trace_out)
    print(f"rank-0 fault/recovery timeline written to {args.trace_out} "
          "(load in chrome://tracing or ui.perfetto.dev)")

    # --------------------------------- part 2: kill, checkpoint, restart
    kill_step = max(1, args.steps // 2)
    print(f"\n=== Part 2: kill at step {kill_step}, "
          "restart from checkpoint ===")
    baseline = run_case_study(base)

    import tempfile
    with tempfile.TemporaryDirectory() as ckpt_dir:
        killed = dataclasses.replace(
            base,
            fault_plan=FaultPlan(name="mid-run-kill", kill_at_step=kill_step),
            checkpoint=CheckpointConfig(ckpt_dir, every=2),
        )
        try:
            run_case_study(killed)
        except RankFailure as exc:
            print(f"run killed as planned ({len(exc.failures)} ranks down)")

        resumed_cfg = dataclasses.replace(
            killed, resume=True,
            fault_plan=dataclasses.replace(killed.fault_plan,
                                           kill_at_step=None))
        resumed = run_case_study(resumed_cfg)
        print(f"resumed run completed: rank results {resumed.results}")
        print(f"checkpoints written after resume: "
              f"steps {resumed.extras[0].checkpoint_steps}, "
              f"{resumed.extras[0].checkpoint_bytes / 1024:.0f} KiB")

    ok = all(
        hierarchy_states_equal(b.mesh_state, r.mesh_state)
        and b.dt_history == r.dt_history
        for b, r in zip(baseline.extras, resumed.extras)
    )
    print("resumed solution vs uninterrupted run: "
          + ("BITWISE IDENTICAL" if ok else "MISMATCH"))
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
