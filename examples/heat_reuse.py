"""Component reuse: a heat-diffusion app from the shock solver's parts.

The CCA pitch (paper Section 1) is that "program modification is
simplified to modifying a single component or switching in a similar
component without affecting the rest of the application."  This example
makes that concrete: the AMRMesh and RK2 components of the shock case
study are reused verbatim; only the RhsPort provider changes (Euler fluxes
-> an explicit diffusion stencil), plus a driver for the new physics.

The run is verified against the analytic solution: a Gaussian temperature
bump spreads with variance sigma^2(t) = sigma0^2 + 2 nu t.

Run:  python examples/heat_reuse.py
"""

import numpy as np

from repro.apps.heat import HeatDriver, HeatParams, HeatRhsComponent, gaussian_ic
from repro.cca import Framework
from repro.euler.mesh_component import AMRMeshComponent
from repro.euler.ports import DriverParams
from repro.euler.rk2 import RK2Component
from repro.harness.visualization import ascii_field, assemble_level_field


def field_variance(h) -> float:
    data = assemble_level_field(h, "rho", 0)
    data = data - data.min()
    ni, nj = data.shape
    dx, dy = h.dx(0)
    X = (np.arange(nj) + 0.5) * dx
    Y = (np.arange(ni) + 0.5) * dy
    XX, YY = np.meshgrid(X, Y)
    total = data.sum()
    cx = (data * XX).sum() / total
    cy = (data * YY).sum() / total
    return float((data * ((XX - cx) ** 2 + (YY - cy) ** 2)).sum() / total) / 2.0


def main() -> None:
    params = HeatParams(nx=96, ny=96, max_levels=2, steps=24,
                        nu=2.0e-3, sigma0=0.06)
    mesh_params = DriverParams(nx=params.nx, ny=params.ny,
                               max_levels=params.max_levels,
                               flag_threshold=0.1, max_patch_cells=2048)

    fw = Framework()
    fw.create("rhs", HeatRhsComponent, nu=params.nu)      # NEW physics
    fw.create("rk2", RK2Component)                        # reused
    fw.create("mesh", AMRMeshComponent, params=mesh_params)  # reused
    fw.create("driver", HeatDriver, params=params)        # NEW driver
    fw.connect("rk2", "mesh", "mesh", "mesh")
    fw.connect("rk2", "rhs", "rhs", "rhs")
    fw.connect("driver", "mesh", "mesh", "mesh")
    fw.connect("driver", "integrator", "rk2", "integrator")

    print("wiring diagram (reused components marked):")
    g = fw.wiring_diagram()
    for node, data in g.nodes(data=True):
        reused = data["component_class"] in ("RK2Component", "AMRMeshComponent")
        print(f"  {node}: {data['component_class']}"
              + ("   [reused from the shock app]" if reused else ""))

    # Reference variance before stepping.
    ref = Framework()
    ref_mesh = ref.create("mesh", AMRMeshComponent, params=mesh_params)
    ref_mesh.initialize(gaussian_ic(params))
    var0 = field_variance(ref_mesh.hierarchy())

    status = fw.go("driver")
    driver = fw.component("driver")
    h = fw.component("mesh").hierarchy()
    var = field_variance(h)
    predicted = var0 + 2.0 * params.nu * driver.elapsed

    print(f"\nrun status {status}; simulated time {driver.elapsed:.4f}")
    print(f"variance: initial {var0:.6f} -> final {var:.6f}")
    print(f"analytic prediction: {predicted:.6f} "
          f"(error {abs(var - predicted) / predicted:.2%})")
    print("\ntemperature field ('&' = refined patches):")
    print(ascii_field(h, width=56, height=24))


if __name__ == "__main__":
    main()
