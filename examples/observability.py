"""Distributed span tracing and critical-path analysis on the case study.

Runs the paper's SCMD case study with observability enabled: every
component invocation, MPI operation, timestep, and checkpoint opens a
span; matched sends/receives and collectives become causal cross-rank
edges.  The merged per-rank traces are then analyzed:

 * the critical path — the longest dependency chain through the run,
   decomposed into compute / MPI / MPI-wait time — overall and per step;
 * crosschecks of span durations against the Mastermind measurement
   records and of span counts against the MPI accounting ledger;
 * the tracer's self-reported overhead.

The trace is written as a Chrome/Perfetto JSON file (load it in
ui.perfetto.dev — the cross-rank arrows are flow events) and the metrics
registry is exported as JSON and Prometheus text.

Run:  python examples/observability.py [--steps N] [--nranks R]
"""

import argparse

from repro.euler.ports import DriverParams
from repro.harness.casestudy import CaseStudyConfig, run_case_study
from repro.mpi.network import NetworkModel
from repro.obs import (ObsConfig, collect, critical_path, crosscheck_ledger,
                       crosscheck_records, per_step_critical_paths,
                       validate_trace_file, write_metrics, write_trace)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=3)
    ap.add_argument("--nx", type=int, default=48)
    ap.add_argument("--nranks", type=int, default=4)
    ap.add_argument("--sample-every", type=int, default=1,
                    help="keep 1 in N sampled (compute) spans")
    ap.add_argument("--trace-out", default="obs_trace.json")
    ap.add_argument("--metrics-out", default="obs_metrics")
    args = ap.parse_args()

    config = CaseStudyConfig(
        params=DriverParams(nx=args.nx, ny=args.nx, steps=args.steps,
                            max_patch_cells=16384),
        nranks=args.nranks,
        network=NetworkModel(latency_us=800.0, bandwidth_bytes_per_us=16.0,
                             jitter_sigma=0.1),
        observe=ObsConfig(sample_every=args.sample_every),
    )
    print(f"=== Traced case study: {args.nranks} ranks, "
          f"{args.steps} steps, {args.nx}x{args.nx} cells ===\n")
    result = run_case_study(config)
    dump = collect(result)
    print(f"collected {len(dump.spans)} spans, {len(dump.flows)} flow "
          f"endpoints, {dump.dropped_total} dropped\n")

    # ------------------------------------------------------ critical path
    report = critical_path(dump.spans, dump.flows)
    print(report.format())
    print()
    for step, rep in sorted(per_step_critical_paths(
            dump.spans, dump.flows).items()):
        frac = rep.path_us / rep.total_wall_us if rep.total_wall_us else 0.0
        print(f"  step {step}: path {rep.path_us / 1e3:9.2f} ms of "
              f"{rep.total_wall_us / 1e3:9.2f} ms wall "
              f"({100.0 * frac:5.1f}%), "
              f"{rep.cross_rank_hops} cross-rank hops")

    # -------------------------------------------------------- crosschecks
    print("\ncrosscheck: span wall vs Mastermind records (worst timers)")
    recs = [h.records for h in result.extras if h is not None]
    checks = crosscheck_records(dump.spans, recs)
    worst = sorted(checks.items(), key=lambda kv: -kv[1][2])[:4]
    for name, (s_us, r_us, err) in worst:
        print(f"  {name:36s} span {s_us / 1e3:9.2f} ms "
              f"rec {r_us / 1e3:9.2f} ms  err {100.0 * err:5.2f}%")
    ledger = crosscheck_ledger(dump.spans, result.world.accounting)
    bad = {r: v for r, v in ledger.items() if v[0] != v[1]}
    print(f"crosscheck: span vs ledger MPI call counts — "
          f"{len(ledger)} routines, {len(bad)} mismatches")

    # ----------------------------------------------- self-reported cost
    tax = sum(rep["self_overhead_us"]
              for rep in dump.overhead_by_rank.values())
    print(f"tracer self-reported overhead: {tax / 1e3:.2f} ms total")

    # ------------------------------------------------------------ exports
    write_trace(dump, args.trace_out)
    problems = validate_trace_file(args.trace_out)
    status = "valid" if not problems else f"INVALID: {problems}"
    print(f"\ntrace written to {args.trace_out} ({status}; "
          "load in ui.perfetto.dev)")
    write_metrics(dump, json_path=args.metrics_out + ".json",
                  prometheus_path=args.metrics_out + ".prom")
    print(f"metrics written to {args.metrics_out}.json and "
          f"{args.metrics_out}.prom")


if __name__ == "__main__":
    main()
