"""The paper's case study: a Mach-1.5 shock hitting a gas interface.

Runs the full instrumented component application (ShockDriver, AMRMesh,
RK2, InviscidFlux, States, EFMFlux + TAU/Mastermind/proxies) on three
simulated processors, then prints:

* the Figure-3 FUNCTION SUMMARY profile,
* the Figure-9 per-level ghost-update communication clusters,
* an ASCII rendering of the final density field with the AMR patch
  structure (the Figure-1 analog).

Run:  python examples/shock_interface.py [--steps N]
"""

import argparse

import numpy as np

from repro.euler.ports import DriverParams
from repro.harness.casestudy import CaseStudyConfig, run_case_study
from repro.harness.figures import fig9_comm_levels
from repro.tau.summary import function_summary


from repro.harness.visualization import ascii_field


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=6)
    ap.add_argument("--nx", type=int, default=64)
    args = ap.parse_args()

    config = CaseStudyConfig(
        params=DriverParams(nx=args.nx, ny=args.nx, max_levels=3,
                            steps=args.steps, regrid_every=max(2, args.steps // 2),
                            max_patch_cells=2048),
        flux="efm",
        nranks=3,
    )
    print(f"running {config.params.steps} steps on {config.nranks} simulated "
          f"processors ({config.params.nx}^2 base grid, "
          f"{config.params.max_levels} levels)...\n")

    result = run_case_study(config)
    print("=== Figure 3 analog: FUNCTION SUMMARY (mean over ranks) ===")
    print(function_summary(result.timer_snapshots,
                           total_name="int main(int, char **)"))

    print("\n=== Figure 9 analog: ghost-update comm time clusters ===")
    fig9 = fig9_comm_levels(config)
    print(fig9.render())

    # Re-run uninstrumented on one rank to render the field (rank threads
    # own the hierarchy; easiest faithful view is a serial rerun).
    from repro.cca import Framework
    from repro.harness.casestudy import compose_case_study
    import dataclasses

    serial = dataclasses.replace(config, instrument=False, nranks=1)
    fw = Framework()
    compose_case_study(fw, serial)
    fw.go("driver")
    hierarchy = fw.component("mesh").hierarchy()
    print("\n=== Figure 1 analog: density field ('&' = refined patches) ===")
    print(ascii_field(hierarchy))
    print(f"\npatches per level: {[len(L) for L in hierarchy.levels]}")
    print(f"regrids performed: {hierarchy.regrid_count}")


if __name__ == "__main__":
    main()
