"""Component performance measurement and modeling (paper Figures 4-8).

Sweeps the States, GodunovFlux and EFMFlux components over array sizes in
both the sequential (X-derivative) and strided (Y-derivative) access modes,
then prints:

* the dual-mode timing table and the strided/sequential ratio (Figs 4-5),
* the binned mean/std with fitted Eq. 1/Eq. 2-style models (Figs 6-8),
* a comparison of the fitted forms against the paper's.

Run:  python examples/performance_modeling.py [--points N] [--qmax Q]
"""

import argparse

from repro.harness.figures import (fig4_states_modes, fig5_stride_ratio,
                                   fig6_states_model, fig7_godunov_model,
                                   fig8_efm_model)
from repro.harness.sweeps import q_grid

PAPER_FORMS = {
    "States": "T = exp(1.19 log(Q) - 3.68)       (power law)",
    "GodunovFlux": "T = -963 + 0.315 Q           (linear)",
    "EFMFlux": "T = -8.13 + 0.16 Q               (linear)",
}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--points", type=int, default=7)
    ap.add_argument("--qmax", type=int, default=300_000)
    ap.add_argument("--repeats", type=int, default=2)
    args = ap.parse_args()

    qs = q_grid(args.points, 2_000, args.qmax)
    print(f"sweeping array sizes {qs}\n")

    fig4 = fig4_states_modes(qs, nprocs=3, repeats=args.repeats)
    print(fig4.render())
    print()
    print(fig5_stride_ratio(fig4).render())

    for title, fn in (("States", fig6_states_model),
                      ("GodunovFlux", fig7_godunov_model),
                      ("EFMFlux", fig8_efm_model)):
        fig = fn(qs if title != "GodunovFlux" else qs[:-1],
                 nprocs=2, repeats=args.repeats)
        print(f"\n{'=' * 60}")
        print(fig.render())
        print(f"paper's form: {PAPER_FORMS[title]}")
        print(f"fit R^2: {fig.model.mean_fit.r2:.4f}")

    print("\nNote: absolute microseconds differ from the paper (different "
          "hardware,\nPython kernels); the functional forms and orderings "
          "are the reproduced claims.")


if __name__ == "__main__":
    main()
