"""Exact Riemann solution sampling at arbitrary similarity coordinates.

:mod:`repro.euler.godunov` samples the self-similar solution only at
``x/t = 0`` (all a Godunov flux needs).  This module generalizes the
sampler to any ``xi = x/t`` (Toro Section 4.5 in full), giving exact
reference profiles — e.g. the Sod shock tube — against which the whole
component solver is validated quantitatively (L1 error and convergence).
"""

from __future__ import annotations

import numpy as np

from repro.euler.eos import GAMMA_DEFAULT, P_FLOOR, RHO_FLOOR
from repro.euler.godunov import solve_star_pressure

__all__ = ["sample_riemann", "sod_exact", "SOD_LEFT", "SOD_RIGHT"]

#: canonical Sod states (rho, u, p)
SOD_LEFT = (1.0, 0.0, 1.0)
SOD_RIGHT = (0.125, 0.0, 0.1)


def sample_riemann(
    left: tuple[float, float, float],
    right: tuple[float, float, float],
    xi: np.ndarray,
    gamma: float = GAMMA_DEFAULT,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact solution (rho, u, p) of a Riemann problem at ``xi = x/t``.

    ``left``/``right`` are (rho, u, p) states; ``xi`` is an array of
    similarity coordinates.  Vectorized over ``xi``.
    """
    rho_l, u_l, p_l = (float(v) for v in left)
    rho_r, u_r, p_r = (float(v) for v in right)
    if min(rho_l, rho_r) <= 0 or min(p_l, p_r) <= 0:
        raise ValueError("densities and pressures must be positive")
    xi = np.asarray(xi, dtype=float)

    one = np.ones(1)
    p_star_a, u_star_a, _ = solve_star_pressure(
        rho_l * one, u_l * one, p_l * one,
        rho_r * one, u_r * one, p_r * one, gamma,
    )
    p_star, u_star = float(p_star_a[0]), float(u_star_a[0])

    gp1, gm1 = gamma + 1.0, gamma - 1.0
    c_l = np.sqrt(gamma * p_l / rho_l)
    c_r = np.sqrt(gamma * p_r / rho_r)

    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)

    left_side = xi <= u_star

    # ---------------- left of the contact ----------------
    if p_star > p_l:  # left shock
        s_l = u_l - c_l * np.sqrt(gp1 / (2 * gamma) * p_star / p_l + gm1 / (2 * gamma))
        rho_star = rho_l * ((p_star / p_l + gm1 / gp1)
                            / (p_star / p_l * gm1 / gp1 + 1.0))
        in_pre = left_side & (xi <= s_l)
        in_star = left_side & (xi > s_l)
        rho[in_pre], u[in_pre], p[in_pre] = rho_l, u_l, p_l
        rho[in_star], u[in_star], p[in_star] = rho_star, u_star, p_star
    else:  # left rarefaction
        c_star = c_l * (p_star / p_l) ** (gm1 / (2 * gamma))
        rho_star = rho_l * (p_star / p_l) ** (1.0 / gamma)
        head, tail = u_l - c_l, u_star - c_star
        in_pre = left_side & (xi <= head)
        in_fan = left_side & (xi > head) & (xi < tail)
        in_star = left_side & (xi >= tail)
        rho[in_pre], u[in_pre], p[in_pre] = rho_l, u_l, p_l
        rho[in_star], u[in_star], p[in_star] = rho_star, u_star, p_star
        c_fan = 2.0 / gp1 * (c_l + 0.5 * gm1 * (u_l - xi[in_fan]))
        u[in_fan] = 2.0 / gp1 * (c_l + 0.5 * gm1 * u_l + xi[in_fan])
        rho[in_fan] = rho_l * (c_fan / c_l) ** (2.0 / gm1)
        p[in_fan] = p_l * (c_fan / c_l) ** (2.0 * gamma / gm1)

    # ---------------- right of the contact ----------------
    right_side = ~left_side
    if p_star > p_r:  # right shock
        s_r = u_r + c_r * np.sqrt(gp1 / (2 * gamma) * p_star / p_r + gm1 / (2 * gamma))
        rho_star = rho_r * ((p_star / p_r + gm1 / gp1)
                            / (p_star / p_r * gm1 / gp1 + 1.0))
        in_post = right_side & (xi >= s_r)
        in_star = right_side & (xi < s_r)
        rho[in_post], u[in_post], p[in_post] = rho_r, u_r, p_r
        rho[in_star], u[in_star], p[in_star] = rho_star, u_star, p_star
    else:  # right rarefaction
        c_star = c_r * (p_star / p_r) ** (gm1 / (2 * gamma))
        rho_star = rho_r * (p_star / p_r) ** (1.0 / gamma)
        head, tail = u_r + c_r, u_star + c_star
        in_post = right_side & (xi >= head)
        in_fan = right_side & (xi < head) & (xi > tail)
        in_star = right_side & (xi <= tail)
        rho[in_post], u[in_post], p[in_post] = rho_r, u_r, p_r
        rho[in_star], u[in_star], p[in_star] = rho_star, u_star, p_star
        c_fan = 2.0 / gp1 * (c_r - 0.5 * gm1 * (u_r - xi[in_fan]))
        u[in_fan] = 2.0 / gp1 * (-c_r + 0.5 * gm1 * u_r + xi[in_fan])
        rho[in_fan] = rho_r * (c_fan / c_r) ** (2.0 / gm1)
        p[in_fan] = p_r * (c_fan / c_r) ** (2.0 * gamma / gm1)

    return (np.maximum(rho, RHO_FLOOR), u, np.maximum(p, P_FLOOR))


def sod_exact(x: np.ndarray, t: float, x0: float = 0.5,
              gamma: float = GAMMA_DEFAULT):
    """Exact Sod shock-tube solution at time ``t`` (diaphragm at ``x0``).

    Returns ``(rho, u, p)`` arrays over ``x``.  At ``t == 0`` the initial
    discontinuity is returned.
    """
    x = np.asarray(x, dtype=float)
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if t == 0.0:
        left_mask = x < x0
        rho = np.where(left_mask, SOD_LEFT[0], SOD_RIGHT[0])
        u = np.zeros_like(x)
        p = np.where(left_mask, SOD_LEFT[2], SOD_RIGHT[2])
        return rho, u, p
    return sample_riemann(SOD_LEFT, SOD_RIGHT, (x - x0) / t, gamma)
