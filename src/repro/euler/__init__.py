"""The case-study application: 2-D Euler equations on SAMR (paper Section 5).

"The code simulates the interaction of a shock wave with an interface
between two gases" using structured adaptive mesh refinement.  The
component decomposition follows the paper's Figure 2:

* :class:`ShockDriver` — orchestrates the simulation (GoPort);
* :class:`AMRMeshComponent` — manages patches, ghost-cell updates, load
  balancing / domain (re-)decomposition (all the message passing);
* :class:`RK2Component` — orchestrates the recursive processing of patches
  (the L0 L1 L2 L2 L1 L2 L2 sequence);
* :class:`InviscidFluxComponent` — per-patch flux divergence, invoking:
* :class:`StatesComponent` — primitive/interface-state reconstruction, dual
  sequential (X) / strided (Y) array-access modes;
* :class:`EFMFluxComponent` — kinetic (Equilibrium Flux Method) fluxes,
  closed-form per interface;
* :class:`GodunovFluxComponent` — exact-Riemann-solver fluxes with an
  internal iterative solution per interface (substitutable for EFMFlux).
"""

from repro.euler.eos import (
    GAMMA_DEFAULT,
    conserved_from_primitive,
    primitive_from_conserved,
    sound_speed,
    pressure,
    flux_x,
)
from repro.euler.ports import StatesPort, FluxPort, MeshPort, IntegratorPort, DriverParams
from repro.euler.states import StatesComponent, StatesKernel
from repro.euler.efm import EFMFluxComponent, EFMKernel
from repro.euler.godunov import GodunovFluxComponent, GodunovKernel
from repro.euler.inviscid import InviscidFluxComponent
from repro.euler.rk2 import RK2Component
from repro.euler.mesh_component import AMRMeshComponent
from repro.euler.shockdriver import ShockDriver
from repro.euler.setup import shock_interface_ic, post_shock_state
from repro.euler.riemann_exact import sample_riemann, sod_exact, SOD_LEFT, SOD_RIGHT

__all__ = [
    "GAMMA_DEFAULT",
    "conserved_from_primitive",
    "primitive_from_conserved",
    "sound_speed",
    "pressure",
    "flux_x",
    "StatesPort",
    "FluxPort",
    "MeshPort",
    "IntegratorPort",
    "DriverParams",
    "StatesComponent",
    "StatesKernel",
    "EFMFluxComponent",
    "EFMKernel",
    "GodunovFluxComponent",
    "GodunovKernel",
    "InviscidFluxComponent",
    "RK2Component",
    "AMRMeshComponent",
    "ShockDriver",
    "shock_interface_ic",
    "post_shock_state",
    "sample_riemann",
    "sod_exact",
    "SOD_LEFT",
    "SOD_RIGHT",
]
