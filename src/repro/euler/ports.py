"""Port interfaces of the case-study application (paper Figure 2).

The ``perf_params`` mark-up on each interface declares which inputs the
proxies must extract for the Mastermind: the array size Q ("the actual
number of elements in the array") and the access mode (sequential X /
strided Y), exactly the parameters the paper's models depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cca.ports import Port
from repro.perf.proxy import perf_params


def _states_params(args: tuple, kwargs: dict) -> dict:
    U = args[0]
    mode = args[1] if len(args) > 1 else kwargs.get("mode", "x")
    return {"Q": int(U.shape[-2] * U.shape[-1]), "mode": mode}


def _flux_params(args: tuple, kwargs: dict) -> dict:
    WL = args[0]
    mode = args[2] if len(args) > 2 else kwargs.get("mode", "x")
    return {"Q": int(np.asarray(WL[0]).size), "mode": mode}


class StatesPort(Port):
    """Primitive/interface-state reconstruction on one patch array."""

    @perf_params(_states_params)
    def compute(self, U: np.ndarray, mode: str = "x") -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct left/right interface primitive states.

        ``U`` is the conserved stack ``(4, Ni, Nj)`` including ghosts;
        ``mode`` selects the sweep direction: ``"x"`` (sequential array
        access) or ``"y"`` (strided).  Returns ``(WL, WR)`` stacks of
        ``(rho, u_normal, u_tangential, p)`` at the sweep interfaces.
        """
        raise NotImplementedError


class FluxPort(Port):
    """Numerical flux at interfaces from left/right states."""

    @perf_params(_flux_params)
    def compute(self, WL: np.ndarray, WR: np.ndarray, mode: str = "x") -> np.ndarray:
        """Interface fluxes ``(mass, mom_normal, mom_tangential, energy)``.

        Shapes follow the States output for the same ``mode``.
        """
        raise NotImplementedError


def _mesh_level_params(args: tuple, kwargs: dict) -> dict:
    level = args[0] if args else kwargs.get("level", 0)
    return {"level": int(level)}


class MeshPort(Port):
    """AMRMesh services: patches, ghost updates, regridding."""

    def initialize(self, ic) -> None:
        """Build the hierarchy and fill all levels from ``ic(X, Y)``."""
        raise NotImplementedError

    @perf_params(_mesh_level_params)
    def ghost_update(self, level: int) -> float:
        """Fill ghost cells on a level; returns modeled MPI time (us)."""
        raise NotImplementedError

    @perf_params(_mesh_level_params)
    def sync_down(self, level: int) -> float:
        """Restrict level+1 onto level; returns modeled MPI time (us)."""
        raise NotImplementedError

    def regrid(self) -> float:
        """Re-flag, re-cluster and re-balance; returns MPI time (us)."""
        raise NotImplementedError

    def restore(self, state: dict) -> None:
        """Rebuild the hierarchy bit-exactly from a checkpoint state."""
        raise NotImplementedError

    def local_patches(self, level: int):
        raise NotImplementedError

    def hierarchy(self):
        raise NotImplementedError


class IntegratorPort(Port):
    """Time integration over the hierarchy."""

    def compute_dt(self, cfl: float) -> float:
        """Globally reduced stable time step."""
        raise NotImplementedError

    def advance(self, level: int, dt: float) -> None:
        """Advance a level and, recursively, its finer levels."""
        raise NotImplementedError


@dataclass(frozen=True)
class DriverParams:
    """ShockDriver configuration (see :mod:`repro.euler.setup`)."""

    nx: int = 64
    ny: int = 64
    max_levels: int = 3
    steps: int = 4
    cfl: float = 0.4
    mach: float = 1.5
    interface_x: float = 0.55
    shock_x: float = 0.35
    density_ratio: float = 4.17  # Freon-22 / Air, the paper's gas pair
    regrid_every: int = 2
    blocks: tuple[int, int] = (2, 2)
    flag_threshold: float = 0.05
    max_patch_cells: int = 4096
    #: evaluate States/flux kernels in batched (vectorized-sweep) form;
    #: False restores the historical per-line loops for A/B comparison
    batch: bool = True
