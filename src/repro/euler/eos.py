"""Ideal-gas (gamma-law) equation of state and Euler flux algebra.

Conserved variables (2-D): ``U = (rho, rho*u, rho*v, E)`` with total energy
``E = p/(gamma-1) + rho*(u^2+v^2)/2``.  Primitive variables:
``W = (rho, u, v, p)``.

The paper's problem pairs Air and Freon; a full two-gas treatment needs a
species/gamma field.  We use a single gamma with the Air/Freon density
ratio (DESIGN.md substitution) — the flux components' code paths and costs
are unchanged.
"""

from __future__ import annotations

import numpy as np

GAMMA_DEFAULT = 1.4

#: floors applied to keep the solver out of unphysical states
RHO_FLOOR = 1e-10
P_FLOOR = 1e-10


def pressure(U: np.ndarray, gamma: float = GAMMA_DEFAULT) -> np.ndarray:
    """Pressure from a conserved stack ``U`` of shape (4, ...)."""
    rho = np.maximum(U[0], RHO_FLOOR)
    ke = 0.5 * (U[1] ** 2 + U[2] ** 2) / rho
    return np.maximum((gamma - 1.0) * (U[3] - ke), P_FLOOR)


def sound_speed(rho: np.ndarray, p: np.ndarray, gamma: float = GAMMA_DEFAULT) -> np.ndarray:
    """Speed of sound ``c = sqrt(gamma p / rho)``."""
    return np.sqrt(gamma * np.maximum(p, P_FLOOR) / np.maximum(rho, RHO_FLOOR))


def primitive_from_conserved(U: np.ndarray, gamma: float = GAMMA_DEFAULT) -> np.ndarray:
    """``(4, ...)`` conserved stack -> ``(4, ...)`` primitive stack."""
    rho = np.maximum(U[0], RHO_FLOOR)
    u = U[1] / rho
    v = U[2] / rho
    p = pressure(U, gamma)
    return np.stack([rho, u, v, p])


def conserved_from_primitive(W: np.ndarray, gamma: float = GAMMA_DEFAULT) -> np.ndarray:
    """``(4, ...)`` primitive stack -> ``(4, ...)`` conserved stack."""
    rho, u, v, p = W[0], W[1], W[2], W[3]
    E = p / (gamma - 1.0) + 0.5 * rho * (u**2 + v**2)
    return np.stack([rho, rho * u, rho * v, E])


def flux_x(W: np.ndarray, gamma: float = GAMMA_DEFAULT) -> np.ndarray:
    """Analytic x-direction Euler flux of a primitive stack.

    For a sweep in y, pass W with u and v swapped (the standard rotation
    trick); the caller swaps momentum components back afterwards.
    """
    rho, u, v, p = W[0], W[1], W[2], W[3]
    E = p / (gamma - 1.0) + 0.5 * rho * (u**2 + v**2)
    return np.stack([rho * u, rho * u * u + p, rho * u * v, (E + p) * u])


def max_wavespeed(U: np.ndarray, gamma: float = GAMMA_DEFAULT) -> float:
    """``max(|u|+c, |v|+c)`` over the stack — the CFL signal speed."""
    W = primitive_from_conserved(U, gamma)
    c = sound_speed(W[0], W[3], gamma)
    return float(np.maximum(np.abs(W[1]) + c, np.abs(W[2]) + c).max())
