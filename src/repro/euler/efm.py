"""EFMFlux: Equilibrium Flux Method (kinetic flux-vector splitting).

Pullin's EFM computes upwind fluxes by integrating half-Maxwellians —
closed-form expressions in ``erf``/``exp`` per interface, no iteration.
The paper finds its cost linear in Q (Eq. 1: ``T_EFM = -8.13 + 0.16 Q``)
with a *decreasing* standard deviation (Eq. 2's quartic), and prefers it
on performance grounds while GodunovFlux is preferred on accuracy — the
Quality-of-Service example of Section 5.

Split-flux identities: with ``A± = (1 ± erf(s))/2``, ``s = u sqrt(beta)``,
``beta = rho/(2p)``, ``D = exp(-s^2) / (2 sqrt(pi beta))``:

* mass:    ``rho (u A± ± D)``
* normal momentum: ``(rho u^2 + p) A± ± rho u D``
* tangential momentum: ``ut * mass``
* energy:  ``(E + p) u A± ± (E + p/2) D``

``F+(W) + F-(W)`` telescopes to the analytic Euler flux for every W (the
consistency property tests anchor), independent of the D coefficients.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

from repro.cca.component import Component
from repro.cca.services import Services
from repro.euler.eos import GAMMA_DEFAULT
from repro.euler.kernels import check_mode, flatten_sweep, out_line, scatter_sweep
from repro.euler.ports import FluxPort
from repro.tau.hardware import AccessPattern, HardwareCounters

FLOPS_PER_INTERFACE = 60


def efm_half_flux(W: np.ndarray, sign: float, gamma: float) -> np.ndarray:
    """One-sided kinetic flux of a primitive line stack ``(4, n)``.

    ``sign=+1`` gives the rightward (F+) contribution of a left state;
    ``sign=-1`` the leftward (F-) contribution of a right state.
    """
    rho, un, ut, p = W[0], W[1], W[2], W[3]
    beta = rho / (2.0 * p)
    sqb = np.sqrt(beta)
    s = un * sqb
    A = 0.5 * (1.0 + sign * erf(s))
    D = np.exp(-s * s) / (2.0 * np.sqrt(np.pi) * sqb)
    E = p / (gamma - 1.0) + 0.5 * rho * (un * un + ut * ut)
    f_mass = rho * (un * A + sign * D)
    f_momn = (rho * un * un + p) * A + sign * rho * un * D
    f_momt = ut * f_mass
    f_en = (E + p) * un * A + sign * (E + 0.5 * p) * D
    return np.stack([f_mass, f_momn, f_momt, f_en])


class EFMKernel:
    """EFM flux evaluation, batched by default.

    ``batch=True`` evaluates every interface of a sweep in one vectorized
    call (mode "y" gathers/scatters through strided views, preserving the
    dual-mode memory behaviour); ``batch=False`` restores the historical
    line-at-a-time loop for A/B comparison.
    """

    def __init__(self, gamma: float = GAMMA_DEFAULT,
                 counters: HardwareCounters | None = None,
                 batch: bool = True) -> None:
        self.gamma = float(gamma)
        self.counters = counters
        self.batch = bool(batch)

    def compute(self, WL: np.ndarray, WR: np.ndarray, mode: str = "x") -> np.ndarray:
        """Interface fluxes for patch-oriented state stacks (see States).

        Mode "y" stacks have interfaces on the strided axis, so reads and
        writes on that axis are strided — the flux components inherit the
        dual-mode cache behaviour (paper Figures 7-8).
        """
        check_mode(mode)
        if WL.shape != WR.shape or WL.ndim != 3 or WL.shape[0] != 4:
            raise ValueError(f"bad state stacks: {WL.shape} vs {WR.shape}")
        F = np.empty_like(WL)
        if self.batch:
            flux = (
                efm_half_flux(flatten_sweep(WL, mode), +1.0, self.gamma)
                + efm_half_flux(flatten_sweep(WR, mode), -1.0, self.gamma)
            )
            scatter_sweep(F, flux, mode)
        else:
            nlines = WL.shape[1] if mode == "x" else WL.shape[2]
            for ell in range(nlines):
                fl = out_line(F, mode, ell)
                fl[...] = (
                    efm_half_flux(out_line(WL, mode, ell), +1.0, self.gamma)
                    + efm_half_flux(out_line(WR, mode, ell), -1.0, self.gamma)
                )
        if self.counters is not None:
            q = int(WL[0].size)
            pattern = AccessPattern.SEQUENTIAL if mode == "x" else AccessPattern.STRIDED
            self.counters.record_array_walk(q, pattern=pattern, passes=2)
            self.counters.record_flops(FLOPS_PER_INTERFACE * q)
        return F


class EFMFluxComponent(Component, FluxPort):
    """CCA packaging of :class:`EFMKernel` (provides port ``"flux"``).

    QUALITY is below GodunovFlux's: EFM is more dissipative ("GodunovFlux
    is the preferred choice for scientists (it is more accurate)").
    """

    PORT_NAME = "flux"
    FUNCTIONALITY = "flux"
    QUALITY = 0.85

    def __init__(self, gamma: float = GAMMA_DEFAULT, batch: bool = True) -> None:
        self._gamma = gamma
        self._batch = bool(batch)
        self._kernel: EFMKernel | None = None

    def set_services(self, services: Services) -> None:
        counters = services.framework.profiler.counters
        self._kernel = EFMKernel(self._gamma, counters, batch=self._batch)
        services.add_provides_port(self, self.PORT_NAME, FluxPort)

    @property
    def kernel(self) -> EFMKernel:
        if self._kernel is None:
            self._kernel = EFMKernel(self._gamma, batch=self._batch)
        return self._kernel

    def compute(self, WL: np.ndarray, WR: np.ndarray, mode: str = "x") -> np.ndarray:
        return self.kernel.compute(WL, WR, mode)
