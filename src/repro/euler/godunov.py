"""GodunovFlux: exact-Riemann-solver fluxes.

"a component that involves an internal iterative solution for every
element of the data array" (paper Section 5).  Each interface solves the
exact Riemann problem for the 1-D Euler equations (Toro's formulation):
Newton iteration on the star-region pressure with a two-rarefaction
initial guess, then sampling of the self-similar solution at x/t = 0.

The iteration count depends on the data, which is why the paper observes
GodunovFlux's timing variability *growing* with Q (Eq. 2's
``sigma_Godunov = -526 + 0.152 Q``) while its mean is linear
(``T_Godunov = -963 + 0.315 Q``) and larger than EFMFlux's.

:func:`solve_star_pressure` uses an *active-set* Newton: each step only
updates the still-unconverged interfaces (boolean-mask gather/scatter)
and the per-interface iteration counts are returned, so the observable
behind Eq. 2 — how much iterative work each interface needed — is exact
rather than a per-line mean.  :class:`GodunovKernel` evaluates whole
sweeps in one batched call by default (``batch=True``); the historical
line-at-a-time path is kept behind ``batch=False`` for A/B comparison
(see ``benchmarks/test_microbench_flux_batch.py``).
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.services import Services
from repro.euler.eos import GAMMA_DEFAULT, P_FLOOR, RHO_FLOOR
from repro.euler.kernels import (check_mode, flatten_sweep, out_line,
                                 scatter_sweep, sweep_view)
from repro.euler.ports import FluxPort
from repro.tau.hardware import AccessPattern, HardwareCounters

FLOPS_PER_INTERFACE_PER_ITER = 40

#: Newton convergence control
MAX_ITER = 25
TOL = 1.0e-7


def _pressure_function(p: np.ndarray, rho_k: np.ndarray, p_k: np.ndarray,
                       c_k: np.ndarray, gamma: float) -> tuple[np.ndarray, np.ndarray]:
    """Toro's f_K(p) and its derivative for one side (vectorized).

    Shock branch for p > p_k, rarefaction branch otherwise.  Both branches
    are evaluated for every interface and selected with ``np.where``; the
    unused branch can hit invalid powers at floor-level states, so the
    evaluation runs under ``np.errstate`` — the selected branch is always
    finite for floored inputs.
    """
    g1 = (gamma - 1.0) / (2.0 * gamma)
    A = 2.0 / ((gamma + 1.0) * rho_k)
    B = (gamma - 1.0) / (gamma + 1.0) * p_k
    shock = p > p_k
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        # Shock branch
        sq = np.sqrt(A / (p + B))
        f_s = (p - p_k) * sq
        df_s = sq * (1.0 - 0.5 * (p - p_k) / (p + B))
        # Rarefaction branch
        pr = np.maximum(p, P_FLOOR) / p_k
        f_r = 2.0 * c_k / (gamma - 1.0) * (pr**g1 - 1.0)
        df_r = 1.0 / (rho_k * c_k) * pr ** (-(gamma + 1.0) / (2.0 * gamma))
    return np.where(shock, f_s, f_r), np.where(shock, df_s, df_r)


def solve_star_pressure(
    rho_l: np.ndarray, u_l: np.ndarray, p_l: np.ndarray,
    rho_r: np.ndarray, u_r: np.ndarray, p_r: np.ndarray,
    gamma: float = GAMMA_DEFAULT,
    max_iter: int = MAX_ITER,
    tol: float = TOL,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Active-set Newton solve for (p*, u*).

    Returns ``(p_star, u_star, iter_counts)`` where ``iter_counts`` is an
    integer array (input shape) holding the number of Newton updates each
    interface received — the data-dependent work behind the paper's
    growing ``sigma_Godunov(Q)``.  Each step gathers only the interfaces
    whose relative pressure change is still above ``tol``, updates them,
    and scatters the result back; converged interfaces are frozen.
    """
    rho_l, u_l, p_l, rho_r, u_r, p_r = np.broadcast_arrays(
        rho_l, u_l, p_l, rho_r, u_r, p_r
    )
    shape = p_l.shape
    c_l = np.sqrt(gamma * p_l / rho_l)
    c_r = np.sqrt(gamma * p_r / rho_r)
    du = u_r - u_l
    # Two-rarefaction initial guess (robust and positive).  The numerator
    # goes non-positive for vacuum-generating expansions; clamp it so the
    # fractional power never sees a negative base (p* floors out instead).
    g1 = (gamma - 1.0) / (2.0 * gamma)
    num = np.maximum(c_l + c_r - 0.5 * (gamma - 1.0) * du, 0.0)
    den = c_l / np.maximum(p_l, P_FLOOR) ** g1 + c_r / np.maximum(p_r, P_FLOOR) ** g1
    p = np.maximum((num / den) ** (1.0 / g1), P_FLOOR).reshape(-1)

    rl, ul, pl = rho_l.reshape(-1), u_l.reshape(-1), p_l.reshape(-1)
    rr, ur, pr = rho_r.reshape(-1), u_r.reshape(-1), p_r.reshape(-1)
    cl, cr, duf = c_l.reshape(-1), c_r.reshape(-1), du.reshape(-1)
    iter_counts = np.zeros(p.shape, dtype=np.int64)

    active = np.arange(p.size)
    for _ in range(max_iter):
        if active.size == 0:
            break
        pa = p[active]
        f_l, df_l = _pressure_function(pa, rl[active], pl[active], cl[active], gamma)
        f_r, df_r = _pressure_function(pa, rr[active], pr[active], cr[active], gamma)
        delta = (f_l + f_r + duf[active]) / (df_l + df_r)
        p_new = np.maximum(pa - delta, P_FLOOR)
        iter_counts[active] += 1
        p[active] = p_new
        converged = 2.0 * np.abs(p_new - pa) / (p_new + pa) < tol
        active = active[~converged]

    p = p.reshape(shape)
    f_l, _ = _pressure_function(p, rho_l, p_l, c_l, gamma)
    f_r, _ = _pressure_function(p, rho_r, p_r, c_r, gamma)
    u_star = 0.5 * (u_l + u_r) + 0.5 * (f_r - f_l)
    return p, u_star, iter_counts.reshape(shape)


def sample_interface(
    rho_l, u_l, p_l, rho_r, u_r, p_r, p_star, u_star, gamma: float = GAMMA_DEFAULT
):
    """Sample the exact Riemann solution at x/t = 0 (Toro Section 4.5).

    Returns (rho, u, p) of the state on the interface, vectorized.  The
    solution is mirror-symmetric about the contact, so only the upwind
    side's wave structure is evaluated: states are reflected into the
    left-wave frame (``u -> sign*u``) and the sampled velocity reflected
    back — exactly the arithmetic of evaluating both sides, at half the
    cost.  Unused ``np.where`` branches may produce invalid intermediates
    at floor-level states, so the algebra runs under ``np.errstate``.
    """
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        gp1 = gamma + 1.0
        gm1 = gamma - 1.0

        left_of_contact = u_star >= 0.0
        sign = np.where(left_of_contact, 1.0, -1.0)
        rho_k = np.where(left_of_contact, rho_l, rho_r)
        p_k = np.where(left_of_contact, p_l, p_r)
        un = np.where(left_of_contact, u_l, u_r) * sign
        us = u_star * sign
        c_k = np.sqrt(gamma * p_k / rho_k)

        shock = p_star > p_k
        ps = p_star / p_k
        # Shock branch
        s = un - c_k * np.sqrt(gp1 / (2 * gamma) * ps + gm1 / (2 * gamma))
        rho_shock = rho_k * (ps + gm1 / gp1) / (ps * gm1 / gp1 + 1.0)
        # Rarefaction branch
        rho_rare = rho_k * ps ** (1.0 / gamma)
        c_s = c_k * ps ** (gm1 / (2 * gamma))
        sh = un - c_k             # head speed
        st = us - c_s             # tail speed
        # Inside-fan state (x/t = 0)
        # Clamp: the fan factor can go (unphysically) non-positive in branches
        # np.where will not select; keep the power computable.
        fan_fac = np.maximum(2.0 / gp1 + gm1 / (gp1 * c_k) * un, 1e-12)
        rho_fan = rho_k * fan_fac ** (2.0 / gm1)
        u_fan = 2.0 / gp1 * (c_k + 0.5 * gm1 * un)
        p_fan = p_k * fan_fac ** (2.0 * gamma / gm1)

        # Region masks: ahead of the wave, inside the fan, or star region.
        pre = np.where(shock, s >= 0.0, sh >= 0.0)
        fan = ~shock & (sh < 0.0) & (st > 0.0)

        rho = np.where(pre, rho_k,
                       np.where(fan, rho_fan, np.where(shock, rho_shock, rho_rare)))
        u = np.where(pre, un, np.where(fan, u_fan, us)) * sign
        p = np.where(pre, p_k, np.where(fan, p_fan, p_star))
    return np.maximum(rho, RHO_FLOOR), u, np.maximum(p, P_FLOOR)


class GodunovKernel:
    """Exact-Godunov flux evaluation, batched by default.

    ``batch=True`` flattens every line of a sweep into one vectorized
    Riemann batch (mode "y" gathers/scatters through strided views, so
    the dual-mode memory behaviour survives).  ``batch=False`` restores
    the historical one-line-at-a-time Python loop.
    """

    def __init__(self, gamma: float = GAMMA_DEFAULT,
                 counters: HardwareCounters | None = None,
                 batch: bool = True) -> None:
        self.gamma = float(gamma)
        self.counters = counters
        self.batch = bool(batch)
        #: cumulative Newton iterations summed over interfaces (the
        #: observable data-dependent work)
        self.total_iterations = 0
        #: per-interface Newton counts of the most recent compute(), in
        #: patch orientation (same shape as ``F[0]``)
        self.last_iter_counts: np.ndarray | None = None

    def _flux_states(self, wl: np.ndarray, wr: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Fluxes + per-interface iteration counts for ``(4, ...)`` stacks."""
        gamma = self.gamma
        rho_l, u_l, ut_l, p_l = (np.maximum(wl[0], RHO_FLOOR), wl[1], wl[2],
                                 np.maximum(wl[3], P_FLOOR))
        rho_r, u_r, ut_r, p_r = (np.maximum(wr[0], RHO_FLOOR), wr[1], wr[2],
                                 np.maximum(wr[3], P_FLOOR))
        p_star, u_star, iters = solve_star_pressure(
            rho_l, u_l, p_l, rho_r, u_r, p_r, gamma
        )
        rho, u, p = sample_interface(
            rho_l, u_l, p_l, rho_r, u_r, p_r, p_star, u_star, gamma
        )
        # Tangential velocity is passively advected: upwind by the contact.
        ut = np.where(u_star >= 0.0, ut_l, ut_r)
        E = p / (gamma - 1.0) + 0.5 * rho * (u * u + ut * ut)
        return np.stack([rho * u, rho * u * u + p, rho * u * ut, (E + p) * u]), iters

    def compute(self, WL: np.ndarray, WR: np.ndarray, mode: str = "x") -> np.ndarray:
        """Interface fluxes for patch-oriented state stacks (see States)."""
        check_mode(mode)
        if WL.shape != WR.shape or WL.ndim != 3 or WL.shape[0] != 4:
            raise ValueError(f"bad state stacks: {WL.shape} vs {WR.shape}")
        F = np.empty_like(WL)
        counts = np.empty(WL.shape[1:], dtype=np.int64)
        if self.batch:
            # One vectorized Riemann solve over every interface of the
            # sweep; mode "y" gathers and scatters through strided views.
            flux, iters = self._flux_states(
                flatten_sweep(WL, mode), flatten_sweep(WR, mode)
            )
            scatter_sweep(F, flux, mode)
            scatter_sweep(counts, iters, mode)
        else:
            nlines = WL.shape[1] if mode == "x" else WL.shape[2]
            for ell in range(nlines):
                flux, iters = self._flux_states(
                    out_line(WL, mode, ell), out_line(WR, mode, ell)
                )
                out_line(F, mode, ell)[...] = flux
                sweep_view(counts, mode)[ell] = iters
        total = int(counts.sum())
        self.total_iterations += total
        self.last_iter_counts = counts
        if self.counters is not None:
            q = int(WL[0].size)
            pattern = AccessPattern.SEQUENTIAL if mode == "x" else AccessPattern.STRIDED
            self.counters.record_array_walk(q, pattern=pattern, passes=3)
            # Exact data-dependent work: summed per-interface Newton counts
            # (formerly approximated as q * mean-iterations-per-line).
            self.counters.record_flops(FLOPS_PER_INTERFACE_PER_ITER * total)
        return F


class GodunovFluxComponent(Component, FluxPort):
    """CCA packaging of :class:`GodunovKernel` (provides port ``"flux"``).

    Substitutable for EFMFlux (same FUNCTIONALITY); higher QUALITY, higher
    cost — the paper's Quality-of-Service trade-off.
    """

    PORT_NAME = "flux"
    FUNCTIONALITY = "flux"
    QUALITY = 1.0

    def __init__(self, gamma: float = GAMMA_DEFAULT, batch: bool = True) -> None:
        self._gamma = gamma
        self._batch = bool(batch)
        self._kernel: GodunovKernel | None = None

    def set_services(self, services: Services) -> None:
        counters = services.framework.profiler.counters
        self._kernel = GodunovKernel(self._gamma, counters, batch=self._batch)
        services.add_provides_port(self, self.PORT_NAME, FluxPort)

    @property
    def kernel(self) -> GodunovKernel:
        if self._kernel is None:
            self._kernel = GodunovKernel(self._gamma, batch=self._batch)
        return self._kernel

    def compute(self, WL: np.ndarray, WR: np.ndarray, mode: str = "x") -> np.ndarray:
        return self.kernel.compute(WL, WR, mode)
