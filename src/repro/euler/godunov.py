"""GodunovFlux: exact-Riemann-solver fluxes.

"a component that involves an internal iterative solution for every
element of the data array" (paper Section 5).  Each interface solves the
exact Riemann problem for the 1-D Euler equations (Toro's formulation):
Newton iteration on the star-region pressure with a two-rarefaction
initial guess, then sampling of the self-similar solution at x/t = 0.

The iteration count depends on the data, which is why the paper observes
GodunovFlux's timing variability *growing* with Q (Eq. 2's
``sigma_Godunov = -526 + 0.152 Q``) while its mean is linear
(``T_Godunov = -963 + 0.315 Q``) and larger than EFMFlux's.
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.services import Services
from repro.euler.eos import GAMMA_DEFAULT, P_FLOOR, RHO_FLOOR
from repro.euler.kernels import check_mode, out_line
from repro.euler.ports import FluxPort
from repro.tau.hardware import AccessPattern, HardwareCounters

FLOPS_PER_INTERFACE_PER_ITER = 40

#: Newton convergence control
MAX_ITER = 25
TOL = 1.0e-7


def _pressure_function(p: np.ndarray, rho_k: np.ndarray, p_k: np.ndarray,
                       c_k: np.ndarray, gamma: float) -> tuple[np.ndarray, np.ndarray]:
    """Toro's f_K(p) and its derivative for one side (vectorized).

    Shock branch for p > p_k, rarefaction branch otherwise.
    """
    g1 = (gamma - 1.0) / (2.0 * gamma)
    A = 2.0 / ((gamma + 1.0) * rho_k)
    B = (gamma - 1.0) / (gamma + 1.0) * p_k
    shock = p > p_k
    # Shock branch
    sq = np.sqrt(A / (p + B))
    f_s = (p - p_k) * sq
    df_s = sq * (1.0 - 0.5 * (p - p_k) / (p + B))
    # Rarefaction branch
    pr = np.maximum(p, P_FLOOR) / p_k
    f_r = 2.0 * c_k / (gamma - 1.0) * (pr**g1 - 1.0)
    df_r = 1.0 / (rho_k * c_k) * pr ** (-(gamma + 1.0) / (2.0 * gamma))
    return np.where(shock, f_s, f_r), np.where(shock, df_s, df_r)


def solve_star_pressure(
    rho_l: np.ndarray, u_l: np.ndarray, p_l: np.ndarray,
    rho_r: np.ndarray, u_r: np.ndarray, p_r: np.ndarray,
    gamma: float = GAMMA_DEFAULT,
    max_iter: int = MAX_ITER,
    tol: float = TOL,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Newton solve for (p*, u*); returns (p_star, u_star, iterations).

    Vectorized over interfaces; iterates until every entry converges (the
    data-dependent iteration count behind GodunovFlux's variability).
    """
    c_l = np.sqrt(gamma * p_l / rho_l)
    c_r = np.sqrt(gamma * p_r / rho_r)
    du = u_r - u_l
    # Two-rarefaction initial guess (robust and positive).
    g1 = (gamma - 1.0) / (2.0 * gamma)
    num = c_l + c_r - 0.5 * (gamma - 1.0) * du
    den = c_l / np.maximum(p_l, P_FLOOR) ** g1 + c_r / np.maximum(p_r, P_FLOOR) ** g1
    p = np.maximum((num / den) ** (1.0 / g1), P_FLOOR)
    iterations = 0
    for _ in range(max_iter):
        f_l, df_l = _pressure_function(p, rho_l, p_l, c_l, gamma)
        f_r, df_r = _pressure_function(p, rho_r, p_r, c_r, gamma)
        delta = (f_l + f_r + du) / (df_l + df_r)
        p_new = np.maximum(p - delta, P_FLOOR)
        iterations += 1
        if np.all(2.0 * np.abs(p_new - p) / (p_new + p) < tol):
            p = p_new
            break
        p = p_new
    f_l, _ = _pressure_function(p, rho_l, p_l, c_l, gamma)
    f_r, _ = _pressure_function(p, rho_r, p_r, c_r, gamma)
    u_star = 0.5 * (u_l + u_r) + 0.5 * (f_r - f_l)
    return p, u_star, iterations


def sample_interface(
    rho_l, u_l, p_l, rho_r, u_r, p_r, p_star, u_star, gamma: float = GAMMA_DEFAULT
):
    """Sample the exact Riemann solution at x/t = 0 (Toro Section 4.5).

    Returns (rho, u, p) of the state on the interface, vectorized.
    """
    c_l = np.sqrt(gamma * p_l / rho_l)
    c_r = np.sqrt(gamma * p_r / rho_r)
    gp1 = gamma + 1.0
    gm1 = gamma - 1.0

    left_of_contact = u_star >= 0.0

    # --- Left wave structures -------------------------------------------
    shock_l = p_star > p_l
    # Left shock
    ps_l = p_star / p_l
    s_l = u_l - c_l * np.sqrt(gp1 / (2 * gamma) * ps_l + gm1 / (2 * gamma))
    rho_sl_shock = rho_l * (ps_l + gm1 / gp1) / (ps_l * gm1 / gp1 + 1.0)
    # Left rarefaction
    rho_sl_rare = rho_l * ps_l ** (1.0 / gamma)
    c_sl = c_l * ps_l ** (gm1 / (2 * gamma))
    sh_l = u_l - c_l           # head speed
    st_l = u_star - c_sl       # tail speed
    # Inside-fan state (x/t = 0)
    # Clamp: the fan factor can go (unphysically) non-positive in branches
    # np.where will not select; keep the power computable.
    fan_fac_l = np.maximum(2.0 / gp1 + gm1 / (gp1 * c_l) * u_l, 1e-12)
    rho_fan_l = rho_l * fan_fac_l ** (2.0 / gm1)
    u_fan_l = 2.0 / gp1 * (c_l + 0.5 * gm1 * u_l)
    p_fan_l = p_l * fan_fac_l ** (2.0 * gamma / gm1)

    # Resolve the left-of-contact state at x/t = 0.
    rho_left = np.where(
        shock_l,
        np.where(s_l >= 0.0, rho_l, rho_sl_shock),
        np.where(sh_l >= 0.0, rho_l, np.where(st_l <= 0.0, rho_sl_rare, rho_fan_l)),
    )
    u_left = np.where(
        shock_l,
        np.where(s_l >= 0.0, u_l, u_star),
        np.where(sh_l >= 0.0, u_l, np.where(st_l <= 0.0, u_star, u_fan_l)),
    )
    p_left = np.where(
        shock_l,
        np.where(s_l >= 0.0, p_l, p_star),
        np.where(sh_l >= 0.0, p_l, np.where(st_l <= 0.0, p_star, p_fan_l)),
    )

    # --- Right wave structures (mirror) ---------------------------------
    shock_r = p_star > p_r
    ps_r = p_star / p_r
    s_r = u_r + c_r * np.sqrt(gp1 / (2 * gamma) * ps_r + gm1 / (2 * gamma))
    rho_sr_shock = rho_r * (ps_r + gm1 / gp1) / (ps_r * gm1 / gp1 + 1.0)
    rho_sr_rare = rho_r * ps_r ** (1.0 / gamma)
    c_sr = c_r * ps_r ** (gm1 / (2 * gamma))
    sh_r = u_r + c_r
    st_r = u_star + c_sr
    fan_fac_r = np.maximum(2.0 / gp1 - gm1 / (gp1 * c_r) * u_r, 1e-12)
    rho_fan_r = rho_r * fan_fac_r ** (2.0 / gm1)
    u_fan_r = 2.0 / gp1 * (-c_r + 0.5 * gm1 * u_r)
    p_fan_r = p_r * fan_fac_r ** (2.0 * gamma / gm1)

    rho_right = np.where(
        shock_r,
        np.where(s_r <= 0.0, rho_r, rho_sr_shock),
        np.where(sh_r <= 0.0, rho_r, np.where(st_r >= 0.0, rho_sr_rare, rho_fan_r)),
    )
    u_right = np.where(
        shock_r,
        np.where(s_r <= 0.0, u_r, u_star),
        np.where(sh_r <= 0.0, u_r, np.where(st_r >= 0.0, u_star, u_fan_r)),
    )
    p_right = np.where(
        shock_r,
        np.where(s_r <= 0.0, p_r, p_star),
        np.where(sh_r <= 0.0, p_r, np.where(st_r >= 0.0, p_star, p_fan_r)),
    )

    rho = np.where(left_of_contact, rho_left, rho_right)
    u = np.where(left_of_contact, u_left, u_right)
    p = np.where(left_of_contact, p_left, p_right)
    return np.maximum(rho, RHO_FLOOR), u, np.maximum(p, P_FLOOR)


class GodunovKernel:
    """Line-sweep exact-Godunov flux evaluation."""

    def __init__(self, gamma: float = GAMMA_DEFAULT,
                 counters: HardwareCounters | None = None) -> None:
        self.gamma = float(gamma)
        self.counters = counters
        #: cumulative Newton iterations (observable data-dependent work)
        self.total_iterations = 0

    def _line_flux(self, wl: np.ndarray, wr: np.ndarray) -> np.ndarray:
        gamma = self.gamma
        rho_l, u_l, ut_l, p_l = (np.maximum(wl[0], RHO_FLOOR), wl[1], wl[2],
                                 np.maximum(wl[3], P_FLOOR))
        rho_r, u_r, ut_r, p_r = (np.maximum(wr[0], RHO_FLOOR), wr[1], wr[2],
                                 np.maximum(wr[3], P_FLOOR))
        p_star, u_star, iters = solve_star_pressure(
            rho_l, u_l, p_l, rho_r, u_r, p_r, gamma
        )
        self.total_iterations += iters
        rho, u, p = sample_interface(
            rho_l, u_l, p_l, rho_r, u_r, p_r, p_star, u_star, gamma
        )
        # Tangential velocity is passively advected: upwind by the contact.
        ut = np.where(u_star >= 0.0, ut_l, ut_r)
        E = p / (gamma - 1.0) + 0.5 * rho * (u * u + ut * ut)
        return np.stack([rho * u, rho * u * u + p, rho * u * ut, (E + p) * u]), iters

    def compute(self, WL: np.ndarray, WR: np.ndarray, mode: str = "x") -> np.ndarray:
        """Interface fluxes for patch-oriented state stacks (see States)."""
        check_mode(mode)
        if WL.shape != WR.shape or WL.ndim != 3 or WL.shape[0] != 4:
            raise ValueError(f"bad state stacks: {WL.shape} vs {WR.shape}")
        nlines = WL.shape[1] if mode == "x" else WL.shape[2]
        F = np.empty_like(WL)
        iters_total = 0
        for ell in range(nlines):
            flux, iters = self._line_flux(
                out_line(WL, mode, ell), out_line(WR, mode, ell)
            )
            out_line(F, mode, ell)[...] = flux
            iters_total += iters
        if self.counters is not None:
            q = int(WL[0].size)
            pattern = AccessPattern.SEQUENTIAL if mode == "x" else AccessPattern.STRIDED
            self.counters.record_array_walk(q, pattern=pattern, passes=3)
            mean_iters = iters_total / max(nlines, 1)
            self.counters.record_flops(int(FLOPS_PER_INTERFACE_PER_ITER * q * mean_iters))
        return F


class GodunovFluxComponent(Component, FluxPort):
    """CCA packaging of :class:`GodunovKernel` (provides port ``"flux"``).

    Substitutable for EFMFlux (same FUNCTIONALITY); higher QUALITY, higher
    cost — the paper's Quality-of-Service trade-off.
    """

    PORT_NAME = "flux"
    FUNCTIONALITY = "flux"
    QUALITY = 1.0

    def __init__(self, gamma: float = GAMMA_DEFAULT) -> None:
        self._gamma = gamma
        self._kernel: GodunovKernel | None = None

    def set_services(self, services: Services) -> None:
        counters = services.framework.profiler.counters
        self._kernel = GodunovKernel(self._gamma, counters)
        services.add_provides_port(self, self.PORT_NAME, FluxPort)

    @property
    def kernel(self) -> GodunovKernel:
        if self._kernel is None:
            self._kernel = GodunovKernel(self._gamma)
        return self._kernel

    def compute(self, WL: np.ndarray, WR: np.ndarray, mode: str = "x") -> np.ndarray:
        return self.kernel.compute(WL, WR, mode)
