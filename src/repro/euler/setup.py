"""Problem setup: a Mach-1.5 shock approaching an Air/Freon interface.

The paper simulates "the interaction of a shock wave with an interface
between two gases" (Richtmyer-Meshkov style, after Samtaney & Zabusky).
The initial condition has three x-zones:

1. post-shock air (left of ``shock_x``) — Rankine-Hugoniot state for the
   chosen Mach number;
2. quiescent pre-shock air up to the (slightly curved) interface;
3. quiescent heavy gas ("Freon": air density x ``density_ratio``) beyond.

A single gamma is used for both gases (DESIGN.md substitution); the
density jump preserves the wave structure the AMR refines on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.euler.eos import GAMMA_DEFAULT
from repro.euler.ports import DriverParams
from repro.util.validation import check_positive

#: quiescent reference state (pre-shock air)
RHO_AIR = 1.0
P0 = 1.0


def post_shock_state(
    mach: float,
    rho0: float = RHO_AIR,
    p0: float = P0,
    gamma: float = GAMMA_DEFAULT,
) -> tuple[float, float, float]:
    """Rankine-Hugoniot state behind a Mach-``mach`` shock moving into
    still gas ``(rho0, u=0, p0)``.

    Returns ``(rho2, u2, p2)`` with ``u2`` the post-shock gas speed in the
    shock's travel direction.
    """
    check_positive("mach", mach)
    if mach < 1.0:
        raise ValueError(f"shock Mach number must be >= 1, got {mach}")
    m2 = mach * mach
    gp1, gm1 = gamma + 1.0, gamma - 1.0
    p2 = p0 * (1.0 + 2.0 * gamma / gp1 * (m2 - 1.0))
    rho2 = rho0 * gp1 * m2 / (gm1 * m2 + 2.0)
    c0 = np.sqrt(gamma * p0 / rho0)
    u2 = 2.0 / gp1 * (mach - 1.0 / mach) * c0
    return (float(rho2), float(u2), float(p2))


def shock_interface_ic(
    params: DriverParams,
    gamma: float = GAMMA_DEFAULT,
    perturbation: float = 0.02,
) -> Callable[[np.ndarray, np.ndarray], dict[str, np.ndarray]]:
    """Initial-condition function ``fn(X, Y) -> {field: array}``.

    ``perturbation`` curves the gas interface sinusoidally in y so the
    interaction develops 2-D structure (the paper's Figure 1 rollup).
    """
    rho2, u2, p2 = post_shock_state(params.mach, gamma=gamma)
    rho_heavy = RHO_AIR * params.density_ratio

    def ic(X: np.ndarray, Y: np.ndarray) -> dict[str, np.ndarray]:
        x_if = params.interface_x + perturbation * np.cos(2.0 * np.pi * Y)
        rho = np.where(
            X < params.shock_x, rho2, np.where(X < x_if, RHO_AIR, rho_heavy)
        )
        u = np.where(X < params.shock_x, u2, 0.0)
        p = np.where(X < params.shock_x, p2, P0)
        E = p / (gamma - 1.0) + 0.5 * rho * u**2
        return {
            "rho": rho,
            "mx": rho * u,
            "my": np.zeros_like(rho),
            "E": E,
        }

    return ic
