"""RK2: the recursive patch-processing orchestrator.

"The RK2 component below it orchestrates the recursive processing of
patches" (paper Figure 2).  A two-stage (Heun) Runge-Kutta step is applied
to every local patch of a level; finer levels are subcycled ``r`` times per
parent step — for r=2 and three levels this is exactly the paper's
processing sequence ``L0, L1, L2, L2, L1, L2, L2`` — and each recursion
ends with a conservative fine-to-coarse synchronization.
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.services import Services
from repro.euler.eos import GAMMA_DEFAULT, max_wavespeed
from repro.euler.inviscid import RhsPort
from repro.euler.mesh_component import FIELDS, stack_fields
from repro.euler.ports import IntegratorPort, MeshPort


class RK2Component(Component, IntegratorPort):
    """Two-stage TVD Runge-Kutta over the AMR hierarchy."""

    PORT_NAME = "integrator"
    MESH_USES = "mesh"
    RHS_USES = "rhs"

    def __init__(self, gamma: float = GAMMA_DEFAULT) -> None:
        self.gamma = float(gamma)
        self._services: Services | None = None
        #: processing trace of level visits (testable against the paper's
        #: L0 L1 L2 L2 L1 L2 L2 sequence)
        self.level_trace: list[int] = []

    def set_services(self, services: Services) -> None:
        self._services = services
        services.register_uses_port(self.MESH_USES, MeshPort)
        services.register_uses_port(self.RHS_USES, RhsPort)
        services.add_provides_port(self, self.PORT_NAME, IntegratorPort)

    def _mesh(self) -> MeshPort:
        if self._services is None:
            raise RuntimeError("RK2Component not initialized by a framework")
        return self._services.get_port(self.MESH_USES)

    def _rhs(self) -> RhsPort:
        assert self._services is not None
        return self._services.get_port(self.RHS_USES)

    # ------------------------------------------------------ IntegratorPort
    def compute_dt(self, cfl: float) -> float:
        """Globally stable level-0 time step (finer levels subcycle).

        Reduces the max wavespeed over all local patches of all levels,
        then across ranks (MPI_Allreduce).
        """
        if not (0.0 < cfl <= 1.0):
            raise ValueError(f"cfl must be in (0, 1], got {cfl}")
        mesh = self._mesh()
        h = mesh.hierarchy()
        smax = 1e-30
        for lev in range(h.max_levels):
            for patch in mesh.local_patches(lev):
                smax = max(smax, max_wavespeed(stack_fields(patch), self.gamma))
        if h.comm is not None:
            smax = h.comm.allreduce(smax, op="max")
        dx0, dy0 = h.dx(0)
        return cfl * min(dx0, dy0) / smax

    def advance(self, level: int, dt: float) -> None:
        """Advance ``level`` by ``dt`` with RK2, recursing into finer levels."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        mesh = self._mesh()
        h = mesh.hierarchy()
        rhs = self._rhs()
        self.level_trace.append(level)
        dx, dy = h.dx(level)
        g = h.nghost

        mesh.ghost_update(level)
        saved: dict[int, np.ndarray] = {}
        # Stage 1: U1 = U0 + dt L(U0)
        for patch in mesh.local_patches(level):
            U0 = stack_fields(patch)
            saved[patch.uid] = U0[:, g:-g, g:-g].copy()
            dU = rhs.flux_divergence(U0, dx, dy)
            for k, f in enumerate(FIELDS):
                patch.interior(f)[...] += dt * dU[k]
        mesh.ghost_update(level)
        # Stage 2: U = (U0 + U1 + dt L(U1)) / 2
        for patch in mesh.local_patches(level):
            U1 = stack_fields(patch)
            dU = rhs.flux_divergence(U1, dx, dy)
            U_new = 0.5 * (saved[patch.uid] + U1[:, g:-g, g:-g] + dt * dU)
            for k, f in enumerate(FIELDS):
                patch.interior(f)[...] = U_new[k]
        # Subcycle finer level, then synchronize downward.
        if level + 1 < h.max_levels and h.levels[level + 1]:
            sub_dt = dt / h.r
            for _ in range(h.r):
                self.advance(level + 1, sub_dt)
            mesh.sync_down(level)
