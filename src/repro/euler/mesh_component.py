"""AMRMesh: the component that manages the patch hierarchy.

"On its right is AMRMesh that manages the patches" — and, per the paper's
profile, performs essentially all the application's message passing: the
``MPI_Waitsome``-dominated ghost-cell updates and the load-balancing /
domain (re-)decomposition of the regrid step (Figures 3 and 9).

The component wraps :class:`~repro.amr.hierarchy.GridHierarchy`, fetching
the rank communicator through the framework's builtin MPI port; a proxy on
its MeshPort records per-level ghost-update costs for Figure 9.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.cca.component import Component
from repro.cca.framework import Framework
from repro.cca.services import Services
from repro.euler.ports import DriverParams, MeshPort

#: conserved-variable field names on every patch
FIELDS = ("rho", "mx", "my", "E")


def stack_fields(patch) -> np.ndarray:
    """Conserved stack ``(4, Ni, Nj)`` (a copy) of one patch.

    The single gather point for patch-to-kernel data marshalling: the
    stacked array is what the batched sweep kernels consume.
    """
    return np.stack([patch.data(f) for f in FIELDS])


class AMRMeshComponent(Component, MeshPort):
    """CCA packaging of the SAMR hierarchy (provides port ``"mesh"``)."""

    PORT_NAME = "mesh"
    FUNCTIONALITY = "mesh"

    def __init__(self, params: DriverParams | None = None, nghost: int = 2,
                 balancer: str = "knapsack") -> None:
        self.params = params or DriverParams()
        self.nghost = int(nghost)
        self.balancer = balancer
        self._hierarchy: GridHierarchy | None = None
        self._services: Services | None = None

    # --------------------------------------------------------------- CCA
    def set_services(self, services: Services) -> None:
        self._services = services
        services.add_provides_port(self, self.PORT_NAME, MeshPort)

    def _build_hierarchy(self) -> GridHierarchy:
        p = self.params
        comm = None
        if self._services is not None:
            fw: Framework = self._services.framework
            comm = fw.comm
        domain = Box(0, 0, p.ny - 1, p.nx - 1)  # axis 0 = y rows, axis 1 = x cols
        return GridHierarchy(
            domain,
            FIELDS,
            comm=comm,
            max_levels=p.max_levels,
            nghost=self.nghost,
            flag_threshold=p.flag_threshold,
            max_patch_cells=p.max_patch_cells,
            balancer=self.balancer,
        )

    # ---------------------------------------------------------- MeshPort
    def initialize(self, ic: Callable[[np.ndarray, np.ndarray], dict[str, np.ndarray]]) -> None:
        """Build the hierarchy and fill every level with the analytic IC.

        Levels are created by successive regrids; each new level is refilled
        from the analytic initial condition for sharp flagging.
        """
        self._hierarchy = self._build_hierarchy()
        h = self._hierarchy
        h.init_level0(blocks=self.params.blocks)
        h.fill(0, ic)
        h.ghost_update(0)
        for _ in range(self.params.max_levels - 1):
            h.regrid()
            for lev in range(1, self.params.max_levels):
                if h.levels[lev]:
                    h.fill(lev, ic)
                    h.ghost_update(lev)

    def restore(self, state: dict) -> None:
        """Rebuild the hierarchy from a checkpoint state (bit-exact).

        Replaces :meth:`initialize` on a restarted run: the hierarchy is
        constructed with the same configuration, then every patch, field
        array (ghosts included), uid counter and exchanger tag is loaded
        from the saved state, so the continuation is bitwise identical to
        the uninterrupted run.
        """
        from repro.faults.checkpoint import restore_hierarchy

        self._hierarchy = self._build_hierarchy()
        restore_hierarchy(self._hierarchy, state)

    def hierarchy(self) -> GridHierarchy:
        if self._hierarchy is None:
            raise RuntimeError("AMRMesh not initialized; call initialize(ic) first")
        return self._hierarchy

    def ghost_update(self, level: int) -> float:
        return self.hierarchy().ghost_update(level)

    def sync_down(self, level: int) -> float:
        return self.hierarchy().sync_down(level)

    def regrid(self) -> float:
        return self.hierarchy().regrid()

    def local_patches(self, level: int):
        return self.hierarchy().local_patches(level)

    # ------------------------------------------------------- conveniences
    def stack(self, patch) -> np.ndarray:
        """Conserved stack ``(4, Ni, Nj)`` (a copy) of one patch."""
        return stack_fields(patch)

    def write_interior(self, patch, U_int: np.ndarray) -> None:
        """Write an interior-shaped conserved stack back into a patch."""
        for k, f in enumerate(FIELDS):
            patch.interior(f)[...] = U_int[k]
