"""ShockDriver: the application orchestrator (paper Figure 2, left).

"On the left is the ShockDriver, a component that orchestrates the
simulation."  Its GoPort sets up the shock/interface problem, then time-
steps the hierarchy, triggering a load-balancing regrid at the configured
interval ("During the course of the simulation, the application was
load-balanced once, resulting in a different domain decomposition" —
Figure 9's two clusters).

The step loop exposes pre/post-step hooks and a resume path for the fault
subsystem: a pre-step hook may raise
:class:`~repro.faults.injector.SimulatedCrash` to kill the run at a
planned step, a post-step hook writes checkpoints, and ``resume_state``
restarts the loop from a checkpoint instead of the initial condition.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cca.component import Component
from repro.cca.ports import GoPort
from repro.cca.services import Services
from repro.euler.eos import GAMMA_DEFAULT
from repro.euler.ports import DriverParams, IntegratorPort, MeshPort
from repro.euler.setup import shock_interface_ic


class ShockDriver(Component, GoPort):
    """Top-level driver component (provides port ``"go"``)."""

    MESH_USES = "mesh"
    INTEGRATOR_USES = "integrator"

    def __init__(self, params: DriverParams | None = None,
                 gamma: float = GAMMA_DEFAULT) -> None:
        self.params = params or DriverParams()
        self.gamma = float(gamma)
        self._services: Services | None = None
        #: per-step time step sizes actually taken
        self.dt_history: list[float] = []
        #: called with the step number before each step (crash injection)
        self.pre_step_hooks: list[Callable[[int], None]] = []
        #: called with the step number after each step (checkpointing)
        self.post_step_hooks: list[Callable[[int], None]] = []
        #: checkpoint payload to resume from instead of initializing
        #: (dict with "mesh", "dt_history" and "next_step" entries)
        self.resume_state: dict | None = None
        #: first step of the most recent go() (0 unless resumed)
        self.start_step = 0

    def set_services(self, services: Services) -> None:
        self._services = services
        services.register_uses_port(self.MESH_USES, MeshPort)
        services.register_uses_port(self.INTEGRATOR_USES, IntegratorPort)
        services.add_provides_port(self, "go", GoPort)

    def go(self) -> int:
        """Run the configured number of coarse steps; 0 on success.

        With ``resume_state`` set, the mesh is rebuilt bit-exactly from the
        checkpoint and the loop continues at the saved ``next_step`` —
        everything downstream (regrid cadence, dt, advances) is a pure
        function of the restored fields, so the continuation matches an
        uninterrupted run bitwise.
        """
        if self._services is None:
            raise RuntimeError("ShockDriver not initialized by a framework")
        p = self.params
        mesh: MeshPort = self._services.get_port(self.MESH_USES)
        integrator: IntegratorPort = self._services.get_port(self.INTEGRATOR_USES)
        if self.resume_state is not None:
            mesh.restore(self.resume_state["mesh"])
            self.dt_history = list(self.resume_state["dt_history"])
            self.start_step = int(self.resume_state["next_step"])
        else:
            mesh.initialize(shock_interface_ic(p, self.gamma))
            self.start_step = 0
        obs = getattr(self._services.framework, "obs", None)
        for step in range(self.start_step, p.steps):
            with self._step_span(obs, step):
                for hook in self.pre_step_hooks:
                    hook(step)
                if step > 0 and p.regrid_every > 0 and step % p.regrid_every == 0:
                    mesh.regrid()
                dt = integrator.compute_dt(p.cfl)
                if not np.isfinite(dt) or dt <= 0:
                    raise FloatingPointError(f"unstable time step {dt} at step {step}")
                self.dt_history.append(dt)
                integrator.advance(0, dt)
                for hook in self.post_step_hooks:
                    hook(step)
        return 0

    @staticmethod
    def _step_span(obs, step: int):
        """A per-step span (the critical-path analyzer's step boundaries)."""
        if obs is None:
            from contextlib import nullcontext

            return nullcontext(None)
        from repro.obs.span import CAT_STEP

        return obs.tracer.span("timestep", CAT_STEP, step=step)
