"""ShockDriver: the application orchestrator (paper Figure 2, left).

"On the left is the ShockDriver, a component that orchestrates the
simulation."  Its GoPort sets up the shock/interface problem, then time-
steps the hierarchy, triggering a load-balancing regrid at the configured
interval ("During the course of the simulation, the application was
load-balanced once, resulting in a different domain decomposition" —
Figure 9's two clusters).
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports import GoPort
from repro.cca.services import Services
from repro.euler.eos import GAMMA_DEFAULT
from repro.euler.ports import DriverParams, IntegratorPort, MeshPort
from repro.euler.setup import shock_interface_ic


class ShockDriver(Component, GoPort):
    """Top-level driver component (provides port ``"go"``)."""

    MESH_USES = "mesh"
    INTEGRATOR_USES = "integrator"

    def __init__(self, params: DriverParams | None = None,
                 gamma: float = GAMMA_DEFAULT) -> None:
        self.params = params or DriverParams()
        self.gamma = float(gamma)
        self._services: Services | None = None
        #: per-step time step sizes actually taken
        self.dt_history: list[float] = []

    def set_services(self, services: Services) -> None:
        self._services = services
        services.register_uses_port(self.MESH_USES, MeshPort)
        services.register_uses_port(self.INTEGRATOR_USES, IntegratorPort)
        services.add_provides_port(self, "go", GoPort)

    def go(self) -> int:
        """Run the configured number of coarse steps; 0 on success."""
        if self._services is None:
            raise RuntimeError("ShockDriver not initialized by a framework")
        p = self.params
        mesh: MeshPort = self._services.get_port(self.MESH_USES)
        integrator: IntegratorPort = self._services.get_port(self.INTEGRATOR_USES)
        mesh.initialize(shock_interface_ic(p, self.gamma))
        for step in range(p.steps):
            if step > 0 and p.regrid_every > 0 and step % p.regrid_every == 0:
                mesh.regrid()
            dt = integrator.compute_dt(p.cfl)
            if not np.isfinite(dt) or dt <= 0:
                raise FloatingPointError(f"unstable time step {dt} at step {step}")
            self.dt_history.append(dt)
            integrator.advance(0, dt)
        return 0
