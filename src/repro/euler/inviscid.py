"""InviscidFlux: per-patch flux divergence.

Sits between the integrator and the States/Flux components (paper
Figure 2): for one patch's conserved stack it runs both directional sweeps
— "during the execution of the application, both the X- and Y-derivatives
are calculated and the two modes of operation of these components are
invoked in an alternating fashion" — and assembles the right-hand side
``dU/dt = -dF/dx - dG/dy`` on the interior.

Proxies for States and the flux component are interposed on *this*
component's uses ports in the instrumented application.
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports import Port
from repro.cca.services import Services
from repro.euler.ports import FluxPort, StatesPort
from repro.perf.proxy import perf_params

#: variable order of mode-"y" flux stacks is (mass, mom_y, mom_x, E);
#: this index map restores (mass, mom_x, mom_y, E)
_Y_REORDER = [0, 2, 1, 3]


class RhsPort(Port):
    """Flux-divergence (spatial RHS) service."""

    @perf_params(lambda args, kwargs: {"Q": int(args[0].shape[-2] * args[0].shape[-1])})
    def flux_divergence(self, U: np.ndarray, dx: float, dy: float) -> np.ndarray:
        """``-dF/dx - dG/dy`` over the interior of a ghosted stack.

        ``U`` is ``(4, Ni, Nj)`` including ghosts; the result is
        ``(4, Ni-2g, Nj-2g)``.
        """
        raise NotImplementedError


class InviscidFluxComponent(Component, RhsPort):
    """Directional-sweep RHS assembly using States + a flux implementation."""

    PORT_NAME = "rhs"
    STATES_USES = "states"
    FLUX_USES = "flux"

    def __init__(self, nghost: int = 2) -> None:
        if nghost < 2:
            raise ValueError(f"need nghost >= 2, got {nghost}")
        self.nghost = int(nghost)
        self._services: Services | None = None
        #: per-interface Newton iteration counts of the most recent sweeps,
        #: keyed by mode — populated only when the wired flux kernel exposes
        #: them (GodunovKernel); empty for iteration-free fluxes (EFM) and
        #: when the flux port is reached through a measurement proxy.
        self.last_iter_counts: dict[str, np.ndarray] = {}

    def set_services(self, services: Services) -> None:
        self._services = services
        services.register_uses_port(self.STATES_USES, StatesPort)
        services.register_uses_port(self.FLUX_USES, FluxPort)
        services.add_provides_port(self, self.PORT_NAME, RhsPort)

    def _port(self, name: str) -> Port:
        if self._services is None:
            raise RuntimeError("InviscidFluxComponent not initialized by a framework")
        return self._services.get_port(name)

    def flux_divergence(self, U: np.ndarray, dx: float, dy: float) -> np.ndarray:
        if dx <= 0 or dy <= 0:
            raise ValueError(f"cell sizes must be positive, got dx={dx}, dy={dy}")
        states: StatesPort = self._port(self.STATES_USES)
        flux: FluxPort = self._port(self.FLUX_USES)

        # X sweep: sequential access mode.
        WLx, WRx = states.compute(U, "x")
        Fx = flux.compute(WLx, WRx, "x")  # (4, Ni-2g, nfx)
        self._capture_iter_counts(flux, "x")
        # Y sweep: strided access mode.
        WLy, WRy = states.compute(U, "y")
        Fy = flux.compute(WLy, WRy, "y")  # (4, nfy, Nj-2g)
        self._capture_iter_counts(flux, "y")

        dU = -(Fx[:, :, 1:] - Fx[:, :, :-1]) / dx
        dGy = (Fy[:, 1:, :] - Fy[:, :-1, :]) / dy
        dU -= dGy[_Y_REORDER]
        return dU

    def _capture_iter_counts(self, flux: FluxPort, mode: str) -> None:
        kernel = getattr(flux, "kernel", None)
        counts = getattr(kernel, "last_iter_counts", None)
        if counts is not None:
            self.last_iter_counts[mode] = counts
