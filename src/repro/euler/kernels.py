"""Line-sweep kernel machinery.

The paper's States/EFMFlux/GodunovFlux "can function in two modes —
sequential or strided array access to calculate X- or Y-derivatives
respectively — with different performance consequences."  Kernels here are
written the way the original Fortran/C++ loops were: one 1-D line at a
time along the sweep direction.

* mode ``"x"``: lines are array rows — contiguous memory (sequential);
* mode ``"y"``: lines are array columns — stride of one row (strided).

The access pattern is therefore *really* exercised on the host's memory
hierarchy: for cache-resident arrays the two modes cost about the same,
and the strided mode degrades as arrays outgrow the cache — Figures 4-5.

:func:`sweep_view` returns a view whose **axis 0 indexes lines** and whose
axis 1 runs along the sweep; for mode "y" that view is a transpose, so
``view[ell]`` is a strided column slice.

The batched kernel paths (``batch=True``, the default since the flux
vectorization) do not loop over lines: :func:`flatten_sweep` gathers every
line of a sweep into one contiguous ``(K, nlines*npts)`` batch and
:func:`scatter_sweep` writes a batch back.  For mode "y" the gather reads
— and the scatter writes — a *strided* view of the patch-oriented array,
so the dual-mode memory behaviour (Figures 4-5) is exercised by the batch
copies themselves; mode "x" flattens without copying at all.
"""

from __future__ import annotations

import numpy as np

MODES = ("x", "y")


def check_mode(mode: str) -> str:
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    return mode


def sweep_view(arr: np.ndarray, mode: str) -> np.ndarray:
    """View with lines on axis 0 and the sweep direction on axis 1.

    ``mode="x"``: identity (rows are contiguous lines).
    ``mode="y"``: transpose (rows of the view are strided columns).
    Works on ``(Ni, Nj)`` arrays and on stacked ``(K, Ni, Nj)`` arrays
    (the stack axis is preserved).
    """
    check_mode(mode)
    if arr.ndim == 2:
        return arr if mode == "x" else arr.T
    if arr.ndim == 3:
        return arr if mode == "x" else arr.transpose(0, 2, 1)
    raise ValueError(f"expected 2-D or stacked 3-D array, got shape {arr.shape}")


def unsweep(arr: np.ndarray, mode: str) -> np.ndarray:
    """Inverse of :func:`sweep_view` (transposition is an involution)."""
    return sweep_view(arr, mode)


def flatten_sweep(arr: np.ndarray, mode: str) -> np.ndarray:
    """All lines of a sweep as one contiguous batch ``(K, nlines*npts)``.

    Mode "x": a reshape of the patch-oriented stack — no copy.  Mode "y":
    a gather through the transposed (strided) view — the copy walks the
    source with the stride of one row, which is exactly the strided access
    the per-line path performed.
    """
    view = sweep_view(arr, mode)
    if arr.ndim == 2:
        return np.ascontiguousarray(view).reshape(-1)
    return np.ascontiguousarray(view).reshape(view.shape[0], -1)


def scatter_sweep(dst: np.ndarray, batch: np.ndarray, mode: str) -> None:
    """Write a flat batch back into a patch-oriented array.

    Inverse of :func:`flatten_sweep`; for mode "y" the assignment scatters
    through the transposed view, i.e. performs strided writes.
    """
    view = sweep_view(dst, mode)
    view[...] = batch.reshape(view.shape)


def alloc_like_sweep(nvars: int, nlines: int, npts: int) -> np.ndarray:
    """C-ordered output stack in sweep orientation ``(nvars, nlines, npts)``."""
    return np.empty((nvars, nlines, npts), dtype=np.float64, order="C")


def sweep_layout(shape: tuple[int, int], nghost: int, mode: str) -> tuple[int, int]:
    """``(nlines, nf)`` for a ghosted patch array of ``shape``.

    Only interior lines are swept; each line of n cells yields
    ``n - 2*nghost + 1`` interfaces (every interior face including the two
    boundary faces).
    """
    check_mode(mode)
    ni, nj = shape
    if mode == "x":
        nlines, nf = ni - 2 * nghost, interface_count(nj, nghost)
    else:
        nlines, nf = nj - 2 * nghost, interface_count(ni, nghost)
    if nlines < 1:
        raise ValueError(f"patch shape {shape} too small for nghost={nghost}")
    return nlines, nf


def get_line(stack: np.ndarray, mode: str, nghost: int, ell: int) -> np.ndarray:
    """Interior line ``ell`` of a ghosted ``(K, Ni, Nj)`` stack.

    Mode "x" returns a contiguous row slice; mode "y" a strided column
    slice — this is where the dual-mode memory behaviour lives.
    """
    return stack[:, nghost + ell, :] if mode == "x" else stack[:, :, nghost + ell]


def out_array(nvars: int, mode: str, nlines: int, nf: int) -> np.ndarray:
    """C-ordered interface array in *patch orientation*.

    Mode "x": ``(nvars, nlines, nf)`` — interfaces along the contiguous
    axis.  Mode "y": ``(nvars, nf, nlines)`` — interfaces along the strided
    axis, so writes (and the flux component's subsequent reads) are strided.
    """
    shape = (nvars, nlines, nf) if mode == "x" else (nvars, nf, nlines)
    return np.empty(shape, dtype=np.float64, order="C")


def out_line(arr: np.ndarray, mode: str, ell: int) -> np.ndarray:
    """Line ``ell`` of an interface array built by :func:`out_array`."""
    return arr[:, ell, :] if mode == "x" else arr[:, :, ell]


def minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The minmod slope limiter (TVD)."""
    return np.where(a * b > 0.0, np.sign(a) * np.minimum(np.abs(a), np.abs(b)), 0.0)


def interface_count(n_line: int, nghost: int) -> int:
    """Number of sweep interfaces produced for a line of ``n_line`` cells.

    Interfaces k+1/2 for k = g-1 .. n-g-1 — every face of the interior
    including its two boundary faces.  Requires g >= 2 for the limited
    reconstruction stencil.
    """
    if nghost < 2:
        raise ValueError(f"line-sweep kernels need nghost >= 2, got {nghost}")
    nf = n_line - 2 * nghost + 1
    if nf < 1:
        raise ValueError(f"line of {n_line} cells too short for nghost={nghost}")
    return nf


def reconstruct_line(w: np.ndarray, nghost: int) -> tuple[np.ndarray, np.ndarray]:
    """MUSCL (minmod-limited) left/right states at a line's interfaces.

    ``w`` holds primitive values along a line on its *last* axis (including
    ghosts); leading axes (e.g. a variable stack) broadcast through.
    Returns ``(wl, wr)`` with :func:`interface_count` entries on that axis.
    """
    g = nghost
    n = w.shape[-1]
    nf = interface_count(n, g)
    slope = np.zeros_like(w)
    slope[..., 1:-1] = minmod(w[..., 1:-1] - w[..., :-2], w[..., 2:] - w[..., 1:-1])
    wl = w[..., g - 1 : g - 1 + nf] + 0.5 * slope[..., g - 1 : g - 1 + nf]
    wr = w[..., g : g + nf] - 0.5 * slope[..., g : g + nf]
    return wl, wr
