"""The States component: interface-state reconstruction.

Converts a patch's conserved stack to primitive variables and reconstructs
limited left/right states at the sweep interfaces, one line at a time (see
:mod:`repro.euler.kernels` for the sequential/strided mode semantics).

The paper models this component's execution time as a power law in the
array size Q (Eq. 1: ``T_states = exp(1.19 log(Q) - 3.68)``) with a large
standard deviation caused by averaging the two access modes (Figure 6).
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.services import Services
from repro.euler.eos import GAMMA_DEFAULT, P_FLOOR, RHO_FLOOR
from repro.euler.kernels import (check_mode, get_line, out_array, out_line,
                                 reconstruct_line, sweep_layout, sweep_view)
from repro.euler.ports import StatesPort
from repro.tau.hardware import AccessPattern, HardwareCounters

#: rough floating point operations per cell for one States sweep
FLOPS_PER_CELL = 26

#: target footprint of one batched tile's line data (bytes).  States is
#: memory-bound: one flat batch of all lines spills its temporaries to
#: DRAM and runs *slower* than the per-line loop at large Q, so the
#: batched path processes cache-sized tiles of lines instead — Python
#: overhead drops by the tile factor while working sets stay resident.
TILE_BYTES = 64 * 1024


class StatesKernel:
    """Primitive reconstruction, batched by default.

    ``batch=True`` converts and reconstructs every line of a sweep in one
    vectorized pass over the (strided, for mode "y") sweep view;
    ``batch=False`` restores the historical line-at-a-time loop.

    ``counters`` (optional) receives PAPI-style access/FLOP reports so the
    TAU hardware metrics reflect the kernel's traffic.
    """

    def __init__(
        self,
        gamma: float = GAMMA_DEFAULT,
        nghost: int = 2,
        counters: HardwareCounters | None = None,
        batch: bool = True,
    ) -> None:
        if nghost < 2:
            raise ValueError(f"StatesKernel needs nghost >= 2, got {nghost}")
        self.gamma = float(gamma)
        self.nghost = int(nghost)
        self.counters = counters
        self.batch = bool(batch)

    def compute(self, U: np.ndarray, mode: str = "x") -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct ``(WL, WR)`` interface states for one sweep.

        ``U``: conserved stack ``(4, Ni, Nj)`` including ghosts.  Outputs
        are in *patch orientation*: ``(4, nlines, nf)`` for mode "x" and
        ``(4, nf, nlines)`` for mode "y" (interfaces along the strided
        axis), where nlines counts interior lines perpendicular to the
        sweep and nf interfaces per line.
        """
        check_mode(mode)
        if U.ndim != 3 or U.shape[0] != 4:
            raise ValueError(f"expected conserved stack (4, Ni, Nj), got {U.shape}")
        g = self.nghost
        nlines, nf = sweep_layout(U.shape[1:], g, mode)
        WL = out_array(4, mode, nlines, nf)
        WR = out_array(4, mode, nlines, nf)
        gm1 = self.gamma - 1.0
        if self.batch:
            # Cache-blocked batches of lines.  The sweep view is strided
            # in mode "y", so the primitive conversion still walks the
            # conserved stack with the stride of one row — the same memory
            # behaviour the per-line loop had, minus its Python overhead.
            V = sweep_view(U, mode)
            WLs = sweep_view(WL, mode)
            WRs = sweep_view(WR, mode)
            n_along = V.shape[2]
            tile = max(4, TILE_BYTES // (8 * n_along))
            for i0 in range(0, nlines, tile):
                i1 = min(i0 + tile, nlines)
                lines = V[:, g + i0 : g + i1, :]
                r = np.maximum(lines[0], RHO_FLOOR)
                mn = lines[1] if mode == "x" else lines[2]  # sweep-normal momentum
                mt = lines[2] if mode == "x" else lines[1]  # tangential momentum
                E = lines[3]
                W = np.empty((4,) + r.shape, dtype=np.float64)
                W[0] = r
                np.divide(mn, r, out=W[1])
                np.divide(mt, r, out=W[2])
                np.maximum(gm1 * (E - 0.5 * (mn * mn + mt * mt) / r), P_FLOOR,
                           out=W[3])
                wl, wr = reconstruct_line(W, g)
                WLs[:, i0:i1] = wl
                WRs[:, i0:i1] = wr
        else:
            n_along = U.shape[2] if mode == "x" else U.shape[1]
            W = np.empty((4, n_along), dtype=np.float64)
            for ell in range(nlines):
                # Strided loads in mode "y": each slice walks a column.
                line = get_line(U, mode, g, ell)
                r = np.maximum(line[0], RHO_FLOOR)
                mn = line[1] if mode == "x" else line[2]  # sweep-normal momentum
                mt = line[2] if mode == "x" else line[1]  # tangential momentum
                E = line[3]
                W[0] = r
                np.divide(mn, r, out=W[1])
                np.divide(mt, r, out=W[2])
                np.maximum(gm1 * (E - 0.5 * (mn * mn + mt * mt) / r), P_FLOOR, out=W[3])
                wl, wr = reconstruct_line(W, g)
                out_line(WL, mode, ell)[...] = wl
                out_line(WR, mode, ell)[...] = wr
        if self.counters is not None:
            q = int(U.shape[1] * U.shape[2])
            pattern = AccessPattern.SEQUENTIAL if mode == "x" else AccessPattern.STRIDED
            self.counters.record_array_walk(
                q, pattern=pattern, stride_elements=(1 if mode == "x" else U.shape[2]),
                passes=4,
            )
            self.counters.record_flops(FLOPS_PER_CELL * q)
        return WL, WR


class StatesComponent(Component, StatesPort):
    """CCA packaging of :class:`StatesKernel` (provides port ``"states"``)."""

    PORT_NAME = "states"
    FUNCTIONALITY = "states"

    def __init__(self, gamma: float = GAMMA_DEFAULT, nghost: int = 2,
                 batch: bool = True) -> None:
        self._gamma = gamma
        self._nghost = nghost
        self._batch = bool(batch)
        self._kernel: StatesKernel | None = None

    def set_services(self, services: Services) -> None:
        # Adopt the framework profiler's hardware counters so TAU's PAPI
        # metrics include this component's traffic.
        counters = services.framework.profiler.counters
        self._kernel = StatesKernel(self._gamma, self._nghost, counters,
                                    batch=self._batch)
        services.add_provides_port(self, self.PORT_NAME, StatesPort)

    @property
    def kernel(self) -> StatesKernel:
        if self._kernel is None:
            # Standalone (non-framework) use: lazily build an uncounted kernel.
            self._kernel = StatesKernel(self._gamma, self._nghost,
                                        batch=self._batch)
        return self._kernel

    def compute(self, U: np.ndarray, mode: str = "x") -> tuple[np.ndarray, np.ndarray]:
        return self.kernel.compute(U, mode)
