"""repro — reproduction of "Performance Measurement and Modeling of
Component Applications in a High Performance Computing Environment: A Case
Study" (Ray, Trebon, Armstrong, Shende, Malony; SAND2003-8631 / IPDPS'04).

Subpackages
-----------
- :mod:`repro.util`    — clocks, RNG, validation, text tables
- :mod:`repro.mpi`     — simulated MPI-1 subset with a network cost model
- :mod:`repro.tau`     — TAU-analog measurement library (+ PAPI-style counters)
- :mod:`repro.cca`     — CCA/CCAFFEINE-analog component framework
- :mod:`repro.perf`    — proxies, Mastermind, dual graph, assembly optimizer
- :mod:`repro.models`  — regression fits, performance & composite models
- :mod:`repro.amr`     — structured AMR substrate (Berger-Colella style)
- :mod:`repro.euler`   — the case-study application components
- :mod:`repro.harness` — per-figure experiment drivers and reporting

See README.md for a walkthrough, DESIGN.md for the system inventory and
substitution rationale, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
