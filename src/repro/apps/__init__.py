"""Additional component applications built on the same substrates.

"The principal motivations behind the CCA are to promote code reuse and
interdisciplinary collaboration" (paper Section 1).  This package
demonstrates the claim: :mod:`repro.apps.heat` assembles a heat-diffusion
solver from the *same* AMRMesh and RK2 components as the shock case study,
replacing only the right-hand-side provider — "program modification is
simplified to ... switching in a similar component without affecting the
rest of the application."
"""

from repro.apps.heat import HeatRhsComponent, HeatDriver, HeatParams, gaussian_ic

__all__ = ["HeatRhsComponent", "HeatDriver", "HeatParams", "gaussian_ic"]
