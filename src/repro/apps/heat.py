"""Heat-diffusion application: component reuse on the SAMR substrate.

The assembly mirrors the case study's (Figure 2) with one substitution:
:class:`HeatRhsComponent` provides the same ``RhsPort`` interface as
InviscidFlux, but computes an explicit diffusion stencil instead of Euler
fluxes.  AMRMesh (patches, ghost exchange, regridding) and RK2 (subcycled
integration) are reused *unchanged* — the CCA reuse claim, executable.

The temperature field rides in the hierarchy's ``rho`` slot; the remaining
conserved fields are passive.  For a Gaussian initial condition the
analytic solution stays Gaussian with variance ``s^2(t) = s0^2 + 2 nu t``,
which the tests verify quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cca.component import Component
from repro.cca.ports import GoPort
from repro.cca.services import Services
from repro.euler.inviscid import RhsPort
from repro.euler.ports import IntegratorPort, MeshPort
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class HeatParams:
    """Configuration of the diffusion mini-app."""

    nx: int = 64
    ny: int = 64
    max_levels: int = 2
    steps: int = 10
    nu: float = 5.0e-3       # diffusivity
    safety: float = 0.4      # fraction of the explicit stability limit
    sigma0: float = 0.08     # initial Gaussian width
    center: tuple[float, float] = (0.5, 0.5)
    amplitude: float = 1.0
    background: float = 0.1
    regrid_every: int = 0


def gaussian_ic(params: HeatParams):
    """Initial condition: background + Gaussian bump in the ``rho`` slot."""

    cx, cy = params.center

    def ic(X: np.ndarray, Y: np.ndarray) -> dict[str, np.ndarray]:
        r2 = (X - cx) ** 2 + (Y - cy) ** 2
        T = params.background + params.amplitude * np.exp(
            -r2 / (2.0 * params.sigma0**2)
        )
        zero = np.zeros_like(T)
        return {"rho": T, "mx": zero, "my": zero, "E": zero}

    return ic


class HeatRhsComponent(Component, RhsPort):
    """Explicit 5-point Laplacian RHS, drop-in for InviscidFlux's RhsPort."""

    PORT_NAME = "rhs"
    FUNCTIONALITY = "rhs"

    def __init__(self, nu: float = 5.0e-3, nghost: int = 2) -> None:
        check_positive("nu", nu)
        if nghost < 1:
            raise ValueError(f"need nghost >= 1, got {nghost}")
        self.nu = float(nu)
        self.nghost = int(nghost)

    def set_services(self, services: Services) -> None:
        services.add_provides_port(self, self.PORT_NAME, RhsPort)

    def flux_divergence(self, U: np.ndarray, dx: float, dy: float) -> np.ndarray:
        """``nu * laplacian(T)`` on the interior; passive fields get zero."""
        if dx <= 0 or dy <= 0:
            raise ValueError(f"cell sizes must be positive, got dx={dx}, dy={dy}")
        g = self.nghost
        T = U[0]
        ni, nj = T.shape
        core = T[g:-g, g:-g]
        lap = (
            (T[g:-g, g + 1 : nj - g + 1] - 2.0 * core + T[g:-g, g - 1 : nj - g - 1]) / dx**2
            + (T[g + 1 : ni - g + 1, g:-g] - 2.0 * core + T[g - 1 : ni - g - 1, g:-g]) / dy**2
        )
        dU = np.zeros((U.shape[0], ni - 2 * g, nj - 2 * g))
        dU[0] = self.nu * lap
        return dU


class HeatDriver(Component, GoPort):
    """Orchestrates the diffusion run (the ShockDriver analog)."""

    MESH_USES = "mesh"
    INTEGRATOR_USES = "integrator"

    def __init__(self, params: HeatParams | None = None) -> None:
        self.params = params or HeatParams()
        check_in_range("safety", self.params.safety, 0.0, 1.0)
        self._services: Services | None = None
        #: total simulated time after go()
        self.elapsed = 0.0

    def set_services(self, services: Services) -> None:
        self._services = services
        services.register_uses_port(self.MESH_USES, MeshPort)
        services.register_uses_port(self.INTEGRATOR_USES, IntegratorPort)
        services.add_provides_port(self, "go", GoPort)

    def stable_dt(self, dx: float, dy: float) -> float:
        """Explicit diffusion stability: dt <= min(dx,dy)^2 / (4 nu)."""
        h = min(dx, dy)
        return self.params.safety * h * h / (4.0 * self.params.nu)

    def go(self) -> int:
        if self._services is None:
            raise RuntimeError("HeatDriver not initialized by a framework")
        p = self.params
        mesh: MeshPort = self._services.get_port(self.MESH_USES)
        integrator: IntegratorPort = self._services.get_port(self.INTEGRATOR_USES)
        mesh.initialize(gaussian_ic(p))
        h = mesh.hierarchy()
        # Subcycling halves dt per level; stability is set by the finest.
        finest = max((lev for lev in range(h.max_levels) if h.levels[lev]),
                     default=0)
        dx_f, dy_f = h.dx(finest)
        dt = self.stable_dt(dx_f, dy_f) * (h.r**finest)
        for step in range(p.steps):
            if step > 0 and p.regrid_every > 0 and step % p.regrid_every == 0:
                mesh.regrid()
            integrator.advance(0, dt)
            self.elapsed += dt
        return 0
