"""Render every ``BENCH_*.json`` trajectory area into one report.

The committed trajectory files (``BENCH_scaling.json``,
``BENCH_serving.json``, ``BENCH_obs.json``, ``BENCH_kernels.json``, ...)
are the repo's performance ledger, but raw JSON answers nothing at a
glance.  :func:`build_report` loads every area from a baseline directory
(the repo root in CI), pairs each with the freshly generated copy under
a current directory (``benchmarks/out``) when one exists, and
:func:`render_markdown` / :func:`render_html` turn the lot into one
document: per-cell medians, 95% CIs, sample counts, gate status and the
PR-over-PR delta of every cell present on both sides.

``python -m repro.bench report`` is the CLI wrapper; CI uploads its
output as an artifact on every run.
"""

from __future__ import annotations

import glob
import html
import os
from dataclasses import dataclass, field
from typing import Any

from repro.bench.trajectory import Cell, Regression, compare, load

#: file pattern one trajectory area matches
AREA_GLOB = "BENCH_*.json"


def discover_areas(directory: str) -> dict[str, str]:
    """``{area name: path}`` for every trajectory file in ``directory``."""
    out: dict[str, str] = {}
    for path in sorted(glob.glob(os.path.join(directory, AREA_GLOB))):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        out[name] = path
    return out


@dataclass
class AreaReport:
    """One trajectory area: committed baseline vs (optional) fresh run."""

    name: str
    baseline_path: str
    baseline: dict[str, Cell]
    current: dict[str, Cell] = field(default_factory=dict)
    regressions: list[Regression] = field(default_factory=list)

    @property
    def regressed_names(self) -> set[str]:
        return {r.name for r in self.regressions}


def build_report(baseline_dir: str = ".", current_dir: str | None = None,
                 tolerance: float = 0.20) -> list[AreaReport]:
    """Load every area; pair with fresh cells and gate when available."""
    areas: list[AreaReport] = []
    for name, path in discover_areas(baseline_dir).items():
        area = AreaReport(name=name, baseline_path=path, baseline=load(path))
        if current_dir is not None:
            cur_path = os.path.join(current_dir, os.path.basename(path))
            if os.path.exists(cur_path):
                area.current = load(cur_path)
                area.regressions = compare(area.baseline, area.current,
                                           tolerance=tolerance)
        areas.append(area)
    return areas


# ------------------------------------------------------------------ rows
def _fmt(v: float | None) -> str:
    if v is None:
        return "—"
    return f"{v:g}"


def _fmt_ci(cell: Cell | None) -> str:
    if cell is None or cell.ci95 is None:
        return "—"
    return f"[{cell.ci95[0]:g}, {cell.ci95[1]:g}]"


def _delta_pct(base: Cell, cur: Cell) -> float | None:
    if base.gating_value == 0:
        return None
    return 100.0 * (cur.gating_value - base.gating_value) / base.gating_value


def _area_rows(area: AreaReport) -> list[dict[str, Any]]:
    """One row dict per cell (union of baseline and current names)."""
    rows: list[dict[str, Any]] = []
    for name in sorted(set(area.baseline) | set(area.current)):
        base = area.baseline.get(name)
        cur = area.current.get(name)
        stat = cur or base
        assert stat is not None
        delta = _delta_pct(base, cur) if base and cur else None
        if name in area.regressed_names:
            status = "REGRESSED"
        elif base is None:
            status = "new"
        elif area.current and cur is None:
            status = "retired"
        elif not stat.gate:
            status = "trend"
        else:
            status = "ok"
        rows.append({
            "cell": name,
            "baseline": None if base is None else base.gating_value,
            "current": None if cur is None else cur.gating_value,
            "delta_pct": delta,
            "unit": stat.unit,
            "ci95": _fmt_ci(cur if cur is not None else base),
            "n": stat.n_samples,
            "direction": "↑ better" if stat.higher_is_better else "↓ better",
            "status": status,
        })
    return rows


_COLUMNS = ("cell", "baseline", "current", "delta", "unit", "ci95 (median)",
            "n", "direction", "status")


def render_markdown(areas: list[AreaReport], title: str = "Benchmark "
                    "trajectory report") -> str:
    """GitHub-flavored markdown: one table per area, worst news first."""
    total_regr = sum(len(a.regressions) for a in areas)
    lines = [f"# {title}", "",
             f"Areas: {len(areas)} · cells: "
             f"{sum(len(a.baseline) for a in areas)} committed · "
             f"regressions: {total_regr}", ""]
    for area in areas:
        fresh = (f", fresh run: {len(area.current)} cell(s)"
                 if area.current else ", no fresh run")
        lines += [f"## {area.name}",
                  "",
                  f"`{os.path.basename(area.baseline_path)}` — "
                  f"{len(area.baseline)} committed cell(s){fresh}.",
                  ""]
        lines.append("| " + " | ".join(_COLUMNS) + " |")
        lines.append("|" + "---|" * len(_COLUMNS))
        for row in _area_rows(area):
            delta = ("—" if row["delta_pct"] is None
                     else f"{row['delta_pct']:+.1f}%")
            lines.append(
                "| " + " | ".join([
                    f"`{row['cell']}`",
                    _fmt(row["baseline"]),
                    _fmt(row["current"]),
                    delta,
                    row["unit"],
                    row["ci95"],
                    "—" if row["n"] is None else str(row["n"]),
                    row["direction"],
                    f"**{row['status']}**" if row["status"] == "REGRESSED"
                    else row["status"],
                ]) + " |")
        lines.append("")
        if area.regressions:
            lines.append("Regressions beyond tolerance:")
            lines += [f"- {r.format()}" for r in area.regressions]
            lines.append("")
    return "\n".join(lines)


_HTML_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; color: #1a1a2e; }
table { border-collapse: collapse; margin: 0.75rem 0 1.5rem; width: 100%; }
th, td { border: 1px solid #d0d4dc; padding: 0.3rem 0.6rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #eef1f6; }
td:first-child, th:first-child { text-align: left;
                                 font-family: ui-monospace, monospace; }
tr.regressed td { background: #fde8e8; font-weight: 600; }
tr.trend td { color: #667; }
.summary { color: #445; }
""".strip()


def render_html(areas: list[AreaReport], title: str = "Benchmark "
                "trajectory report") -> str:
    """Standalone HTML document (same rows as the markdown renderer)."""
    total_regr = sum(len(a.regressions) for a in areas)
    parts = ["<!doctype html>", "<html><head>",
             '<meta charset="utf-8">',
             f"<title>{html.escape(title)}</title>",
             f"<style>{_HTML_STYLE}</style>", "</head><body>",
             f"<h1>{html.escape(title)}</h1>",
             f'<p class="summary">Areas: {len(areas)} · committed cells: '
             f"{sum(len(a.baseline) for a in areas)} · regressions: "
             f"{total_regr}</p>"]
    for area in areas:
        parts.append(f"<h2>{html.escape(area.name)}</h2>")
        parts.append("<table><thead><tr>"
                     + "".join(f"<th>{html.escape(c)}</th>" for c in _COLUMNS)
                     + "</tr></thead><tbody>")
        for row in _area_rows(area):
            cls = {"REGRESSED": "regressed", "trend": "trend"}.get(
                row["status"], "")
            delta = ("—" if row["delta_pct"] is None
                     else f"{row['delta_pct']:+.1f}%")
            cells = [row["cell"], _fmt(row["baseline"]), _fmt(row["current"]),
                     delta, row["unit"], row["ci95"],
                     "—" if row["n"] is None else str(row["n"]),
                     row["direction"], row["status"]]
            parts.append(f'<tr class="{cls}">'
                         + "".join(f"<td>{html.escape(str(c))}</td>"
                                   for c in cells)
                         + "</tr>")
        parts.append("</tbody></table>")
        if area.regressions:
            parts.append("<ul>")
            parts += [f"<li>{html.escape(r.format())}</li>"
                      for r in area.regressions]
            parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)
