"""CLI: gate and render the benchmark trajectory areas.

Usage::

    python -m repro.bench check \
        --baseline BENCH_scaling.json \
        --current benchmarks/out/BENCH_scaling.json \
        [--tolerance 0.20]

    python -m repro.bench report \
        [--baseline-dir .] [--current-dir benchmarks/out] \
        [--out report.md] [--html report.html]

``check`` exits 1 when any gated cell regressed beyond the tolerance.
``report`` renders every ``BENCH_*.json`` area (medians, CIs, deltas)
as markdown (stdout or ``--out``) and optionally HTML.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.trajectory import compare, format_report, load


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser("check", help="compare current vs baseline")
    check.add_argument("--baseline", required=True,
                       help="committed trajectory file")
    check.add_argument("--current", required=True,
                       help="freshly generated trajectory file")
    check.add_argument("--tolerance", type=float, default=0.20,
                       help="allowed fractional slowdown (default 0.20)")
    rep = sub.add_parser("report", help="render all BENCH_* areas")
    rep.add_argument("--baseline-dir", default=".",
                     help="directory of committed BENCH_*.json (default .)")
    rep.add_argument("--current-dir", default="benchmarks/out",
                     help="directory of fresh cells (default benchmarks/out; "
                          "missing files are fine)")
    rep.add_argument("--tolerance", type=float, default=0.20,
                     help="delta highlighted as regression (default 0.20)")
    rep.add_argument("--out", default=None,
                     help="write markdown here instead of stdout")
    rep.add_argument("--html", default=None,
                     help="also write a standalone HTML report here")
    args = parser.parse_args(argv)

    if args.command == "report":
        return _report(args)

    baseline = load(args.baseline)
    current = load(args.current)
    if not baseline:
        print(f"no baseline cells at {args.baseline}; nothing to gate")
        return 0
    if not current:
        print(f"error: no current cells at {args.current} — did the "
              "scaling benches run?", file=sys.stderr)
        return 1
    regressions = compare(baseline, current, tolerance=args.tolerance)
    print(format_report(baseline, current, regressions))
    if regressions:
        print(f"\nFAIL: {len(regressions)} cell(s) regressed more than "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r.format()}", file=sys.stderr)
        return 1
    return 0


def _report(args: argparse.Namespace) -> int:
    from repro.bench.report import build_report, render_html, render_markdown

    areas = build_report(args.baseline_dir, args.current_dir,
                         tolerance=args.tolerance)
    if not areas:
        print(f"error: no BENCH_*.json areas under {args.baseline_dir!r}",
              file=sys.stderr)
        return 1
    md = render_markdown(areas)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(md + "\n")
        print(f"wrote {args.out} ({len(areas)} area(s))")
    else:
        print(md)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(areas) + "\n")
        print(f"wrote {args.html}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
