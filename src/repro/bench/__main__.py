"""CLI: compare a fresh benchmark trajectory against the committed baseline.

Usage::

    python -m repro.bench check \
        --baseline BENCH_scaling.json \
        --current benchmarks/out/BENCH_scaling.json \
        [--tolerance 0.20]

Exits 1 when any gated cell regressed beyond the tolerance.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.trajectory import compare, format_report, load


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser("check", help="compare current vs baseline")
    check.add_argument("--baseline", required=True,
                       help="committed trajectory file")
    check.add_argument("--current", required=True,
                       help="freshly generated trajectory file")
    check.add_argument("--tolerance", type=float, default=0.20,
                       help="allowed fractional slowdown (default 0.20)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    if not baseline:
        print(f"no baseline cells at {args.baseline}; nothing to gate")
        return 0
    if not current:
        print(f"error: no current cells at {args.current} — did the "
              "scaling benches run?", file=sys.stderr)
        return 1
    regressions = compare(baseline, current, tolerance=args.tolerance)
    print(format_report(baseline, current, regressions))
    if regressions:
        print(f"\nFAIL: {len(regressions)} cell(s) regressed more than "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r.format()}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
