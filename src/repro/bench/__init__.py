"""Persistent performance trajectories for the benchmark fleet.

Benches record named *cells* (scalar metrics) into per-area JSON
trajectory files — ``BENCH_scaling.json``, ``BENCH_serving.json`` — via
:func:`record_cell` / :func:`record_cell_samples`.  Committed copies at
the repo root are the baselines; ``python -m repro.bench check``
compares a freshly generated trajectory against its baseline and fails
on regressions beyond a tolerance (the CI bench-trajectory gates).

Modeled (virtual-microsecond) metrics are deterministic given the seed,
so they gate reliably even on noisy shared runners.  Wall-clock metrics
either stay ungated (single-shot timings) or go through
:func:`record_cell_samples`, which stores the per-cell median plus a
seeded-bootstrap 95% CI and gates on the median — for the serving SLO
cells, the committed baseline *is* the SLO floor, so the gate enforces
an absolute budget rather than a ratchet.
"""

from repro.bench.report import (AreaReport, build_report, discover_areas,
                                render_html, render_markdown)
from repro.bench.trajectory import (Cell, Regression, compare, format_report,
                                    load, record_cell, record_cell_samples,
                                    summarize_samples)

__all__ = [
    "AreaReport",
    "Cell",
    "Regression",
    "build_report",
    "compare",
    "discover_areas",
    "format_report",
    "load",
    "record_cell",
    "record_cell_samples",
    "render_html",
    "render_markdown",
    "summarize_samples",
]
