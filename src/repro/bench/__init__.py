"""Persistent performance trajectory for the scaling benchmarks.

The scaling and collective benches record named *cells* (scalar metrics)
into a JSON trajectory file — ``BENCH_scaling.json`` — via
:func:`record_cell`.  A committed copy of that file at the repo root is
the baseline; ``python -m repro.bench check`` compares a freshly
generated trajectory against it and fails on regressions beyond a
tolerance (the CI bench-trajectory gate).

Modeled (virtual-microsecond) metrics are deterministic given the seed,
so they gate reliably even on noisy shared runners; wall-clock metrics
are recorded for trend-watching and marked ``gate=False``.
"""

from repro.bench.trajectory import (Cell, Regression, compare, format_report,
                                    load, record_cell)

__all__ = [
    "Cell",
    "Regression",
    "compare",
    "format_report",
    "load",
    "record_cell",
]
