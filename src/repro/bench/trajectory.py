"""Trajectory file format and regression comparison.

A trajectory file is JSON::

    {"schema": 2,
     "cells": {"allreduce_hier_p16_us": {"value": 123.4,
                                         "unit": "us",
                                         "higher_is_better": false,
                                         "gate": true,
                                         "median": 120.9,
                                         "ci95": [118.2, 124.0],
                                         "n_samples": 200,
                                         "meta": {...}}}}

Cells default to lower-is-better (times, modeled costs).  ``gate=False``
cells are recorded for trend-watching but skipped by :func:`compare` —
use it for wall-clock numbers whose noise floor exceeds any sensible
tolerance on shared CI runners.

Wall-clock cells with many samples should be recorded through
:func:`record_cell_samples`, which stores the per-cell **median** plus a
seeded-bootstrap 95% confidence interval; :func:`compare` gates on the
median when present (robust to the odd scheduler hiccup), falling back
to ``value`` for scalar cells.  Schema 1 files (pre-median) still load.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.util.rng import make_rng

SCHEMA = 2
_READABLE_SCHEMAS = (1, 2)

#: canonical trajectory file name (committed baseline at the repo root,
#: freshly generated copies under ``benchmarks/out/``)
TRAJECTORY_NAME = "BENCH_scaling.json"


@dataclass(frozen=True)
class Cell:
    """One named scalar metric in a trajectory."""

    value: float
    unit: str = "us"
    higher_is_better: bool = False
    #: participate in the regression gate (turn off for wall-clock noise)
    gate: bool = True
    #: sample median (set by :func:`record_cell_samples`); the gate uses
    #: it when present
    median: float | None = None
    #: seeded-bootstrap 95% CI of the median
    ci95: tuple[float, float] | None = None
    n_samples: int | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def gating_value(self) -> float:
        """What :func:`compare` judges: the median when recorded."""
        return self.value if self.median is None else self.median


@dataclass(frozen=True)
class Regression:
    """A gated cell that moved the wrong way beyond tolerance."""

    name: str
    baseline: float
    current: float
    ratio: float  # current/baseline for lower-is-better, inverted otherwise

    def format(self) -> str:
        return (f"{self.name}: {self.baseline:g} -> {self.current:g} "
                f"({(self.ratio - 1.0) * 100.0:+.1f}%)")


def load(path: str) -> dict[str, Cell]:
    """Read a trajectory file into ``{name: Cell}`` (empty if absent)."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") not in _READABLE_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported trajectory schema {doc.get('schema')!r}")
    cells: dict[str, Cell] = {}
    for name, raw in doc.get("cells", {}).items():
        ci = raw.get("ci95")
        median = raw.get("median")
        n = raw.get("n_samples")
        cells[name] = Cell(
            value=float(raw["value"]),
            unit=str(raw.get("unit", "us")),
            higher_is_better=bool(raw.get("higher_is_better", False)),
            gate=bool(raw.get("gate", True)),
            median=None if median is None else float(median),
            ci95=None if ci is None else (float(ci[0]), float(ci[1])),
            n_samples=None if n is None else int(n),
            meta=dict(raw.get("meta", {})),
        )
    return cells


def _cell_obj(cell: Cell) -> dict[str, Any]:
    """JSON form with optional (None) statistics elided."""
    obj = asdict(cell)
    for key in ("median", "ci95", "n_samples"):
        if obj[key] is None:
            del obj[key]
    if obj.get("ci95") is not None:
        obj["ci95"] = list(obj["ci95"])
    return obj


def _dump(path: str, cells: dict[str, Cell]) -> None:
    doc = {"schema": SCHEMA,
           "cells": {name: _cell_obj(cells[name]) for name in sorted(cells)}}
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def record_cell(path: str, name: str, value: float, *, unit: str = "us",
                higher_is_better: bool = False, gate: bool = True,
                meta: dict[str, Any] | None = None) -> Cell:
    """Insert or overwrite one cell in the trajectory at ``path``.

    Read-modify-write, so benches in one session accumulate into a single
    file regardless of execution order.
    """
    cells = load(path)
    cell = Cell(value=float(value), unit=unit,
                higher_is_better=higher_is_better, gate=gate,
                meta=dict(meta or {}))
    cells[name] = cell
    _dump(path, cells)
    return cell


def summarize_samples(samples: Sequence[float], *, seed: int = 0,
                      n_boot: int = 1000,
                      confidence: float = 0.95) -> tuple[float, tuple[float, float]]:
    """Median and a seeded-bootstrap CI of the median.

    The bootstrap resamples with replacement ``n_boot`` times from a
    generator seeded via :func:`repro.util.rng.make_rng`, so the reported
    interval is reproducible given the samples.  With a single sample the
    interval collapses to that point.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    med = float(np.median(arr))
    if arr.size == 1:
        return med, (med, med)
    rng = make_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    boot_medians = np.median(arr[idx], axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(boot_medians, [alpha, 1.0 - alpha])
    return med, (float(lo), float(hi))


def record_cell_samples(path: str, name: str, samples: Sequence[float], *,
                        unit: str = "us", higher_is_better: bool = False,
                        gate: bool = True, seed: int = 0,
                        meta: dict[str, Any] | None = None) -> Cell:
    """Record a wall-clock cell from raw samples: median + bootstrap CI.

    ``value`` is set to the median too (so schema-1 consumers and humans
    reading the file see the robust statistic), and :func:`compare` gates
    on the median explicitly.
    """
    data = [float(s) for s in samples]
    median, ci95 = summarize_samples(data, seed=seed)
    cells = load(path)
    cell = Cell(value=median, unit=unit, higher_is_better=higher_is_better,
                gate=gate, median=median, ci95=ci95,
                n_samples=len(data), meta=dict(meta or {}))
    cells[name] = cell
    _dump(path, cells)
    return cell


def compare(baseline: dict[str, Cell], current: dict[str, Cell],
            tolerance: float = 0.20) -> list[Regression]:
    """Gated cells present in both trajectories that regressed > tolerance.

    For lower-is-better cells a regression is ``current > baseline *
    (1 + tolerance)``; for higher-is-better, ``current < baseline *
    (1 - tolerance)``.  Cells recorded from samples are judged on their
    **median** (``Cell.gating_value``), not the mean, so one scheduler
    hiccup in a wall-clock bench cannot fail the gate.  Cells missing
    from either side are ignored (new benches and retired benches both
    happen; the gate judges overlap).
    """
    out: list[Regression] = []
    for name in sorted(set(baseline) & set(current)):
        base, cur = baseline[name], current[name]
        if not (base.gate and cur.gate):
            continue
        bval, cval = base.gating_value, cur.gating_value
        if bval == 0:
            continue
        if base.higher_is_better:
            ratio = bval / cval if cval else float("inf")
        else:
            ratio = cval / bval
        if ratio > 1.0 + tolerance:
            out.append(Regression(name=name, baseline=bval,
                                  current=cval, ratio=ratio))
    return out


def format_report(baseline: dict[str, Cell], current: dict[str, Cell],
                  regressions: list[Regression]) -> str:
    shared = sorted(set(baseline) & set(current))
    lines = [f"trajectory: {len(shared)} shared cell(s), "
             f"{len(regressions)} regression(s)"]
    bad = {r.name for r in regressions}
    for name in shared:
        base, cur = baseline[name], current[name]
        mark = "REGRESSED" if name in bad else (
            "ungated" if not (base.gate and cur.gate) else "ok")
        ci = (f" ci95=[{cur.ci95[0]:g}, {cur.ci95[1]:g}] n={cur.n_samples}"
              if cur.ci95 is not None else "")
        stat = "median " if cur.median is not None else ""
        lines.append(f"  {name}: {stat}{base.gating_value:g} -> "
                     f"{cur.gating_value:g} {cur.unit}{ci} [{mark}]")
    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))
    if only_base:
        lines.append(f"  (baseline-only cells skipped: {', '.join(only_base)})")
    if only_cur:
        lines.append(f"  (new cells not yet in baseline: {', '.join(only_cur)})")
    return "\n".join(lines)
