"""Trajectory file format and regression comparison.

A trajectory file is JSON::

    {"schema": 1,
     "cells": {"allreduce_hier_p16_us": {"value": 123.4,
                                         "unit": "us",
                                         "higher_is_better": false,
                                         "gate": true,
                                         "meta": {...}}}}

Cells default to lower-is-better (times, modeled costs).  ``gate=False``
cells are recorded for trend-watching but skipped by :func:`compare` —
use it for wall-clock numbers whose noise floor exceeds any sensible
tolerance on shared CI runners.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any

SCHEMA = 1

#: canonical trajectory file name (committed baseline at the repo root,
#: freshly generated copies under ``benchmarks/out/``)
TRAJECTORY_NAME = "BENCH_scaling.json"


@dataclass(frozen=True)
class Cell:
    """One named scalar metric in a trajectory."""

    value: float
    unit: str = "us"
    higher_is_better: bool = False
    #: participate in the regression gate (turn off for wall-clock noise)
    gate: bool = True
    meta: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Regression:
    """A gated cell that moved the wrong way beyond tolerance."""

    name: str
    baseline: float
    current: float
    ratio: float  # current/baseline for lower-is-better, inverted otherwise

    def format(self) -> str:
        return (f"{self.name}: {self.baseline:g} -> {self.current:g} "
                f"({(self.ratio - 1.0) * 100.0:+.1f}%)")


def load(path: str) -> dict[str, Cell]:
    """Read a trajectory file into ``{name: Cell}`` (empty if absent)."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported trajectory schema {doc.get('schema')!r}")
    cells: dict[str, Cell] = {}
    for name, raw in doc.get("cells", {}).items():
        cells[name] = Cell(
            value=float(raw["value"]),
            unit=str(raw.get("unit", "us")),
            higher_is_better=bool(raw.get("higher_is_better", False)),
            gate=bool(raw.get("gate", True)),
            meta=dict(raw.get("meta", {})),
        )
    return cells


def _dump(path: str, cells: dict[str, Cell]) -> None:
    doc = {"schema": SCHEMA,
           "cells": {name: asdict(cells[name]) for name in sorted(cells)}}
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def record_cell(path: str, name: str, value: float, *, unit: str = "us",
                higher_is_better: bool = False, gate: bool = True,
                meta: dict[str, Any] | None = None) -> Cell:
    """Insert or overwrite one cell in the trajectory at ``path``.

    Read-modify-write, so benches in one session accumulate into a single
    file regardless of execution order.
    """
    cells = load(path)
    cell = Cell(value=float(value), unit=unit,
                higher_is_better=higher_is_better, gate=gate,
                meta=dict(meta or {}))
    cells[name] = cell
    _dump(path, cells)
    return cell


def compare(baseline: dict[str, Cell], current: dict[str, Cell],
            tolerance: float = 0.20) -> list[Regression]:
    """Gated cells present in both trajectories that regressed > tolerance.

    For lower-is-better cells a regression is ``current > baseline *
    (1 + tolerance)``; for higher-is-better, ``current < baseline *
    (1 - tolerance)``.  Cells missing from either side are ignored (new
    benches and retired benches both happen; the gate judges overlap).
    """
    out: list[Regression] = []
    for name in sorted(set(baseline) & set(current)):
        base, cur = baseline[name], current[name]
        if not (base.gate and cur.gate):
            continue
        if base.value == 0:
            continue
        if base.higher_is_better:
            ratio = base.value / cur.value if cur.value else float("inf")
        else:
            ratio = cur.value / base.value
        if ratio > 1.0 + tolerance:
            out.append(Regression(name=name, baseline=base.value,
                                  current=cur.value, ratio=ratio))
    return out


def format_report(baseline: dict[str, Cell], current: dict[str, Cell],
                  regressions: list[Regression]) -> str:
    shared = sorted(set(baseline) & set(current))
    lines = [f"trajectory: {len(shared)} shared cell(s), "
             f"{len(regressions)} regression(s)"]
    bad = {r.name for r in regressions}
    for name in shared:
        base, cur = baseline[name], current[name]
        mark = "REGRESSED" if name in bad else (
            "ungated" if not (base.gate and cur.gate) else "ok")
        lines.append(f"  {name}: {base.value:g} -> {cur.value:g} "
                     f"{cur.unit} [{mark}]")
    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))
    if only_base:
        lines.append(f"  (baseline-only cells skipped: {', '.join(only_base)})")
    if only_cur:
        lines.append(f"  (new cells not yet in baseline: {', '.join(only_cur)})")
    return "\n".join(lines)
