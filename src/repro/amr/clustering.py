"""Berger-Rigoutsos clustering: flagged cells -> rectangular patches.

"the grid points flagged and collated into rectangular children patches"
(paper Section 5).  The signature algorithm: take row/column sums of the
flag mask (signatures), trim zero margins, then recursively split the box
at holes (zero signature entries) or, failing that, at the strongest
inflection of the signature's second difference, until every box is
efficient (fill fraction >= ``min_fill``) or minimal.
"""

from __future__ import annotations

import numpy as np

from repro.amr.box import Box
from repro.util.validation import check_in_range, check_positive


def cluster_flags(
    flags: np.ndarray,
    origin: Box,
    min_fill: float = 0.7,
    max_cells: int = 32_768,
    min_width: int = 4,
) -> list[Box]:
    """Cover all True cells of ``flags`` with efficient rectangles.

    Parameters
    ----------
    flags:
        Boolean mask laid out over ``origin`` (``flags.shape == origin.shape``).
    origin:
        The index box the mask spans (level global index space).
    min_fill:
        Minimum fraction of flagged cells per returned box.
    max_cells:
        Boxes larger than this are split even if efficient (bounds patch
        size for load balancing).
    min_width:
        Boxes are not split below this width in either direction.

    Returns boxes in the *same index space* as ``origin``; their union
    contains every flagged cell.
    """
    check_in_range("min_fill", min_fill, 0.0, 1.0)
    check_positive("max_cells", max_cells)
    check_positive("min_width", min_width)
    mask = np.asarray(flags, dtype=bool)
    if mask.shape != origin.shape:
        raise ValueError(f"flags shape {mask.shape} != origin shape {origin.shape}")
    if not mask.any():
        return []
    out: list[Box] = []
    _cluster(mask, origin, min_fill, max_cells, min_width, out)
    return out


def _trim(mask: np.ndarray, box: Box) -> tuple[np.ndarray, Box] | None:
    """Shrink to the bounding box of flagged cells (None if empty)."""
    rows = mask.any(axis=1)
    cols = mask.any(axis=0)
    if not rows.any():
        return None
    i0, i1 = int(np.argmax(rows)), int(len(rows) - np.argmax(rows[::-1]) - 1)
    j0, j1 = int(np.argmax(cols)), int(len(cols) - np.argmax(cols[::-1]) - 1)
    sub = mask[i0 : i1 + 1, j0 : j1 + 1]
    return sub, Box(box.ilo + i0, box.jlo + j0, box.ilo + i1, box.jlo + j1)


def _find_hole(signature: np.ndarray, min_width: int) -> int | None:
    """Index to split *after*, at an interior zero of the signature."""
    zeros = np.flatnonzero(signature == 0)
    best = None
    center = (len(signature) - 1) / 2
    for z in zeros:
        if z < min_width or z > len(signature) - 1 - min_width:
            continue
        if best is None or abs(z - center) < abs(best - center):
            best = int(z)
    return best


def _find_inflection(signature: np.ndarray, min_width: int) -> int | None:
    """Split index at the largest jump of the signature's second difference."""
    if len(signature) < 2 * min_width + 2:
        return None
    lap = np.diff(signature.astype(np.int64), n=2)  # lap[k] ~ curvature at k+1
    best, best_mag = None, 0
    for k in range(len(lap) - 1):
        cut = k + 1  # split between cells cut and cut+1
        if cut < min_width - 1 or cut >= len(signature) - min_width:
            continue
        mag = abs(int(lap[k + 1]) - int(lap[k]))
        if mag > best_mag:
            best, best_mag = cut, mag
    return best


def _cluster(
    mask: np.ndarray,
    box: Box,
    min_fill: float,
    max_cells: int,
    min_width: int,
    out: list[Box],
) -> None:
    trimmed = _trim(mask, box)
    if trimmed is None:
        return
    mask, box = trimmed
    fill = mask.mean()
    ni, nj = mask.shape
    small = ni <= min_width and nj <= min_width
    if (fill >= min_fill and box.ncells <= max_cells) or small:
        out.append(box)
        return

    sig_i = mask.sum(axis=1)  # signature along i (rows)
    sig_j = mask.sum(axis=0)  # signature along j (cols)

    # Prefer hole splits on the longer axis first; fall back to inflection;
    # last resort: bisect the longer axis.
    for axis in sorted((0, 1), key=lambda a: -(mask.shape[a])):
        sig = sig_i if axis == 0 else sig_j
        cut = _find_hole(sig, min_width)
        if cut is not None:
            _split(mask, box, axis, cut, min_fill, max_cells, min_width, out)
            return
    for axis in sorted((0, 1), key=lambda a: -(mask.shape[a])):
        sig = sig_i if axis == 0 else sig_j
        cut = _find_inflection(sig, min_width)
        if cut is not None:
            _split(mask, box, axis, cut, min_fill, max_cells, min_width, out)
            return
    axis = 0 if ni >= nj else 1
    n = mask.shape[axis]
    if n < 2 * min_width:
        out.append(box)  # cannot split without violating min_width
        return
    _split(mask, box, axis, n // 2 - 1, min_fill, max_cells, min_width, out)


def _split(
    mask: np.ndarray,
    box: Box,
    axis: int,
    cut: int,
    min_fill: float,
    max_cells: int,
    min_width: int,
    out: list[Box],
) -> None:
    """Split after local index ``cut`` along ``axis`` and recurse."""
    if axis == 0:
        m1, m2 = mask[: cut + 1, :], mask[cut + 1 :, :]
        b1 = Box(box.ilo, box.jlo, box.ilo + cut, box.jhi)
        b2 = Box(box.ilo + cut + 1, box.jlo, box.ihi, box.jhi)
    else:
        m1, m2 = mask[:, : cut + 1], mask[:, cut + 1 :]
        b1 = Box(box.ilo, box.jlo, box.ihi, box.jlo + cut)
        b2 = Box(box.ilo, box.jlo + cut + 1, box.ihi, box.jhi)
    _cluster(m1, b1, min_fill, max_cells, min_width, out)
    _cluster(m2, b2, min_fill, max_cells, min_width, out)
