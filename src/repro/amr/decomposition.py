"""Domain decomposition and load balancing of patches over ranks.

The paper's AMRMesh performs "load-balancing and domain (re-)
decomposition"; its ghost-update message costs then cluster per
decomposition (Figure 9).  Two strategies are provided:

* :func:`assign_round_robin` — naive baseline (patch k -> rank k mod P);
* :func:`assign_knapsack` — longest-processing-time-first greedy knapsack
  on patch cell counts, the classic SAMR load balancer.

The ablation bench compares their imbalance (DESIGN.md Section 5).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.amr.patch import Patch
from repro.util.validation import check_positive


@dataclass(frozen=True)
class DecompositionStats:
    """Load distribution summary for one assignment."""

    cells_per_rank: tuple[int, ...]

    @property
    def imbalance(self) -> float:
        """max/mean load ratio (1.0 = perfectly balanced)."""
        mean = sum(self.cells_per_rank) / len(self.cells_per_rank)
        return max(self.cells_per_rank) / mean if mean > 0 else 1.0


def _stats(patches: Sequence[Patch], nranks: int) -> DecompositionStats:
    cells = [0] * nranks
    for p in patches:
        cells[p.owner] += p.ncells
    return DecompositionStats(tuple(cells))


def assign_round_robin(patches: Sequence[Patch], nranks: int) -> DecompositionStats:
    """Assign patch k to rank k mod P (in-place on ``patch.owner``)."""
    check_positive("nranks", nranks)
    for k, p in enumerate(sorted(patches, key=lambda p: p.uid)):
        p.owner = k % nranks
    return _stats(patches, nranks)


def assign_knapsack(patches: Sequence[Patch], nranks: int) -> DecompositionStats:
    """Greedy LPT knapsack: heaviest patch to the lightest rank.

    Deterministic: ties broken by rank index, patches pre-sorted by
    (cells desc, uid) so repeated runs decompose identically.
    """
    check_positive("nranks", nranks)
    heap: list[tuple[int, int]] = [(0, r) for r in range(nranks)]
    heapq.heapify(heap)
    for p in sorted(patches, key=lambda p: (-p.ncells, p.uid)):
        load, r = heapq.heappop(heap)
        p.owner = r
        heapq.heappush(heap, (load + p.ncells, r))
    return _stats(patches, nranks)
