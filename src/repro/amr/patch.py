"""Patches: rectangular Cartesian meshes with ghost cells.

"Patches can be of any size or aspect ratio" (paper Section 5).  A
:class:`Patch` stores named cell-centered fields as 2-D arrays including a
``nghost``-wide ghost frame; the interior corresponds to the patch's
:class:`~repro.amr.box.Box` in the level's global index space.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.amr.box import Box
from repro.util.validation import check_non_negative

_patch_ids = itertools.count()


@dataclass
class Patch:
    """One rectangular mesh patch on one refinement level."""

    box: Box
    level: int
    owner: int = 0
    nghost: int = 2
    fields: dict[str, np.ndarray] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_patch_ids))
    #: write-generation stamp; the ghost-race sanitizer compares it across
    #: a nonblocking exchange to localize which writer dirtied a region
    version: int = 0

    def __post_init__(self) -> None:
        check_non_negative("level", self.level)
        check_non_negative("nghost", self.nghost)
        check_non_negative("owner", self.owner)

    # ------------------------------------------------------------ layout
    @property
    def ghost_box(self) -> Box:
        """The index box covered by storage including ghosts."""
        return self.box.grow(self.nghost)

    @property
    def array_shape(self) -> tuple[int, int]:
        ni, nj = self.box.shape
        return (ni + 2 * self.nghost, nj + 2 * self.nghost)

    @property
    def ncells(self) -> int:
        """Interior cell count (the patch's workload measure)."""
        return self.box.ncells

    # ------------------------------------------------------------ fields
    def allocate(self, name: str, fill: float = 0.0) -> np.ndarray:
        """Create (or reset) a named field, returning its array."""
        arr = np.full(self.array_shape, fill, dtype=np.float64)
        self.fields[name] = arr
        return arr

    def data(self, name: str) -> np.ndarray:
        """Full storage array of a field (interior + ghosts)."""
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(
                f"patch {self.uid} (L{self.level} {self.box}) has no field "
                f"{name!r}; have {sorted(self.fields)}"
            ) from None

    def interior(self, name: str) -> np.ndarray:
        """View of the field's interior cells."""
        g = self.nghost
        arr = self.data(name)
        return arr[g : arr.shape[0] - g, g : arr.shape[1] - g] if g else arr

    def view(self, name: str, region: Box) -> np.ndarray:
        """View of the field over ``region`` (level index space).

        ``region`` must lie inside the patch's ghost box.
        """
        si, sj = region.slices(self.ghost_box)
        return self.data(name)[si, sj]

    def mark_written(self) -> None:
        """Bump the write-generation stamp (call after mutating field data)."""
        self.version += 1

    # ------------------------------------------------------------- misc
    def field_names(self) -> list[str]:
        return sorted(self.fields)

    def copy(self) -> "Patch":
        """Deep copy (fresh uid is *not* assigned; identity is preserved)."""
        return Patch(
            box=self.box,
            level=self.level,
            owner=self.owner,
            nghost=self.nghost,
            fields={k: v.copy() for k, v in self.fields.items()},
            uid=self.uid,
            version=self.version,
        )

    def __repr__(self) -> str:
        return (
            f"Patch(uid={self.uid}, L{self.level}, box={self.box}, owner={self.owner}, "
            f"fields={self.field_names()})"
        )
