"""Structured Adaptive Mesh Refinement substrate (paper Section 5).

Berger-Colella style SAMR for 2-D Cartesian meshes:

* a relatively coarse Cartesian mesh over a rectangular domain
  (:class:`Box`, :class:`Patch`);
* flagging of cells needing refinement by a gradient metric
  (:mod:`repro.amr.flagging`);
* collation of flagged points into rectangular children patches by the
  Berger-Rigoutsos signature algorithm (:mod:`repro.amr.clustering`);
* a recursive hierarchy of patches with constant refinement factor
  (:class:`GridHierarchy`), with prolongation/restriction between levels
  (:mod:`repro.amr.interpolation`);
* domain decomposition and load balancing of patches over ranks
  (:mod:`repro.amr.decomposition`);
* distributed ghost-cell updates over the simulated MPI layer
  (:class:`GhostExchanger`) — the message-passing workload behind the
  paper's Figure 9.
"""

from repro.amr.box import Box
from repro.amr.patch import Patch
from repro.amr.flagging import flag_gradient
from repro.amr.clustering import cluster_flags
from repro.amr.interpolation import prolong, restrict
from repro.amr.decomposition import assign_round_robin, assign_knapsack, DecompositionStats
from repro.amr.hierarchy import GridHierarchy
from repro.amr.ghost import GhostExchanger, ExchangePlan

__all__ = [
    "Box",
    "Patch",
    "flag_gradient",
    "cluster_flags",
    "prolong",
    "restrict",
    "assign_round_robin",
    "assign_knapsack",
    "DecompositionStats",
    "GridHierarchy",
    "GhostExchanger",
    "ExchangePlan",
]
