"""The patch hierarchy (Berger-Colella SAMR).

"one ultimately obtains a hierarchy of patches with different grid
densities, with the finest patches overlaying a small part of the domain"
(paper Section 5).  A :class:`GridHierarchy` holds L levels of patches over
a rectangular domain with a constant refinement factor; metadata (boxes,
owners, uids) is replicated on every rank (SCMD), while field data lives
only on the owning rank and moves through :mod:`repro.amr.ghost` transfers.

Responsibilities:

* level-0 decomposition into blocks and load-balanced ownership;
* gradient flagging -> Berger-Rigoutsos clustering -> regrid, with
  deterministic patch numbering so all ranks agree without negotiation;
* ghost-cell updates (coarse-to-fine cascade fill, same-level exchange,
  zero-gradient physical boundaries), returning the modeled MPI time each
  call consumed — the per-level samples of the paper's Figure 9;
* conservative fine-to-coarse synchronization (restriction).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.amr.box import Box
from repro.amr.clustering import cluster_flags
from repro.amr.decomposition import (DecompositionStats, assign_knapsack,
                                     assign_round_robin)
from repro.amr.flagging import buffer_flags, flag_gradient
from repro.amr.ghost import GhostExchanger, Transfer
from repro.amr.interpolation import prolong, restrict
from repro.amr.patch import Patch
from repro.mpi.comm import SimComm
from repro.util.validation import check_in_range, check_positive

_BALANCERS = {"knapsack": assign_knapsack, "round_robin": assign_round_robin}


def ghost_strips(box: Box, nghost: int, clip: Box) -> list[Box]:
    """The ghost frame of ``box`` as up to 4 rectangles, clipped to ``clip``."""
    if nghost == 0:
        return []
    g = box.grow(nghost)
    candidates = [
        Box(g.ilo, g.jlo, box.ilo - 1, g.jhi),  # low-i strip (full j width)
        Box(box.ihi + 1, g.jlo, g.ihi, g.jhi),  # high-i strip
        Box(box.ilo, g.jlo, box.ihi, box.jlo - 1),  # low-j strip (between)
        Box(box.ilo, box.jhi + 1, box.ihi, g.jhi),  # high-j strip
    ]
    out = []
    for c in candidates:
        ov = c.intersection(clip)
        if ov is not None:
            out.append(ov)
    return out


class GridHierarchy:
    """L-level SAMR hierarchy with distributed patch data."""

    def __init__(
        self,
        domain: Box,
        fields: Sequence[str],
        *,
        refinement_factor: int = 2,
        max_levels: int = 3,
        nghost: int = 2,
        comm: SimComm | None = None,
        physical_extent: tuple[tuple[float, float], tuple[float, float]] = ((0.0, 1.0), (0.0, 1.0)),
        flag_threshold: float = 0.05,
        flag_buffer: int = 2,
        min_fill: float = 0.7,
        max_patch_cells: int = 32_768,
        min_width: int = 4,
        balancer: str = "knapsack",
    ) -> None:
        check_positive("refinement_factor", refinement_factor)
        check_positive("max_levels", max_levels)
        check_positive("min_width", min_width)
        check_in_range("min_fill", min_fill, 0.0, 1.0)
        if balancer not in _BALANCERS:
            raise ValueError(f"balancer must be one of {sorted(_BALANCERS)}, got {balancer!r}")
        self.domain = domain
        self.fields = list(fields)
        if not self.fields:
            raise ValueError("at least one field is required")
        self.r = int(refinement_factor)
        self.max_levels = int(max_levels)
        self.nghost = int(nghost)
        self.comm = comm
        self.rank = comm.rank if comm is not None else 0
        self.nranks = comm.size if comm is not None else 1
        (self.x0, self.x1), (self.y0, self.y1) = physical_extent
        if not (self.x1 > self.x0 and self.y1 > self.y0):
            raise ValueError(f"degenerate physical extent {physical_extent}")
        self.flag_threshold = flag_threshold
        self.flag_buffer = int(flag_buffer)
        self.min_fill = min_fill
        self.max_patch_cells = int(max_patch_cells)
        self.min_width = int(min_width)
        self.balancer = _BALANCERS[balancer]
        self.levels: list[list[Patch]] = [[] for _ in range(self.max_levels)]
        self.exchanger = GhostExchanger(comm=comm, rank=self.rank)
        self._uid = 0
        #: number of completed regrids (decomposition generation, Figure 9)
        self.regrid_count = 0
        self.decomposition_stats: list[DecompositionStats] = []

    # ----------------------------------------------------------- geometry
    def dx(self, level: int) -> tuple[float, float]:
        """Physical cell size (dx, dy) on ``level``.

        Axis convention: array axis 1 (j, the C-contiguous axis) is x, so
        x-direction sweeps are memory-sequential and y-direction sweeps are
        strided — the paper's sequential/strided dual mode of States and
        the flux components.  Axis 0 (i) is y.
        """
        ni, nj = self.domain.shape
        f = self.r**level
        return ((self.x1 - self.x0) / (nj * f), (self.y1 - self.y0) / (ni * f))

    def level_box(self, level: int) -> Box:
        """The whole-domain index box at ``level`` resolution."""
        return self.domain.refine(self.r**level)

    def cell_centers(self, patch: Patch, include_ghosts: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """(X, Y) center coordinates for a patch's cells.

        Arrays are indexed ``[i, j]`` with j along x (contiguous) and i
        along y; both returned grids have the patch's array shape.
        """
        dx, dy = self.dx(patch.level)
        box = patch.ghost_box if include_ghosts else patch.box
        yi = self.y0 + (np.arange(box.ilo, box.ihi + 1) + 0.5) * dy
        xj = self.x0 + (np.arange(box.jlo, box.jhi + 1) + 0.5) * dx
        Y, X = np.meshgrid(yi, xj, indexing="ij")
        return X, Y

    # ----------------------------------------------------------- patches
    def _alloc_uid(self) -> int:
        self._uid += 1
        return self._uid

    def _new_patch(self, box: Box, level: int) -> Patch:
        return Patch(box=box, level=level, nghost=self.nghost, uid=self._alloc_uid())

    def is_local(self, patch: Patch) -> bool:
        return self.comm is None or patch.owner == self.rank

    def patches(self, level: int) -> list[Patch]:
        return list(self.levels[level])

    def local_patches(self, level: int) -> list[Patch]:
        return [p for p in self.levels[level] if self.is_local(p)]

    def _allocate_local(self, patches: Sequence[Patch]) -> None:
        for p in patches:
            if self.is_local(p):
                for f in self.fields:
                    p.allocate(f)

    def total_cells(self, level: int | None = None) -> int:
        levels = range(self.max_levels) if level is None else [level]
        return sum(p.ncells for lev in levels for p in self.levels[lev])

    # -------------------------------------------------------------- init
    def init_level0(self, blocks: tuple[int, int] = (2, 2)) -> None:
        """Decompose the domain into a blocks[0] x blocks[1] patch grid."""
        bi, bj = blocks
        check_positive("blocks[0]", bi)
        check_positive("blocks[1]", bj)
        ni, nj = self.domain.shape
        if bi > ni or bj > nj:
            raise ValueError(f"cannot split {ni}x{nj} domain into {bi}x{bj} blocks")
        iedges = np.linspace(self.domain.ilo, self.domain.ihi + 1, bi + 1).astype(int)
        jedges = np.linspace(self.domain.jlo, self.domain.jhi + 1, bj + 1).astype(int)
        patches = []
        for a in range(bi):
            for b in range(bj):
                box = Box(iedges[a], jedges[b], iedges[a + 1] - 1, jedges[b + 1] - 1)
                patches.append(self._new_patch(box, 0))
        stats = self.balancer(patches, self.nranks)
        self.decomposition_stats.append(stats)
        self.levels[0] = patches
        self._allocate_local(patches)

    def fill(self, level: int, fn: Callable[[np.ndarray, np.ndarray], dict[str, np.ndarray]]) -> None:
        """Set local patch data from ``fn(X, Y) -> {field: array}``.

        Fills interior *and* ghost cells (initial conditions are analytic,
        so ghosts can be seeded directly).
        """
        for p in self.local_patches(level):
            X, Y = self.cell_centers(p, include_ghosts=True)
            values = fn(X, Y)
            missing = set(self.fields) - set(values)
            if missing:
                raise KeyError(f"initial condition missing fields {sorted(missing)}")
            for f in self.fields:
                arr = np.asarray(values[f], dtype=float)
                if arr.shape != p.array_shape:
                    raise ValueError(
                        f"initial condition for {f!r} has shape {arr.shape}, "
                        f"expected {p.array_shape}"
                    )
                p.data(f)[...] = arr

    # ------------------------------------------------------ ghost update
    def _interlevel_ghost_phases(self, level: int) -> list[list[Transfer]]:
        """Coarse->fine prolongation transfers covering fine ghost strips.

        Cascades from level 0 upward so finer sources overwrite coarser
        ones; level 0 covers the domain, so no strip is left unfilled.
        Returns one transfer list per source level: each must be drained
        as its own exchange, because a nonblocking drain completes inserts
        in arrival order and would otherwise let a coarse prolongation
        land *on top of* finer data (a write-after-write race the ghost
        sanitizer flags).
        """
        phases: list[list[Transfer]] = []
        lbox = self.level_box(level)
        for src_level in range(level):
            power = self.r ** (level - src_level)
            plan: list[Transfer] = []
            for fp in self.levels[level]:
                for strip in ghost_strips(fp.box, self.nghost, lbox):
                    cov = strip.coarsen(power)
                    for cp in self.levels[src_level]:
                        ov_c = cov.intersection(cp.box)
                        if ov_c is None:
                            continue
                        fine_cover = ov_c.refine(power)
                        dst = fine_cover.intersection(strip)
                        if dst is None:
                            continue
                        crop = dst.slices(fine_cover)
                        plan.append(Transfer(
                            src_patch=cp,
                            dst_patch=fp,
                            src_region=ov_c,
                            dst_region=dst,
                            transform=(lambda b, p=power, c=crop: prolong(b, p)[c]),
                        ))
            phases.append(plan)
        return phases

    def _fill_physical_bc(self, level: int) -> None:
        """Zero-gradient extrapolation into ghosts outside the domain."""
        g = self.nghost
        if g == 0:
            return
        lbox = self.level_box(level)
        for p in self.local_patches(level):
            for f in self.fields:
                arr = p.data(f)
                if p.box.ilo == lbox.ilo:
                    arr[:g, :] = arr[g : g + 1, :]
                if p.box.ihi == lbox.ihi:
                    arr[-g:, :] = arr[-g - 1 : -g, :]
                if p.box.jlo == lbox.jlo:
                    arr[:, :g] = arr[:, g : g + 1]
                if p.box.jhi == lbox.jhi:
                    arr[:, -g:] = arr[:, -g - 1 : -g]

    def ghost_update(self, level: int) -> float:
        """Fill ghost cells on ``level``; returns modeled MPI time (us).

        Order: coarse-level cascade fill, then same-level exchange (which
        overwrites where true neighbors exist), then physical boundaries.
        """
        comm_us = 0.0
        if level > 0:
            for phase in self._interlevel_ghost_phases(level):
                comm_us += self.exchanger.run(phase, self.fields)
        comm_us += self.exchanger.update_level(self.levels[level], self.fields)
        self._fill_physical_bc(level)
        return comm_us

    # ---------------------------------------------------------- sync down
    def sync_down(self, level: int) -> float:
        """Restrict level+1 interiors onto ``level``; returns MPI time (us)."""
        if level + 1 >= self.max_levels or not self.levels[level + 1]:
            return 0.0
        plan: list[Transfer] = []
        for cp in self.levels[level]:
            fine_span = cp.box.refine(self.r)
            for fp in self.levels[level + 1]:
                ov_f = fine_span.intersection(fp.box)
                if ov_f is None:
                    continue
                plan.append(Transfer(
                    src_patch=fp,
                    dst_patch=cp,
                    src_region=ov_f,
                    dst_region=ov_f.coarsen(self.r),
                    transform=(lambda b, r=self.r: restrict(b, r)),
                ))
        return self.exchanger.run(plan, self.fields)

    # ----------------------------------------------------------- invariants
    def check_nesting(self, buffer: int = 0) -> list[str]:
        """Verify structural invariants; returns a list of violations.

        Checks, per level: patches lie inside the level's domain box,
        patches on a level are pairwise disjoint, and (proper nesting)
        every fine patch, shrunk by ``buffer`` cells, is covered by the
        union of its parent level's patches.
        """
        problems: list[str] = []
        for lev in range(self.max_levels):
            lbox = self.level_box(lev)
            patches = self.levels[lev]
            for p in patches:
                if not lbox.contains_box(p.box):
                    problems.append(f"L{lev} patch {p.uid} {p.box} outside {lbox}")
            for i, a in enumerate(patches):
                for b in patches[i + 1:]:
                    if a.box.intersection(b.box) is not None:
                        problems.append(
                            f"L{lev} patches {a.uid} and {b.uid} overlap"
                        )
            if lev == 0 or not patches:
                continue
            # Coverage of each fine patch by the coarser level.
            parent_boxes = [cp.box for cp in self.levels[lev - 1]]
            for p in patches:
                target = p.box.coarsen(self.r)
                if buffer:
                    try:
                        target = target.grow(-buffer)
                    except ValueError:
                        continue  # patch smaller than the buffer: vacuous
                uncovered = target.ncells
                for pb in parent_boxes:
                    ov = target.intersection(pb)
                    if ov is not None:
                        uncovered -= ov.ncells
                if uncovered > 0:
                    problems.append(
                        f"L{lev} patch {p.uid} {p.box}: {uncovered} coarse "
                        "cells not covered by parent level"
                    )
        return problems

    # -------------------------------------------------------------- regrid
    def _local_flag_mask(self, patch: Patch, field: str) -> np.ndarray:
        """Gradient flags for one patch's interior, using one ghost ring.

        Flagging on ghost-inclusive data is essential: a discontinuity
        sitting exactly on a patch boundary is invisible to interior-only
        gradients.  Requires ghosts to be current (regrid refreshes them).
        """
        grown = patch.view(field, patch.box.grow(1))
        return flag_gradient(grown, self.flag_threshold)[1:-1, 1:-1]

    def _gather_flags(self, level: int, field: str) -> np.ndarray:
        """Identical-on-all-ranks global flag mask for ``level``."""
        local = [
            (p.uid, self._local_flag_mask(p, field))
            for p in self.local_patches(level)
        ]
        if self.comm is not None:
            gathered = self.comm.allgather(local)
            masks = {uid: m for part in gathered for uid, m in part}
        else:
            masks = dict(local)
        lbox = self.level_box(level)
        flags = np.zeros(lbox.shape, dtype=bool)
        for p in self.levels[level]:
            flags[p.box.slices(lbox)] |= masks[p.uid]
        return buffer_flags(flags, self.flag_buffer)

    def regrid(self, field: str | None = None) -> float:
        """Rebuild levels 1..L-1 from current data; returns MPI time (us).

        Every rank runs the identical flag-gather/cluster/balance sequence,
        so the new decomposition needs no negotiation.  New fine patches are
        filled by a coarse-to-fine prolongation cascade, then overwritten
        with data copied from the *old* fine patches where they overlap
        (preserving fine-grid accuracy across the regrid).
        """
        field = field or self.fields[0]
        comm_us = 0.0
        for lev in range(self.max_levels - 1):
            if not self.levels[lev]:
                break
            # Flags read one ghost ring, so ghosts must be current.
            comm_us += self.ghost_update(lev)
            flags = self._gather_flags(lev, field)
            coarse_boxes = cluster_flags(
                flags,
                self.level_box(lev),
                min_fill=self.min_fill,
                max_cells=max(1, self.max_patch_cells // (self.r**2)),
                min_width=self.min_width,
            )
            # Proper nesting by construction: a cluster's bounding box can
            # span holes between level-`lev` patches (flags are only set
            # inside them); clip each box to the parent patches so every
            # child cell has a parent.  Pieces stay disjoint because both
            # the cluster boxes and the parent patches are disjoint.
            clipped: list[Box] = []
            for b in coarse_boxes:
                for cp in self.levels[lev]:
                    ov = b.intersection(cp.box)
                    if ov is not None:
                        clipped.append(ov)
            old_fine = self.levels[lev + 1]
            new_fine = [self._new_patch(b.refine(self.r), lev + 1) for b in clipped]
            stats = self.balancer(new_fine, self.nranks)
            self.decomposition_stats.append(stats)
            self._allocate_local(new_fine)

            # Seed from coarser levels (cascade, coarsest first).  Each
            # source level is its own exchange: destination regions across
            # levels overlap on purpose (finer overwrites coarser), and a
            # concurrent drain inserts in arrival order, so batching the
            # cascade into one plan would be a write-after-write race.
            for src_level in range(lev + 1):
                power = self.r ** (lev + 1 - src_level)
                plan: list[Transfer] = []
                for fp in new_fine:
                    cov = fp.box.coarsen(power)
                    for cp in self.levels[src_level]:
                        ov_c = cov.intersection(cp.box)
                        if ov_c is None:
                            continue
                        fine_cover = ov_c.refine(power)
                        dst = fine_cover.intersection(fp.box)
                        if dst is None:
                            continue
                        crop = dst.slices(fine_cover)
                        plan.append(Transfer(
                            src_patch=cp, dst_patch=fp, src_region=ov_c,
                            dst_region=dst,
                            transform=(lambda b, p=power, c=crop: prolong(b, p)[c]),
                        ))
                comm_us += self.exchanger.run(plan, self.fields)
            # Then preserve old fine data where it existed — again as a
            # separate exchange so it lands after every cascade write.
            plan = []
            for fp in new_fine:
                for op in old_fine:
                    ov = fp.box.intersection(op.box)
                    if ov is not None:
                        plan.append(Transfer(src_patch=op, dst_patch=fp,
                                             src_region=ov, dst_region=ov))
            comm_us += self.exchanger.run(plan, self.fields)
            self.levels[lev + 1] = new_fine
            comm_us += self.ghost_update(lev + 1)
        self.regrid_count += 1
        return comm_us
