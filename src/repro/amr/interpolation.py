"""Inter-level transfer operators.

"The more accurate solution from the finest meshes is periodically
interpolated onto the coarser ones" (restriction), and new fine patches are
seeded from coarse data (prolongation).  Both are conservative for
cell-averaged quantities with the refinement factor ``r``:

* :func:`prolong` — piecewise-constant injection coarse -> fine (each
  coarse cell's value fills its r x r children);
* :func:`restrict` — arithmetic mean of the r x r children -> coarse cell.

``restrict(prolong(A)) == A`` exactly, a property test anchors this.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive


def prolong(coarse: np.ndarray, r: int) -> np.ndarray:
    """Piecewise-constant prolongation of a 2-D cell array by factor ``r``."""
    check_positive("r", r)
    c = np.asarray(coarse)
    if c.ndim != 2:
        raise ValueError(f"expected 2-D array, got shape {c.shape}")
    return np.repeat(np.repeat(c, r, axis=0), r, axis=1)


def restrict(fine: np.ndarray, r: int) -> np.ndarray:
    """Conservative (mean) restriction of a 2-D cell array by factor ``r``.

    Both dimensions of ``fine`` must be divisible by ``r``.
    """
    check_positive("r", r)
    f = np.asarray(fine, dtype=float)
    if f.ndim != 2:
        raise ValueError(f"expected 2-D array, got shape {f.shape}")
    ni, nj = f.shape
    if ni % r or nj % r:
        raise ValueError(f"shape {f.shape} not divisible by refinement factor {r}")
    return f.reshape(ni // r, r, nj // r, r).mean(axis=(1, 3))
