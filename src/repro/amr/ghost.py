"""Distributed data transfers: ghost-cell updates and inter-level motion.

The paper's AMRMesh component spends its time here: "one [method] that does
'ghost-cell updates' on patches (gets data from abutting, but off-processor
patches onto a patch)".  A :class:`Transfer` moves a rectangular region of
field data from a source patch to a destination patch, optionally through a
resolution change (prolongation/restriction applied at the source);
:func:`execute_transfers` runs a deterministic plan over the simulated MPI
layer with ``isend``/``irecv``/``waitsome`` — the MPI_Waitsome-dominated
pattern of the paper's Figure 3.

Plans are computed from replicated metadata (every rank knows all patch
boxes and owners), so all ranks enumerate identical transfer lists and tag
assignment needs no negotiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.amr.box import Box
from repro.amr.patch import Patch
from repro.mpi.comm import SimComm
from repro.mpi.request import RecvRequest, waitsome

#: signature of a source-side data transform (e.g. prolong/restrict)
Transform = Callable[[np.ndarray], np.ndarray]


@dataclass
class Transfer:
    """One region move: src_patch.src_region -> dst_patch.dst_region.

    Regions are boxes in each patch's own level index space; after the
    optional ``transform`` the source block's shape must equal the
    destination region's shape.
    """

    src_patch: Patch
    dst_patch: Patch
    src_region: Box
    dst_region: Box
    transform: Transform | None = None

    def extract(self, fields: Sequence[str]) -> np.ndarray:
        """Stack the source data block for all fields (at the source rank)."""
        blocks = []
        for f in fields:
            block = np.ascontiguousarray(self.src_patch.view(f, self.src_region))
            if self.transform is not None:
                block = self.transform(block)
            blocks.append(block)
        data = np.stack(blocks)
        expected = self.dst_region.shape
        if data.shape[1:] != expected:
            raise ValueError(
                f"transfer block shape {data.shape[1:]} != destination region "
                f"shape {expected} ({self.src_region} -> {self.dst_region})"
            )
        return data

    def insert(self, data: np.ndarray, fields: Sequence[str]) -> None:
        """Write a received block into the destination patch."""
        for k, f in enumerate(fields):
            self.dst_patch.view(f, self.dst_region)[...] = data[k]
        self.dst_patch.mark_written()


def plan_same_level_exchange(patches: Sequence[Patch]) -> list[Transfer]:
    """Ghost-cell update plan for one level.

    For every ordered pair of distinct patches, the destination's ghost
    frame is filled from the source's *interior* where they overlap.
    Deterministic: patches are traversed in uid order.
    """
    ordered = sorted(patches, key=lambda p: p.uid)
    plan: list[Transfer] = []
    for dst in ordered:
        gbox = dst.box.grow(dst.nghost)
        for src in ordered:
            if src.uid == dst.uid:
                continue
            overlap = gbox.intersection(src.box)
            if overlap is None:
                continue
            # Exclude the destination interior; only true ghost cells.
            if dst.box.contains_box(overlap):
                continue
            plan.append(Transfer(src_patch=src, dst_patch=dst,
                                 src_region=overlap, dst_region=overlap))
    return plan


@dataclass
class ExchangePlan:
    """A reusable transfer plan plus its bookkeeping."""

    transfers: list[Transfer]

    def nbytes_estimate(self, nfields: int) -> int:
        return sum(t.dst_region.ncells * 8 * nfields for t in self.transfers)


def execute_transfers(
    transfers: Sequence[Transfer],
    fields: Sequence[str],
    comm: SimComm | None,
    rank: int = 0,
    tag_base: int = 0,
) -> float:
    """Run a transfer plan; returns the modeled MPI time consumed (us).

    Local transfers (src and dst owned by ``rank``) copy directly.  Remote
    ones post ``isend``/``irecv`` and drain completions with ``waitsome``,
    the paper's AMRMesh communication pattern.  With ``comm=None`` the plan
    must be entirely local (serial runs).
    """
    fields = list(fields)
    if comm is None:
        for t in transfers:
            t.insert(t.extract(fields), fields)
        return 0.0

    before_us = comm.accounting.total_us()
    san = comm.world.sanitizer
    guard = san.ghost_guard(rank) if san is not None else None
    recvs: list[tuple[RecvRequest, Transfer, int]] = []
    for idx, t in enumerate(transfers):
        tag = tag_base + idx
        src_o, dst_o = t.src_patch.owner, t.dst_patch.owner
        if src_o == rank and dst_o == rank:
            t.insert(t.extract(fields), fields)
        elif src_o == rank:
            comm.isend(t.extract(fields), dest=dst_o, tag=tag)
            if guard is not None:
                guard.watch_send(t.src_patch, t.src_region, fields, tag)
        elif dst_o == rank:
            recvs.append((comm.irecv(source=src_o, tag=tag), t, tag))
            if guard is not None:
                guard.watch_recv(t.dst_patch, t.dst_region, fields, tag)
    pending = [r for r, _t, _tag in recvs]
    by_req = {id(r): (t, tag) for r, t, tag in recvs}
    while any(not r.complete for r in pending):
        done = waitsome(pending)
        for i in done:
            req = pending[i]
            t, tag = by_req[id(req)]
            if guard is not None:
                guard.check_recv(tag)
            t.insert(req.payload, fields)
    if guard is not None:
        guard.check_sends()
    return comm.accounting.total_us() - before_us


class GhostExchanger:
    """Stateful per-level ghost-update driver with deterministic tags.

    One instance per mesh; every call advances the shared tag counter the
    same way on every rank (plans are replicated), keeping message matching
    unambiguous across overlapping exchanges.
    """

    def __init__(self, comm: SimComm | None = None, rank: int = 0) -> None:
        self.comm = comm
        self.rank = rank if comm is None else comm.rank
        self._tag = 0

    def next_tag_base(self, plan_len: int) -> int:
        base = self._tag
        self._tag += max(plan_len, 1)
        return base

    def update_level(self, patches: Sequence[Patch], fields: Sequence[str]) -> float:
        """Same-level ghost-cell update; returns modeled MPI time (us)."""
        plan = plan_same_level_exchange(patches)
        base = self.next_tag_base(len(plan))
        return execute_transfers(plan, fields, self.comm, self.rank, tag_base=base)

    def run(self, transfers: Sequence[Transfer], fields: Sequence[str]) -> float:
        """Execute an arbitrary pre-computed plan (inter-level motion)."""
        base = self.next_tag_base(len(transfers))
        return execute_transfers(transfers, fields, self.comm, self.rank, tag_base=base)
