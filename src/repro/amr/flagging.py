"""Refinement flagging.

"Based on some suitable metric, regions requiring further refinement are
identified, the grid points flagged" (paper Section 5).  The standard
metric for shock problems is a normalized density-gradient magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive


def flag_gradient(field: np.ndarray, threshold: float = 0.05) -> np.ndarray:
    """Flag cells whose normalized undivided gradient exceeds ``threshold``.

    The metric is ``max(|df/di|, |df/dj|) / scale`` with central undivided
    differences and ``scale`` the field's dynamic range (falls back to its
    mean magnitude for near-constant fields).  Returns a boolean array of
    ``field.shape``.
    """
    check_positive("threshold", threshold)
    f = np.asarray(field, dtype=float)
    if f.ndim != 2:
        raise ValueError(f"expected a 2-D field, got shape {f.shape}")
    gi = np.zeros_like(f)
    gj = np.zeros_like(f)
    if f.shape[0] > 2:
        gi[1:-1, :] = 0.5 * np.abs(f[2:, :] - f[:-2, :])
    if f.shape[1] > 2:
        gj[:, 1:-1] = 0.5 * np.abs(f[:, 2:] - f[:, :-2])
    span = float(f.max() - f.min())
    scale = span if span > 0 else max(float(np.abs(f).mean()), 1e-300)
    return np.maximum(gi, gj) / scale > threshold


def buffer_flags(flags: np.ndarray, width: int = 1) -> np.ndarray:
    """Dilate flags by ``width`` cells so features stay inside fine patches."""
    if width < 0:
        raise ValueError(f"buffer width must be >= 0, got {width}")
    out = flags.astype(bool).copy()
    for _ in range(width):
        grown = out.copy()
        grown[1:, :] |= out[:-1, :]
        grown[:-1, :] |= out[1:, :]
        grown[:, 1:] |= out[:, :-1]
        grown[:, :-1] |= out[:, 1:]
        out = grown
    return out
