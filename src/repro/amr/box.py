"""Axis-aligned integer index boxes (2-D).

A :class:`Box` describes a rectangular region of cell-centered indices
``[ilo..ihi] x [jlo..jhi]`` (inclusive bounds, the SAMR convention).  Boxes
are the geometry language of patches, clustering and ghost exchange.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Box:
    """Inclusive integer rectangle: ``lo=(ilo, jlo)``, ``hi=(ihi, jhi)``.

    The i index varies along x (array axis 1 is j?  No — see Patch: arrays
    are indexed ``[i, j]`` with i the row / x index and j the column / y
    index; this keeps clustering and interpolation axis handling uniform).
    """

    ilo: int
    jlo: int
    ihi: int
    jhi: int

    def __post_init__(self) -> None:
        if self.ihi < self.ilo or self.jhi < self.jlo:
            raise ValueError(f"empty or inverted box: {self}")

    # ------------------------------------------------------------ basics
    @property
    def shape(self) -> tuple[int, int]:
        return (self.ihi - self.ilo + 1, self.jhi - self.jlo + 1)

    @property
    def ncells(self) -> int:
        ni, nj = self.shape
        return ni * nj

    @property
    def lo(self) -> tuple[int, int]:
        return (self.ilo, self.jlo)

    @property
    def hi(self) -> tuple[int, int]:
        return (self.ihi, self.jhi)

    def contains(self, i: int, j: int) -> bool:
        return self.ilo <= i <= self.ihi and self.jlo <= j <= self.jhi

    def contains_box(self, other: "Box") -> bool:
        return (
            self.ilo <= other.ilo
            and self.jlo <= other.jlo
            and other.ihi <= self.ihi
            and other.jhi <= self.jhi
        )

    # -------------------------------------------------------- operations
    def intersection(self, other: "Box") -> "Box | None":
        """Overlap box, or None when disjoint."""
        ilo, jlo = max(self.ilo, other.ilo), max(self.jlo, other.jlo)
        ihi, jhi = min(self.ihi, other.ihi), min(self.jhi, other.jhi)
        if ihi < ilo or jhi < jlo:
            return None
        return Box(ilo, jlo, ihi, jhi)

    def grow(self, n: int) -> "Box":
        """Expand by ``n`` cells on every side (n may be negative to shrink)."""
        try:
            return Box(self.ilo - n, self.jlo - n, self.ihi + n, self.jhi + n)
        except ValueError:
            raise ValueError(f"grow({n}) empties box {self}") from None

    def shift(self, di: int, dj: int) -> "Box":
        return Box(self.ilo + di, self.jlo + dj, self.ihi + di, self.jhi + dj)

    def refine(self, r: int) -> "Box":
        """Index box of this region on a mesh ``r`` times finer."""
        if r < 1:
            raise ValueError(f"refinement factor must be >= 1, got {r}")
        return Box(self.ilo * r, self.jlo * r, (self.ihi + 1) * r - 1, (self.jhi + 1) * r - 1)

    def coarsen(self, r: int) -> "Box":
        """Index box of the coarse cells covering this region (floor/ceil)."""
        if r < 1:
            raise ValueError(f"refinement factor must be >= 1, got {r}")
        import math

        return Box(
            math.floor(self.ilo / r),
            math.floor(self.jlo / r),
            math.floor(self.ihi / r),
            math.floor(self.jhi / r),
        )

    def slices(self, origin: "Box") -> tuple[slice, slice]:
        """NumPy slices of this box inside an array laid out over ``origin``."""
        if not origin.contains_box(self):
            raise ValueError(f"{self} is not contained in layout box {origin}")
        return (
            slice(self.ilo - origin.ilo, self.ihi - origin.ilo + 1),
            slice(self.jlo - origin.jlo, self.jhi - origin.jlo + 1),
        )

    def __str__(self) -> str:
        return f"[{self.ilo}:{self.ihi},{self.jlo}:{self.jhi}]"
