"""Fault injection and resilience for the simulated component runtime.

Five pieces, composed by the case-study harness:

* :mod:`repro.faults.plan` — seeded, declarative, JSON-round-trippable
  fault plans (message drops/delays/duplications, rank stalls, component
  exceptions and latency spikes, crash points);
* :mod:`repro.faults.injector` — the deterministic runtime scheduler the
  MPI layer and the performance proxies consult;
* :mod:`repro.faults.policy` — recovery semantics: bounded retries with
  exponential backoff, typed :class:`~repro.faults.policy.CommFailure`,
  duplicate suppression, component-call retry;
* :mod:`repro.faults.checkpoint` — atomic per-rank checkpoints of the AMR
  hierarchy + driver + Mastermind state, with bitwise-identical restart;
* :mod:`repro.faults.straggler` — per-rank MPI-time outlier detection
  feeding the online monitor's model-guided component swap.

Submodules are loaded lazily (PEP 562): the MPI layer imports
``repro.faults.policy`` / ``repro.faults.plan`` (leaf modules with no
dependency on :mod:`repro.mpi`), while :mod:`repro.faults.checkpoint`
reaches back into :mod:`repro.amr`; eager re-exports here would close an
import cycle ``mpi.world -> faults -> amr -> mpi.comm``.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "CheckpointConfig": "repro.faults.checkpoint",
    "Checkpointer": "repro.faults.checkpoint",
    "hierarchy_state": "repro.faults.checkpoint",
    "hierarchy_states_equal": "repro.faults.checkpoint",
    "latest_step": "repro.faults.checkpoint",
    "load_rank_state": "repro.faults.checkpoint",
    "restore_hierarchy": "repro.faults.checkpoint",
    "ComponentAction": "repro.faults.injector",
    "FaultInjector": "repro.faults.injector",
    "MessageAction": "repro.faults.injector",
    "SimulatedCrash": "repro.faults.injector",
    "TransientComponentError": "repro.faults.injector",
    "ComponentFault": "repro.faults.plan",
    "FaultPlan": "repro.faults.plan",
    "MessageFault": "repro.faults.plan",
    "RankStall": "repro.faults.plan",
    "canned_plans": "repro.faults.plan",
    "CommFailure": "repro.faults.policy",
    "ResiliencePolicy": "repro.faults.policy",
    "ResilienceStats": "repro.faults.policy",
    "StragglerDetector": "repro.faults.straggler",
    "StragglerReport": "repro.faults.straggler",
    "mpi_totals_by_rank": "repro.faults.straggler",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
