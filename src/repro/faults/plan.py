"""Declarative, reproducible fault plans.

A :class:`FaultPlan` is a seeded, JSON-round-trippable schedule of failures
to inject into one simulated run:

* :class:`MessageFault` — drop / delay / duplicate point-to-point messages
  at the :mod:`repro.mpi` layer;
* :class:`RankStall` — latency spikes charged to one rank's MPI operations
  (the modeled form of a transient straggler);
* :class:`ComponentFault` — exceptions or real latency spikes injected at
  the :mod:`repro.perf.proxy` call boundary;
* a crash point (``kill_at_step``) that terminates the driver mid-run, the
  scenario checkpoint/restart exists for.

Determinism: faults trigger on *per-rank occurrence counters* (the k-th
matching message sent by a rank, the k-th matching MPI op on a rank, the
k-th matching proxy invocation on a rank), optionally thinned by a
Bernoulli draw from a generator derived from ``(seed, fault index, rank)``
via :mod:`repro.util.rng`'s SeedSequence spawning.  Neither counting nor
the draws depend on thread interleaving, so the same plan + seed yields the
identical failure schedule on every run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.util.validation import check_in_range, check_non_negative

#: message fault kinds
DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"
_MESSAGE_KINDS = (DROP, DELAY, DUPLICATE)

#: component fault kinds
RAISE = "raise"
COMPONENT_DELAY = "delay"
_COMPONENT_KINDS = (RAISE, COMPONENT_DELAY)


def _check_selector(name: str, index: int, count: int, probability: float) -> None:
    check_non_negative(f"{name}.index", index)
    if count < 1:
        raise ValueError(f"{name}.count must be >= 1, got {count}")
    check_in_range(f"{name}.probability", probability, 0.0, 1.0)


@dataclass(frozen=True)
class MessageFault:
    """Fault on point-to-point messages matched at send time.

    ``source``/``dest``/``tag`` filter the messages considered (``None``
    matches anything); the fault fires for matching send numbers
    ``index .. index+count-1``, counted per sending rank.  ``kind``:

    * ``"drop"`` — the envelope never reaches the destination mailbox.
      With ``recoverable=True`` the simulated sender keeps a retransmission
      buffer, so a resilient receiver can recover it after a timeout; with
      ``False`` the message is lost forever (bounded retries then a typed
      :class:`~repro.faults.policy.CommFailure`).
    * ``"delay"`` — the modeled transfer cost is multiplied by
      ``delay_factor`` and increased by ``delay_us``.
    * ``"duplicate"`` — a second copy of the envelope is delivered
      (resilient receivers deduplicate by send sequence number).
    """

    kind: str
    source: int | None = None
    dest: int | None = None
    tag: int | None = None
    index: int = 0
    count: int = 1
    probability: float = 1.0
    delay_us: float = 0.0
    delay_factor: float = 1.0
    recoverable: bool = True

    def __post_init__(self) -> None:
        if self.kind not in _MESSAGE_KINDS:
            raise ValueError(
                f"MessageFault.kind must be one of {_MESSAGE_KINDS}, got {self.kind!r}"
            )
        _check_selector("MessageFault", self.index, self.count, self.probability)
        check_non_negative("MessageFault.delay_us", self.delay_us)
        if self.delay_factor < 1.0:
            raise ValueError(f"delay_factor must be >= 1, got {self.delay_factor}")

    def matches(self, source: int, dest: int, tag: int) -> bool:
        return (
            (self.source is None or self.source == source)
            and (self.dest is None or self.dest == dest)
            and (self.tag is None or self.tag == tag)
        )


@dataclass(frozen=True)
class RankStall:
    """Latency spike: extra modeled microseconds charged to one rank's MPI
    operations (matching ``routine``; ``None`` = any), for matching
    occurrence numbers ``index .. index+count-1`` on that rank.

    A sustained stall makes the rank a straggler: its monitored routines
    accumulate outsized MPI time, which the
    :class:`~repro.faults.straggler.StragglerDetector` picks up.
    """

    rank: int
    extra_us: float
    routine: str | None = None
    index: int = 0
    count: int = 1
    probability: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("RankStall.rank", self.rank)
        check_non_negative("RankStall.extra_us", self.extra_us)
        _check_selector("RankStall", self.index, self.count, self.probability)


@dataclass(frozen=True)
class ComponentFault:
    """Fault at the proxy call boundary of a monitored component.

    Matches invocations of ``label::method`` (``method=None`` = any method)
    on every rank, counted per rank.  ``kind="raise"`` makes the proxy
    raise a :class:`~repro.faults.injector.TransientComponentError` instead
    of forwarding (a resilient proxy retries with backoff);
    ``kind="delay"`` injects a *real* sleep of ``delay_us`` inside the
    monitored region, so the spike is visible to the Mastermind's records
    and the online drift detector.
    """

    label: str
    kind: str
    method: str | None = None
    index: int = 0
    count: int = 1
    probability: float = 1.0
    delay_us: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _COMPONENT_KINDS:
            raise ValueError(
                f"ComponentFault.kind must be one of {_COMPONENT_KINDS}, got {self.kind!r}"
            )
        _check_selector("ComponentFault", self.index, self.count, self.probability)
        check_non_negative("ComponentFault.delay_us", self.delay_us)

    def matches(self, label: str, method: str) -> bool:
        return self.label == label and (self.method is None or self.method == method)


@dataclass(frozen=True)
class FaultPlan:
    """One named, seeded failure scenario."""

    name: str = "faults"
    seed: int = 0
    messages: tuple[MessageFault, ...] = ()
    stalls: tuple[RankStall, ...] = ()
    components: tuple[ComponentFault, ...] = ()
    #: raise SimulatedCrash at the start of this driver step (None = never)
    kill_at_step: int | None = None
    #: ranks that crash at ``kill_at_step`` (None = all ranks)
    kill_ranks: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        # Tolerate lists from JSON round-trips.
        object.__setattr__(self, "messages", tuple(self.messages))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "components", tuple(self.components))
        if self.kill_ranks is not None:
            object.__setattr__(self, "kill_ranks", tuple(self.kill_ranks))
        if self.kill_at_step is not None:
            check_non_negative("kill_at_step", self.kill_at_step)

    @property
    def n_faults(self) -> int:
        return len(self.messages) + len(self.stalls) + len(self.components)

    # ----------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            name=data.get("name", "faults"),
            seed=int(data.get("seed", 0)),
            messages=tuple(MessageFault(**m) for m in data.get("messages", ())),
            stalls=tuple(RankStall(**s) for s in data.get("stalls", ())),
            components=tuple(ComponentFault(**c) for c in data.get("components", ())),
            kill_at_step=data.get("kill_at_step"),
            kill_ranks=(tuple(data["kill_ranks"])
                        if data.get("kill_ranks") is not None else None),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def canned_plans() -> dict[str, FaultPlan]:
    """The three stock failure scenarios used by tests, the ablation bench
    and the CI smoke job.

    * ``dropped-messages`` — ghost-exchange messages silently vanish
      (recoverable: a resilient receiver times out and triggers
      retransmission).
    * ``straggler-stalls`` — rank 1's MPI operations suffer a long burst of
      200 ms latency spikes, turning it into a straggler.
    * ``flaky-component`` — the flux proxy throws transient errors and the
      States proxy gets a real latency spike.
    """
    return {
        "dropped-messages": FaultPlan(
            name="dropped-messages",
            messages=(
                MessageFault(kind=DROP, source=0, index=2, count=2),
                MessageFault(kind=DROP, source=1, index=5, count=1),
                MessageFault(kind=DELAY, source=2, index=3, count=2,
                             delay_factor=4.0, delay_us=10_000.0),
            ),
        ),
        "straggler-stalls": FaultPlan(
            name="straggler-stalls",
            stalls=(
                # The wide window spans initialization AND the monitored
                # stepping phase, so the Mastermind's per-rank records (not
                # just the raw ledgers) expose the straggler.
                RankStall(rank=1, extra_us=200_000.0, index=10, count=400),
            ),
            messages=(
                MessageFault(kind=DUPLICATE, source=1, index=4, count=2),
            ),
        ),
        "flaky-component": FaultPlan(
            name="flaky-component",
            components=(
                ComponentFault(label="g_proxy", method="compute",
                               kind=RAISE, index=3, count=2),
                ComponentFault(label="sc_proxy", method="compute",
                               kind=COMPONENT_DELAY, index=5, count=1,
                               delay_us=20_000.0),
            ),
        ),
    }
