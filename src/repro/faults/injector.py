"""Runtime fault injection driven by a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` is shared by all ranks of a simulated job
(attached to the :class:`~repro.mpi.world.SimWorld`); the MPI layer and the
performance proxies consult it at well-defined boundaries:

* :meth:`on_send` — every point-to-point envelope, at send time, in the
  sender's thread;
* :meth:`on_mpi_op` — every MPI accounting charge (stall injection);
* :meth:`on_component_call` — every proxied component invocation;
* :meth:`crash_due` — the driver's per-step crash check.

All mutable state is partitioned by rank and touched only from that rank's
thread, so no locking is needed and the schedule cannot depend on thread
interleaving.  Every injected fault is also recorded as an instant event in
the rank's :class:`~repro.tau.trace.Tracer`, which the Chrome-trace
exporter renders on a timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.plan import (COMPONENT_DELAY, DELAY, DROP, DUPLICATE,
                               RAISE, FaultPlan)
from repro.tau.trace import Tracer
from repro.util.rng import rng_from_key


class TransientComponentError(RuntimeError):
    """Injected failure of a component invocation (retryable)."""


class SimulatedCrash(RuntimeError):
    """Injected process death (the scenario checkpoint/restart recovers)."""


@dataclass(frozen=True)
class MessageAction:
    """What to do with one envelope: ``kind`` is a plan message-fault kind
    or ``None`` (deliver normally)."""

    kind: str | None = None
    delay_us: float = 0.0
    delay_factor: float = 1.0
    recoverable: bool = True


@dataclass(frozen=True)
class ComponentAction:
    """Injected behavior for one proxied invocation."""

    kind: str  # RAISE or COMPONENT_DELAY
    delay_us: float = 0.0


DELIVER = MessageAction()


class _Matcher:
    """Occurrence counting + thinning for one fault on one rank."""

    __slots__ = ("fault", "seen", "rng")

    def __init__(self, fault, rng: np.random.Generator | None) -> None:
        self.fault = fault
        self.seen = 0
        self.rng = rng

    def fires(self) -> bool:
        """Advance this rank's occurrence counter; True if the fault fires."""
        f = self.fault
        k = self.seen
        self.seen += 1
        if not (f.index <= k < f.index + f.count):
            return False
        if f.probability >= 1.0:
            return True
        return bool(self.rng.random() < f.probability)


class FaultInjector:
    """Deterministic fault scheduler for one simulated job."""

    def __init__(self, plan: FaultPlan, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.plan = plan
        self.nranks = int(nranks)
        self.tracers = [Tracer(rank=r) for r in range(self.nranks)]
        self._message = [self._matchers(plan.messages, "m", r) for r in range(nranks)]
        self._stall = [self._matchers(plan.stalls, "s", r) for r in range(nranks)]
        self._component = [self._matchers(plan.components, "c", r) for r in range(nranks)]
        #: per-rank counts of injected faults by kind (deterministic)
        self.counts: list[dict[str, int]] = [{} for _ in range(self.nranks)]

    def _matchers(self, faults, tag: str, rank: int) -> list[_Matcher]:
        out = []
        for idx, f in enumerate(faults):
            rng = None
            if f.probability < 1.0:
                # Stream keyed by (seed, fault kind, fault index, rank):
                # independent of every other draw in the simulator.
                rng = rng_from_key(self.plan.seed, ord(tag), idx, rank)
            out.append(_Matcher(f, rng))
        return out

    # ------------------------------------------------------------- hooks
    def _record(self, rank: int, name: str, value: float = 0.0) -> None:
        self.tracers[rank].event(name, value)
        counts = self.counts[rank]
        counts[name] = counts.get(name, 0) + 1

    def on_send(self, source: int, dest: int, tag: int) -> MessageAction:
        """Consult message faults for one envelope (sender's thread)."""
        for m in self._message[source]:
            f = m.fault
            if not f.matches(source, dest, tag):
                continue
            if not m.fires():
                continue
            self._record(source, f"fault.{f.kind}")
            if f.kind == DROP:
                return MessageAction(kind=DROP, recoverable=f.recoverable)
            if f.kind == DUPLICATE:
                return MessageAction(kind=DUPLICATE)
            return MessageAction(kind=DELAY, delay_us=f.delay_us,
                                 delay_factor=f.delay_factor)
        return DELIVER

    def on_mpi_op(self, rank: int, routine: str) -> float:
        """Extra modeled microseconds to charge this MPI operation."""
        extra = 0.0
        for m in self._stall[rank]:
            f = m.fault
            if f.rank != rank:
                continue
            if f.routine is not None and f.routine != routine:
                continue
            if m.fires():
                extra += f.extra_us
                self._record(rank, "fault.stall", f.extra_us)
        return extra

    def on_component_call(self, rank: int, label: str, method: str) -> ComponentAction | None:
        """Injected behavior for one proxied invocation (or None)."""
        for m in self._component[rank]:
            f = m.fault
            if not f.matches(label, method):
                continue
            if not m.fires():
                continue
            if f.kind == RAISE:
                self._record(rank, "fault.raise")
                return ComponentAction(kind=RAISE)
            self._record(rank, "fault.component_delay", f.delay_us)
            return ComponentAction(kind=COMPONENT_DELAY, delay_us=f.delay_us)
        return None

    def crash_due(self, rank: int, step: int) -> bool:
        """Should ``rank`` die at the start of driver step ``step``?"""
        p = self.plan
        if p.kill_at_step is None or step != p.kill_at_step:
            return False
        return p.kill_ranks is None or rank in p.kill_ranks

    # ----------------------------------------------------------- queries
    def note(self, rank: int, name: str, value: float = 0.0) -> None:
        """Record a resilience event (retry, recovery, checkpoint) on the
        rank's fault timeline."""
        self._record(rank, name, value)

    def schedule_signature(self) -> list[list[str]]:
        """Per-rank ordered *injected-fault* event names (timestamps
        stripped) — the object determinism tests compare.

        Only ``fault.*`` events count: injection points are visited in each
        rank's program order, so the signature is reproducible.  Recovery
        events (``mpi.*``, ``checkpoint.*``) are excluded because their
        interleaving depends on real-time thread scheduling.
        """
        return [
            [rec.name for rec in tr.records() if rec.name.startswith("fault.")]
            for tr in self.tracers
        ]

    def total_counts(self) -> dict[str, int]:
        """Injected-fault totals across ranks, by event name."""
        out: dict[str, int] = {}
        for counts in self.counts:
            for name, n in counts.items():
                out[name] = out.get(name, 0) + n
        return out
