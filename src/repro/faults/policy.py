"""Recovery semantics: timeouts, retries, backoff, and typed failures.

A :class:`ResiliencePolicy` attached to a
:class:`~repro.mpi.world.SimWorld` changes how blocked communication
behaves:

* **point-to-point** — a blocking receive (or a wait on posted receives)
  that sees nothing for ``retry_timeout_s`` asks the world to *recover*
  matching dropped envelopes from the senders' retransmission buffers; the
  per-attempt wait then grows by ``backoff_factor`` (exponential backoff).
  Each recovered message charges ``retransmit_cost_us`` of modeled time to
  ``MPI_Retransmit`` — a deterministic amount, since the number of dropped
  messages is fixed by the fault plan.  If a matching message is known to
  be *unrecoverably* lost, the receiver gives up after ``max_attempts``
  retry rounds with a typed :class:`CommFailure`.
* **collectives** — each rank deposits once, then waits in bounded rounds
  of ``collective_timeout_s`` (growing by the same backoff factor); after
  ``max_attempts`` incomplete rounds the call raises :class:`CommFailure`
  instead of hanging until the world's deadlock timeout.
* **components** — a proxy that receives an injected transient error
  retries the consultation up to ``max_attempts`` times, sleeping
  ``component_backoff_s`` (doubling) between attempts.

A healthy-but-slow run is never failed by the policy: without evidence of
loss (no tombstone), a receiver keeps waiting — with backoff — until the
world's ordinary deadlock timeout, exactly as in the non-resilient path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive


class CommFailure(RuntimeError):
    """A communication operation exhausted its bounded retry budget.

    Raised instead of an indefinite hang when a message is unrecoverably
    lost or a collective cannot complete within the policy's attempts.
    """


@dataclass(frozen=True)
class ResiliencePolicy:
    """Retry/timeout configuration for the simulated MPI layer."""

    #: bounded retry rounds before a typed CommFailure
    max_attempts: int = 5
    #: first per-attempt receive timeout (real seconds; the sim blocks in
    #: real time while modeled time is charged separately)
    retry_timeout_s: float = 0.05
    #: per-attempt timeout growth (exponential backoff)
    backoff_factor: float = 2.0
    #: cap on the grown per-attempt timeout
    max_retry_timeout_s: float = 2.0
    #: first per-round collective wait (collectives tolerate long compute
    #: phases on peer ranks, hence the larger default)
    collective_timeout_s: float = 10.0
    #: modeled time charged per recovered (retransmitted) message
    retransmit_cost_us: float = 500.0
    #: real sleep before a component-call retry (doubles per attempt)
    component_backoff_s: float = 0.001
    #: drop duplicate deliveries already consumed once (by send seq)
    dedup: bool = True

    def __post_init__(self) -> None:
        check_positive("max_attempts", self.max_attempts)
        check_positive("retry_timeout_s", self.retry_timeout_s)
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        check_positive("max_retry_timeout_s", self.max_retry_timeout_s)
        check_positive("collective_timeout_s", self.collective_timeout_s)
        check_non_negative("retransmit_cost_us", self.retransmit_cost_us)
        check_non_negative("component_backoff_s", self.component_backoff_s)

    def attempt_timeout_s(self, attempt: int) -> float:
        """The (exponentially backed-off) wait for retry round ``attempt``."""
        return min(self.retry_timeout_s * self.backoff_factor**attempt,
                   self.max_retry_timeout_s)


@dataclass
class ResilienceStats:
    """Per-rank counters of recovery activity during one run.

    ``recovered`` (messages pulled from retransmission buffers) and
    ``deduplicated`` are deterministic under a fixed plan + seed;
    ``retry_rounds`` and ``collective_retries`` depend on real-time thread
    scheduling and are reported, not asserted on.
    """

    retry_rounds: int = 0
    recovered: int = 0
    deduplicated: int = 0
    collective_retries: int = 0
    component_retries: int = 0
    failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "retry_rounds": self.retry_rounds,
            "recovered": self.recovered,
            "deduplicated": self.deduplicated,
            "collective_retries": self.collective_retries,
            "component_retries": self.component_retries,
            "failures": self.failures,
        }

    def merge(self, other: "ResilienceStats") -> None:
        for key, val in other.as_dict().items():
            setattr(self, key, getattr(self, key) + val)
