"""Straggler detection from per-rank modeled MPI time.

A rank suffering injected stalls (:class:`~repro.faults.plan.RankStall`)
charges extra modeled microseconds to its MPI operations; because every
rank of an SCMD job executes the same step loop, healthy ranks accumulate
nearly identical MPI totals, and the straggler sticks out as an outlier
against the median.  The detector is pure arithmetic over those totals —
it plugs into the Mastermind's per-rank method records (whose
``mpi_series`` carry the modeled charges) but does not import them, so it
also works on raw ledger numbers.

Detection feeds the online monitor
(:meth:`repro.perf.online.OnlineMonitor.check_stragglers`), which turns a
flagged rank into the model-guided component-swap path of paper Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class StragglerReport:
    """Outcome of one straggler scan over per-rank MPI totals."""

    totals_us: tuple[float, ...]
    median_us: float
    threshold_us: float
    stragglers: tuple[int, ...]

    @property
    def detected(self) -> bool:
        return bool(self.stragglers)

    def __str__(self) -> str:
        if not self.detected:
            return f"no stragglers (median {self.median_us:.0f} us/rank)"
        who = ", ".join(
            f"rank {r} ({self.totals_us[r]:.0f} us)" for r in self.stragglers
        )
        return (
            f"straggler(s): {who}; median {self.median_us:.0f} us, "
            f"threshold {self.threshold_us:.0f} us"
        )


class StragglerDetector:
    """Median-outlier detector over per-rank MPI time totals.

    A rank is a straggler when its total exceeds ``factor`` times the
    median of all ranks *and* beats the median by at least ``floor_us``
    (the floor keeps tiny absolute differences on cheap runs from being
    flagged).
    """

    def __init__(self, factor: float = 2.0, floor_us: float = 10_000.0) -> None:
        check_positive("factor", factor)
        check_non_negative("floor_us", floor_us)
        self.factor = float(factor)
        self.floor_us = float(floor_us)

    def detect(self, totals_us: Sequence[float]) -> StragglerReport:
        """Scan one vector of per-rank MPI totals (microseconds)."""
        totals = np.asarray(list(totals_us), dtype=float)
        if totals.size == 0:
            return StragglerReport((), 0.0, 0.0, ())
        median = float(np.median(totals))
        threshold = max(self.factor * median, median + self.floor_us)
        flagged = tuple(int(r) for r in np.nonzero(totals > threshold)[0])
        return StragglerReport(
            totals_us=tuple(float(t) for t in totals),
            median_us=median,
            threshold_us=threshold,
            stragglers=flagged,
        )


def mpi_totals_by_rank(records_by_rank: Sequence[Mapping] | Mapping[int, Mapping]) -> list[float]:
    """Per-rank modeled MPI totals from per-rank Mastermind record maps.

    ``records_by_rank`` holds, per rank, a mapping of ``(label, method)`` to
    :class:`~repro.perf.records.MethodRecord` (duck-typed: anything with a
    ``total_mpi_us()``).  Accepts a list indexed by rank or a dict keyed by
    rank.
    """
    if isinstance(records_by_rank, Mapping):
        items = [records_by_rank[r] for r in sorted(records_by_rank)]
    else:
        items = list(records_by_rank)
    return [
        float(sum(rec.total_mpi_us() for rec in records.values()))
        for records in items
    ]
