"""Checkpoint/restart for the SCMD case study.

Every N driver steps each rank serializes its piece of the application —
the full AMR patch hierarchy metadata, its *local* patch field arrays
(interior and ghosts, bit-exact), the driver's step counter and dt
history, and the Mastermind's measurement records — to a per-rank file
written atomically (temp file + ``os.replace``).  After all ranks' files
are durable (a barrier), rank 0 atomically updates ``MANIFEST.json``; a
checkpoint therefore only becomes *visible* once it is complete on every
rank, so a crash at any instant leaves either the previous checkpoint or
the new one, never a torn mixture.

Restart rebuilds the hierarchy from the newest manifest step and resumes
the time loop at the following step.  Because patch data is restored
bit-exactly (uids, owners, ghosts, the exchanger's tag counter and the
hierarchy's uid counter included) and all regrid/flagging decisions are
pure functions of the field data, the continuation is bitwise identical to
an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass
from typing import Any

from repro.amr.box import Box
from repro.amr.patch import Patch
from repro.util.atomicio import atomic_write_bytes, atomic_write_text

MANIFEST = "MANIFEST.json"

#: checkpoint format version (bump on layout changes)
FORMAT = 1


# --------------------------------------------------------------------- AMR
def _patch_meta(p: Patch) -> dict[str, Any]:
    return {
        "box": (p.box.ilo, p.box.jlo, p.box.ihi, p.box.jhi),
        "level": p.level,
        "owner": p.owner,
        "nghost": p.nghost,
        "uid": p.uid,
    }


def _patch_from_meta(meta: dict[str, Any]) -> Patch:
    ilo, jlo, ihi, jhi = meta["box"]
    return Patch(box=Box(ilo, jlo, ihi, jhi), level=meta["level"],
                 owner=meta["owner"], nghost=meta["nghost"], uid=meta["uid"])


def hierarchy_state(h) -> dict[str, Any]:
    """Serializable state of a :class:`~repro.amr.hierarchy.GridHierarchy`.

    Patch metadata is replicated (every rank stores all of it); field
    arrays are stored only for patches local to this rank.
    """
    local_fields: dict[int, dict[str, Any]] = {}
    for lev in range(h.max_levels):
        for p in h.levels[lev]:
            if h.is_local(p):
                local_fields[p.uid] = {f: p.data(f).copy() for f in h.fields}
    return {
        "levels": [[_patch_meta(p) for p in h.levels[lev]]
                   for lev in range(h.max_levels)],
        "local_fields": local_fields,
        "uid_counter": h._uid,
        "regrid_count": h.regrid_count,
        "exchanger_tag": h.exchanger._tag,
    }


def restore_hierarchy(h, state: dict[str, Any]) -> None:
    """Load ``state`` into a freshly built hierarchy (same configuration)."""
    if len(state["levels"]) != h.max_levels:
        raise ValueError(
            f"checkpoint has {len(state['levels'])} levels, hierarchy expects "
            f"{h.max_levels}; restore requires the original configuration"
        )
    local_fields = state["local_fields"]
    for lev, metas in enumerate(state["levels"]):
        patches = [_patch_from_meta(m) for m in metas]
        for p in patches:
            if h.is_local(p):
                saved = local_fields[p.uid]
                for f in h.fields:
                    p.fields[f] = saved[f].copy()
        h.levels[lev] = patches
    h._uid = state["uid_counter"]
    h.regrid_count = state["regrid_count"]
    h.exchanger._tag = state["exchanger_tag"]


def hierarchy_states_equal(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """Bitwise equality of two hierarchy states (structure + field bytes)."""
    if a["levels"] != b["levels"]:
        return False
    fa, fb = a["local_fields"], b["local_fields"]
    if set(fa) != set(fb):
        return False
    for uid in fa:
        if set(fa[uid]) != set(fb[uid]):
            return False
        for name in fa[uid]:
            x, y = fa[uid][name], fb[uid][name]
            if x.shape != y.shape or x.dtype != y.dtype:
                return False
            if x.tobytes() != y.tobytes():
                return False
    return True


# -------------------------------------------------------------- file layout
def _rank_path(directory: str, step: int, rank: int) -> str:
    return os.path.join(directory, f"step-{step:06d}.rank{rank}.ckpt")


def _manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST)


def latest_step(directory: str) -> int | None:
    """Newest *complete* checkpoint step recorded in the manifest."""
    try:
        with open(_manifest_path(directory), encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        return None
    steps = manifest.get("steps", [])
    return max(steps) if steps else None


def load_rank_state(directory: str, step: int, rank: int) -> dict[str, Any]:
    """Read one rank's checkpoint payload for ``step``."""
    with open(_rank_path(directory, step, rank), "rb") as fh:
        payload = pickle.load(fh)
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"checkpoint format {payload.get('format')} unsupported "
            f"(expected {FORMAT})"
        )
    return payload["state"]


@dataclass
class CheckpointConfig:
    """Where and how often to checkpoint (``every <= 0`` disables)."""

    directory: str
    every: int = 2

    @property
    def enabled(self) -> bool:
        return self.every > 0 and bool(self.directory)


class Checkpointer:
    """Per-rank checkpoint writer with collective manifest commits."""

    def __init__(self, config: CheckpointConfig, rank: int = 0,
                 nranks: int = 1, comm=None, injector=None) -> None:
        self.config = config
        self.rank = int(rank)
        self.nranks = int(nranks)
        self.comm = comm
        self.injector = injector
        #: steps committed by this checkpointer instance
        self.saved_steps: list[int] = []
        #: bytes this rank wrote (checkpoint overhead reporting)
        self.bytes_written = 0
        if config.enabled:
            os.makedirs(config.directory, exist_ok=True)

    def due(self, step: int) -> bool:
        """Checkpoint after ``step`` completes?"""
        return self.config.enabled and (step + 1) % self.config.every == 0

    def _obs(self):
        """This rank's observability state, when the world carries one."""
        return self.comm.obs if self.comm is not None else None

    def save(self, step: int, state: dict[str, Any]) -> str:
        """Write this rank's payload for ``step`` and commit the manifest.

        Collective when a communicator is present: all ranks must call it
        for the same step (they do — the driver's step loop is SCMD).
        """
        obs = self._obs()
        from contextlib import nullcontext

        if obs is not None:
            from repro.obs.span import CAT_CHECKPOINT
            from repro.util.timebase import now_us

            cm = obs.tracer.span("checkpoint.save", CAT_CHECKPOINT, step=step)
            t0 = now_us()
        else:
            cm = nullcontext(None)
            t0 = 0.0
        with cm:
            path = _rank_path(self.config.directory, step, self.rank)
            blob = pickle.dumps({"format": FORMAT, "step": step, "rank": self.rank,
                                 "nranks": self.nranks, "state": state},
                                protocol=pickle.HIGHEST_PROTOCOL)
            atomic_write_bytes(path, blob)
            self.bytes_written += len(blob)
            if obs is not None:
                from repro.util.timebase import now_us

                m = obs.metrics
                m.counter("checkpoint_saves_total", "checkpoints written").inc()
                m.counter("checkpoint_bytes_total",
                          "checkpoint bytes written").inc(len(blob))
                m.histogram("checkpoint_write_us",
                            "per-checkpoint local write time").observe(now_us() - t0)
            if self.comm is not None:
                # The manifest may only list the step once every rank's file is
                # durable; the barrier provides exactly that ordering.
                self.comm.barrier()
            if self.rank == 0:
                self._commit(step)
        self.saved_steps.append(step)
        if self.injector is not None:
            self.injector.note(self.rank, "checkpoint.save", float(step))
        return path

    def _commit(self, step: int) -> None:
        mpath = _manifest_path(self.config.directory)
        try:
            with open(mpath, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            manifest = {"format": FORMAT, "nranks": self.nranks, "steps": []}
        if step not in manifest["steps"]:
            manifest["steps"].append(step)
            manifest["steps"].sort()
        manifest["nranks"] = self.nranks
        atomic_write_text(mpath, json.dumps(manifest, indent=2, sort_keys=True))
