"""SARIF 2.1.0 output for the analysis engine.

One run, one driver (``repro.analysis``), the full rule catalogue as
``reportingDescriptor`` entries, and one ``result`` per finding.  The
shape targets GitHub code scanning: relative POSIX artifact URIs, 1-based
regions, and stable ``partialFingerprints`` (the engine's baseline
fingerprint) so annotations survive line drift.

:func:`validate_sarif` is a hermetic structural validator — this repo
cannot fetch the JSON schema from the network in CI, so the tests pin the
subset of SARIF 2.1.0 that code scanning actually consumes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.analysis.commcheck import ENGINE_RULE_SUMMARIES
from repro.analysis.lint import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro.analysis"
TOOL_URI = "https://github.com/repro/repro"

#: rules that are perf/hygiene smells rather than correctness errors
_WARNING_RULES = frozenset({"RA006", "RA012"})


def rule_catalogue() -> list[dict[str, Any]]:
    """The full RA catalogue as SARIF reportingDescriptors, sorted by id."""
    from repro.analysis.rules import RULES

    summaries: dict[str, str] = {"RA000": "file does not parse"}
    summaries.update({code: rule.summary for code, rule in RULES.items()})
    summaries.update(ENGINE_RULE_SUMMARIES)
    return [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": text},
            "defaultConfiguration": {
                "level": "warning" if code in _WARNING_RULES else "error",
            },
        }
        for code, text in sorted(summaries.items())
    ]


def _relative_uri(path: str, root: Path) -> str:
    p = Path(path)
    try:
        return p.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return p.as_posix()


def to_sarif(findings: Iterable[Finding],
             fingerprints: Mapping[Finding, str] | None = None,
             root: Path | None = None) -> dict[str, Any]:
    """Build the SARIF log object for a set of findings."""
    root = root if root is not None else Path.cwd()
    rules = rule_catalogue()
    index = {r["id"]: i for i, r in enumerate(rules)}
    results: list[dict[str, Any]] = []
    for f in findings:
        result: dict[str, Any] = {
            "ruleId": f.rule,
            "ruleIndex": index.get(f.rule, -1),
            "level": "warning" if f.rule in _WARNING_RULES else "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": _relative_uri(f.path, root)},
                    "region": {"startLine": max(f.line, 1),
                               "startColumn": f.col + 1},
                },
            }],
        }
        if fingerprints and f in fingerprints:
            result["partialFingerprints"] = {
                "reproAnalysis/v1": fingerprints[f]}
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "informationUri": TOOL_URI,
                "rules": rules,
            }},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def render_sarif(findings: Iterable[Finding],
                 fingerprints: Mapping[Finding, str] | None = None,
                 root: Path | None = None) -> str:
    return json.dumps(to_sarif(findings, fingerprints, root),
                      indent=2, sort_keys=False) + "\n"


_LEVELS = frozenset({"none", "note", "warning", "error"})


def validate_sarif(log: Any) -> None:
    """Structurally validate a SARIF 2.1.0 log; raises ValueError.

    Hermetic subset of the published schema: document header, driver and
    rule metadata, result/rule cross-references, physical locations with
    1-based regions.
    """
    def fail(msg: str) -> None:
        raise ValueError(f"invalid SARIF: {msg}")

    if not isinstance(log, dict):
        fail("top level must be an object")
    if log.get("version") != SARIF_VERSION:
        fail(f"version must be {SARIF_VERSION!r}, got {log.get('version')!r}")
    runs = log.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a non-empty array")
    for run in runs:
        driver = run.get("tool", {}).get("driver") if isinstance(run, dict) else None
        if not isinstance(driver, dict) or not isinstance(driver.get("name"), str):
            fail("every run needs tool.driver.name")
        rules = driver.get("rules", [])
        if not isinstance(rules, list):
            fail("tool.driver.rules must be an array")
        ids: list[str] = []
        for rule in rules:
            rid = rule.get("id") if isinstance(rule, dict) else None
            if not isinstance(rid, str):
                fail("every rule needs a string id")
            text = rule.get("shortDescription", {}).get("text")
            if not isinstance(text, str) or not text:
                fail(f"rule {rid} needs shortDescription.text")
            ids.append(rid)
        if len(set(ids)) != len(ids):
            fail("rule ids must be unique")
        results = run.get("results")
        if not isinstance(results, list):
            fail("run.results must be an array")
        for res in results:
            if not isinstance(res, dict):
                fail("every result must be an object")
            rid = res.get("ruleId")
            if not isinstance(rid, str) or rid not in ids:
                fail(f"result ruleId {rid!r} not in tool.driver.rules")
            ri = res.get("ruleIndex")
            if ri is not None and (not isinstance(ri, int)
                                   or not (0 <= ri < len(ids))
                                   or ids[ri] != rid):
                fail(f"result ruleIndex {ri!r} does not match ruleId {rid!r}")
            if res.get("level") not in _LEVELS:
                fail(f"result level {res.get('level')!r} invalid")
            if not isinstance(res.get("message", {}).get("text"), str):
                fail("every result needs message.text")
            locs = res.get("locations")
            if not isinstance(locs, list) or not locs:
                fail("every result needs at least one location")
            for loc in locs:
                phys = loc.get("physicalLocation", {}) if isinstance(loc, dict) else {}
                uri = phys.get("artifactLocation", {}).get("uri")
                if not isinstance(uri, str) or not uri or uri.startswith("/"):
                    fail(f"artifactLocation.uri must be a relative string, got {uri!r}")
                region = phys.get("region", {})
                line = region.get("startLine")
                if not isinstance(line, int) or line < 1:
                    fail(f"region.startLine must be a positive int, got {line!r}")
                col = region.get("startColumn")
                if col is not None and (not isinstance(col, int) or col < 1):
                    fail(f"region.startColumn must be >= 1, got {col!r}")
