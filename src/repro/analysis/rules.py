"""The RA rule catalogue.

Each rule is a small AST pass over one :class:`~repro.analysis.lint.FileContext`:

========  ==================================================================
RA001     unbalanced ``Timer.start``/``stop`` bracketing on a code path
RA002     determinism escape: wall-clock or unseeded-RNG construction
          outside ``util.timebase`` / ``util.rng``
RA003     uses-port declared but never fetched, or an assembly script
          (ComponentScript) connecting instances it never instantiated
RA004     mutable default argument
RA005     bare or over-broad ``except``
RA006     MPI call inside a per-cell (nested) loop — perf smell
RA007     direct ``print`` outside reporter modules — route through
          structured logs / metrics instead
RA008     ``pickle.dumps`` in ``repro.mpi`` outside the wire codec —
          serialize frames through :mod:`repro.mpi.codec` instead
========  ==================================================================

Rules are deliberately conservative: dynamic names (non-literal timer or
port names) opt the surrounding scope out rather than guessing.
"""

from __future__ import annotations

import ast
from collections import Counter
from typing import Iterator

from repro.analysis.lint import (RA002_SANCTIONED, RA007_SANCTIONED,
                                 RA008_SANCTIONED, FileContext, Finding)


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _str_arg(call: ast.Call, index: int = 0) -> str | None:
    if len(call.args) > index and isinstance(call.args[index], ast.Constant):
        v = call.args[index].value
        if isinstance(v, str):
            return v
    return None


def _function_defs(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class Rule:
    """Base: a named check over one file."""

    code = "RA000"
    summary = ""

    def check(self, ctx: FileContext) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(self.code, str(ctx.path), getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), message)


class UnbalancedTimerRule(Rule):
    """RA001: a function starts a named timer it never stops (or vice versa).

    Scans ``<obj>.start("name")`` / ``<obj>.stop("name")`` pairs with
    literal names inside each function body; the context-manager form
    (``with profiler.timer(...)``) is always balanced and ignored.  A
    mismatch leaves a dangling TAU frame, corrupting inclusive/exclusive
    attribution for the rest of the run.
    """

    code = "RA001"
    summary = "unbalanced Timer.start/stop on a code path"

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for fn in _function_defs(ctx.tree):
            starts: Counter[tuple[str, str]] = Counter()
            stops: Counter[tuple[str, str]] = Counter()
            sites: dict[tuple[str, str], ast.Call] = {}
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("start", "stop")):
                    continue
                recv = _dotted(node.func.value)
                name = _str_arg(node)
                if recv is None or name is None:
                    continue
                key = (recv, name)
                sites.setdefault(key, node)
                (starts if node.func.attr == "start" else stops)[key] += 1
            for key in set(starts) | set(stops):
                ns, np_ = starts[key], stops[key]
                if ns != np_:
                    recv, name = key
                    findings.append(self.finding(
                        ctx, sites[key],
                        f"timer {name!r} on {recv!r}: {ns} start(s) but "
                        f"{np_} stop(s) in function {fn.name!r}"))
        return findings


#: dotted call targets that read the wall clock or build an RNG directly
_RA002_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
}
#: dotted suffixes (matched against the call path's tail) for RNG factories
_RA002_SUFFIXES = ("random.default_rng", "random.seed", "random.SeedSequence")
_RA002_FROM_IMPORTS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("random", "random"), ("random", "randint"), ("random", "seed"),
    ("random", "choice"), ("random", "shuffle"), ("random", "uniform"),
}


class DeterminismEscapeRule(Rule):
    """RA002: wall-clock / RNG access outside the sanctioned helpers.

    Every timestamp must come from :mod:`repro.util.timebase` and every
    generator from :mod:`repro.util.rng`; anything else makes SCMD cohort
    ranks diverge or makes runs unreproducible.  ``time.monotonic`` is
    allowed (deadline bookkeeping, never recorded as data).
    """

    code = "RA002"
    summary = "direct wall-clock/RNG access outside util.timebase/util.rng"

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.is_sanctioned_for(RA002_SANCTIONED):
            return []
        findings: list[Finding] = []
        imports_random = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                if any(a.name == "random" for a in node.names):
                    imports_random = True
            elif isinstance(node, ast.ImportFrom) and node.module:
                for a in node.names:
                    if (node.module, a.name) in _RA002_FROM_IMPORTS:
                        findings.append(self.finding(
                            ctx, node,
                            f"import of {node.module}.{a.name} escapes the "
                            "seeded/virtual time discipline; use "
                            "repro.util.timebase / repro.util.rng"))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _dotted(node.func)
            if path is None:
                continue
            hit = (path in _RA002_CALLS
                   or any(path == s or path.endswith("." + s)
                          for s in _RA002_SUFFIXES)
                   or (imports_random and path.startswith("random.")))
            if hit:
                findings.append(self.finding(
                    ctx, node,
                    f"call to {path}() outside util.timebase/util.rng; route "
                    "timestamps through now_us()/Clock and generators through "
                    "make_rng()/spawn_rngs()/rng_from_key()"))
        return findings


_SCRIPT_COMMANDS = ("instantiate ", "connect ", "go ", "disconnect ", "destroy ")


class DeadUsesPortRule(Rule):
    """RA003: a declared dependency nothing ever wires or fetches.

    Two halves: (1) a component class calls ``register_uses_port("x", ...)``
    but never ``get_port("x")`` — a dead declaration that silently passes
    ``connect`` yet is never exercised; (2) an embedded assembly script
    (ComponentScript string literal) issues ``connect``/``go`` against an
    instance name it never ``instantiate``\\ d.
    """

    code = "RA003"
    summary = "uses-port declared but never wired/fetched"

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            declared: dict[str, ast.Call] = {}
            fetched: set[str] = set()
            dynamic = False
            for node in ast.walk(cls):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)):
                    continue
                if node.func.attr == "register_uses_port":
                    name = _str_arg(node)
                    if name is None:
                        dynamic = True
                    else:
                        declared.setdefault(name, node)
                elif node.func.attr == "get_port":
                    name = _str_arg(node)
                    if name is None:
                        dynamic = True
                    else:
                        fetched.add(name)
            if dynamic:
                continue
            for name, site in declared.items():
                if name not in fetched:
                    findings.append(self.finding(
                        ctx, site,
                        f"class {cls.name!r} registers uses port {name!r} "
                        "but never fetches it with get_port()"))
        findings.extend(self._check_scripts(ctx))
        return findings

    def _check_scripts(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
                continue
            text = node.value
            lines = [ln.split("#", 1)[0].strip() for ln in text.splitlines()]
            lines = [ln for ln in lines if ln]
            if not lines or not all(
                    any(ln.startswith(c) for c in _SCRIPT_COMMANDS) for ln in lines):
                continue  # not an assembly script
            instantiated: set[str] = set()
            for ln in lines:
                toks = ln.split()
                if toks[0] == "instantiate" and len(toks) >= 3:
                    instantiated.add(toks[2])
                elif toks[0] == "connect" and len(toks) >= 4:
                    for inst in (toks[1], toks[3]):
                        if inst not in instantiated:
                            findings.append(self.finding(
                                ctx, node,
                                f"assembly script connects instance {inst!r} "
                                "that it never instantiated"))
                elif toks[0] in ("go", "destroy") and len(toks) >= 2:
                    if toks[1] not in instantiated:
                        findings.append(self.finding(
                            ctx, node,
                            f"assembly script runs {toks[0]!r} on instance "
                            f"{toks[1]!r} that it never instantiated"))
        return findings


_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


class MutableDefaultRule(Rule):
    """RA004: mutable default argument (shared across calls — and across
    SCMD ranks composed in one process, where it becomes cross-rank state).
    """

    code = "RA004"
    summary = "mutable default argument"

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for fn in _function_defs(ctx.tree):
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None]
            for d in defaults:
                bad = isinstance(d, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(d, ast.Call)
                    and isinstance(d.func, ast.Name)
                    and d.func.id in _MUTABLE_CALLS)
                if bad:
                    findings.append(self.finding(
                        ctx, d,
                        f"mutable default in {fn.name!r}; use None and "
                        "create inside the body (or a dataclass "
                        "default_factory)"))
        return findings


class BroadExceptRule(Rule):
    """RA005: bare ``except:``, ``except BaseException`` that does not
    re-raise, or an ``except Exception`` whose body only ``pass``\\ es.

    Swallowed exceptions hide rank failures: the cohort diverges instead
    of the job failing loudly.  A handler that bare-re-raises at its top
    level (``except ...: cleanup(); raise``) swallows nothing — it is the
    standard cleanup idiom and is never flagged, whatever it catches.
    """

    code = "RA005"
    summary = "bare/over-broad except"

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._bare_reraises(node):
                continue  # cleanup-then-propagate: nothing is swallowed
            if node.type is None:
                findings.append(self.finding(
                    ctx, node, "bare 'except:' catches SystemExit/"
                    "KeyboardInterrupt; name the exception types"))
                continue
            names = []
            types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            for t in types:
                d = _dotted(t)
                if d is not None:
                    names.append(d.rsplit(".", 1)[-1])
            if "BaseException" in names and not self._reraises(node):
                findings.append(self.finding(
                    ctx, node, "'except BaseException' without re-raise "
                    "swallows aborts and keyboard interrupts"))
            elif "Exception" in names and self._only_passes(node):
                findings.append(self.finding(
                    ctx, node, "'except Exception: pass' silently swallows "
                    "all errors"))
        return findings

    @staticmethod
    def _bare_reraises(handler: ast.ExceptHandler) -> bool:
        """A bare ``raise`` (no exception expression) at the handler's top
        statement level: the caught exception always propagates."""
        return any(isinstance(s, ast.Raise) and s.exc is None
                   for s in handler.body)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(n, ast.Raise) for n in ast.walk(handler))

    @staticmethod
    def _only_passes(handler: ast.ExceptHandler) -> bool:
        return all(
            isinstance(s, ast.Pass)
            or (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant))
            for s in handler.body)


#: SimComm operations whose per-call latency dominates when issued per cell
_COMM_METHODS = {
    "send", "recv", "isend", "irecv", "sendrecv", "probe", "iprobe",
    "barrier", "bcast", "gather", "allgather", "scatter", "alltoall",
    "reduce", "allreduce", "scan",
}


class MPIInLoopRule(Rule):
    """RA006: an MPI call lexically inside >= 2 nested loops.

    The paper's profile charges ~3 ms latency per message on the modeled
    wire; per-cell messaging turns an O(cells) sweep into O(cells) network
    round-trips.  Batch into one exchange per patch/level instead.
    """

    code = "RA006"
    summary = "MPI call inside a per-cell (nested) loop"

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, depth: int) -> None:
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                depth += 1
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                recv = _dotted(node.func.value)
                if (depth >= 2 and node.func.attr in _COMM_METHODS
                        and recv is not None
                        and "comm" in recv.rsplit(".", 1)[-1].lower()):
                    findings.append(self.finding(
                        ctx, node,
                        f"{recv}.{node.func.attr}() inside {depth} nested "
                        "loops; hoist out and batch the exchange"))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)) and depth:
                depth = 0  # a nested function body is a fresh path
            for child in ast.iter_child_nodes(node):
                visit(child, depth)

        visit(ctx.tree, 0)
        return findings


class PrintRule(Rule):
    """RA007: a direct ``print`` call outside a sanctioned reporter.

    Library code that prints bypasses every observability surface this
    repo built — the output is invisible to metrics, spans, the flight
    recorder and the live endpoints, and it corrupts machine-readable
    stdout (the JSON/markdown reporters).  Route events through
    ``RankObs.log`` / metrics; human-facing output belongs in the
    ``__main__`` CLIs and the report/loadgen modules
    (:data:`~repro.analysis.lint.RA007_SANCTIONED`).

    AST-based on purpose: only a call whose function is the bare name
    ``print`` counts — ``_fingerprint(...)`` or a ``print`` method on
    some object is not a hit, and a shadowed local ``print`` is too rare
    to special-case.
    """

    code = "RA007"
    summary = "direct print() outside reporter modules"

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.is_sanctioned_for(RA007_SANCTIONED):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                findings.append(self.finding(
                    ctx, node,
                    "print() in library code; use RankObs.log / metrics for "
                    "events, or move human output to a __main__/report "
                    "module"))
        return findings


class WirePickleRule(Rule):
    """RA008: ``pickle.dumps`` in ``repro.mpi`` outside the wire codec.

    The zero-copy wire format exists because per-frame whole-envelope
    pickling dominated the communication hot path; a stray
    ``pickle.dumps`` in the MPI layer silently reintroduces that cost
    and forks the wire format.  All frame serialization — including the
    pickle *fallback* for non-array payloads — must go through
    :mod:`repro.mpi.codec`, the one sanctioned module
    (:data:`~repro.analysis.lint.RA008_SANCTIONED`).  ``pickle.loads``
    is deliberately not flagged: decoding a foreign blob does not
    create a second wire format.
    """

    code = "RA008"
    summary = "pickle.dumps in repro.mpi outside the wire codec"

    def check(self, ctx: FileContext) -> list[Finding]:
        if "repro/mpi/" not in ctx.posix:
            return []
        if ctx.is_sanctioned_for(RA008_SANCTIONED):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and _dotted(node.func) == "pickle.dumps"):
                findings.append(self.finding(
                    ctx, node,
                    "pickle.dumps() in the MPI layer outside the codec; "
                    "serialize frames through repro.mpi.codec (encode/"
                    "encode_bytes, or pickled_size for sizing)"))
        return findings


#: the catalogue, keyed by rule code (stable ordering for reports)
RULES: dict[str, Rule] = {
    r.code: r for r in (
        UnbalancedTimerRule(), DeterminismEscapeRule(), DeadUsesPortRule(),
        MutableDefaultRule(), BroadExceptRule(), MPIInLoopRule(),
        PrintRule(), WirePickleRule(),
    )
}
