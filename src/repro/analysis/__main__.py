"""CLI entry point: ``python -m repro.analysis [paths...] [options]``.

Runs the whole-program engine (lexical rules + interprocedural flow
rules) by default.  Exit status is 0 when no findings survive suppression
and the baseline, 1 otherwise (2 on usage errors), so the command drops
straight into CI.

Production flags::

    --sarif [PATH]       write SARIF 2.1.0 (default: stdout)
    --baseline PATH      filter findings already in the committed baseline
    --update-baseline    rewrite the baseline with the current findings
    --cache PATH         incremental cache keyed by file content hash
    --no-engine          lexical per-file pass only (the PR-4 behavior)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import analyze_paths
from repro.analysis.lint import lint_paths
from repro.analysis.report import human_report, json_report
from repro.analysis.sarif import render_sarif
from repro.util.atomicio import atomic_write_text


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Whole-program static analyzer for the repro codebase "
                    "(rules RA001-RA012; suppress with '# ra: noqa[RAxxx]').")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--format", choices=("human", "json"), default="human",
                        help="report format (default: human)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all, e.g. --rules RA002,RA004)")
    parser.add_argument("--sarif", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="emit SARIF 2.1.0 to PATH (or stdout with no "
                             "argument) instead of the human/JSON report")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file: findings fingerprinted there "
                             "do not fail the run")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline from the current findings "
                             "and exit 0")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="incremental cache file (content-hash keyed)")
    parser.add_argument("--no-engine", action="store_true",
                        help="per-file lexical rules only; skips the "
                             "interprocedural engine, baseline and SARIF")
    args = parser.parse_args(argv)

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    rules = ([c.strip().upper() for c in args.rules.split(",") if c.strip()]
             if args.rules else None)

    if args.update_baseline and args.baseline is None:
        print("repro.analysis: --update-baseline requires --baseline PATH",
              file=sys.stderr)
        return 2

    try:
        if args.no_engine:
            findings = lint_paths(paths, rules=rules)
            fingerprints: dict = {}
        else:
            result = analyze_paths(
                paths, rules=rules, cache_path=args.cache,
                baseline_path=args.baseline,
                update_baseline=args.update_baseline)
            findings, fingerprints = result.findings, result.fingerprints
    except FileNotFoundError as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        print(f"repro.analysis: baseline updated with {len(findings)} "
              f"finding(s) -> {args.baseline}")
        return 0

    if args.sarif is not None and not args.no_engine:
        sarif = render_sarif(findings, fingerprints)
        if args.sarif == "-":
            print(sarif, end="")
        else:
            atomic_write_text(args.sarif, sarif)
            print(f"repro.analysis: SARIF written to {args.sarif} "
                  f"({len(findings)} finding(s))")
    else:
        report = (json_report(findings) if args.format == "json"
                  else human_report(findings))
        print(report)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
