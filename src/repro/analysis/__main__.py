"""CLI entry point: ``python -m repro.analysis [paths...] [--format=...]``.

Exit status is 0 when no findings survive suppression, 1 otherwise (2 on
usage errors), so the command drops straight into CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.lint import lint_paths
from repro.analysis.report import human_report, json_report


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Domain-aware linter for the repro codebase "
                    "(rules RA001-RA006; suppress with '# ra: noqa[RAxxx]').")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--format", choices=("human", "json"), default="human",
                        help="report format (default: human)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all, e.g. --rules RA002,RA004)")
    args = parser.parse_args(argv)

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    rules = ([c.strip().upper() for c in args.rules.split(",") if c.strip()]
             if args.rules else None)
    try:
        findings = lint_paths(paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2
    report = json_report(findings) if args.format == "json" else human_report(findings)
    print(report)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
