"""Runtime MPI/determinism sanitizers for the simulated MPI layer.

MUST-style dynamic correctness checking (PAPERS.md: Vetter & de Supinski)
adapted to the thread-backed simulator.  A :class:`Sanitizer` attaches to a
:class:`~repro.mpi.world.SimWorld` when ``sanitize=SanitizerConfig()`` is
passed to the runner / ``run_scmd`` / ``CaseStudyConfig`` and performs four
families of checks:

* **collective ordering** — every collective piggybacks a token (routine
  name, per-rank op index, rolling op-sequence hash) through the exchange
  slot; ranks compare all P tokens after the rendezvous and report the
  first divergent operation instead of silently combining a ``bcast`` with
  a ``reduce``;
* **point-to-point hygiene** — payload type stability per (context, source,
  dest, tag) channel (warning), plus finalize-time detection of leaked
  :class:`~repro.mpi.request.RecvRequest` objects and unconsumed
  :class:`~repro.mpi.message.Envelope` s;
* **deadlock detection** — blocked ranks register a wait-for edge set
  (specific source, ANY_SOURCE fan-in, or the missing ranks of a
  collective); a fixpoint over the wait-for graph finds groups whose every
  member waits only on other stuck members and raises
  :class:`DeadlockError` naming the cycle of ranks and pending ops instead
  of hanging until the world timeout;
* **ghost-region races** — :class:`GhostGuard` version-stamps and
  checksums patch regions with outstanding nonblocking sends/recvs and
  flags any write that lands mid-exchange.

Findings are recorded (:attr:`Sanitizer.findings`), emitted through the
per-rank :class:`~repro.obs.metrics.MetricsRegistry` when observability is
on (``sanitizer_findings_total{kind=...}``), and — with ``strict=True``,
the default — raised as typed :class:`SanitizerError` subclasses at the
point of detection.  Deadlocks always raise: the alternative is the hang
they exist to prevent.
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.amr.patch import Patch
    from repro.mpi.message import Envelope
    from repro.mpi.request import RecvRequest


class SanitizerError(RuntimeError):
    """Base class for sanitizer-detected correctness violations."""


class DeadlockError(SanitizerError):
    """A cycle of ranks each blocked waiting on another member."""


class CollectiveMismatchError(SanitizerError):
    """Ranks issued different collective operations at the same slot."""


class GhostRaceError(SanitizerError):
    """A buffer with an outstanding nonblocking transfer was written."""


class LeakError(SanitizerError):
    """Requests never completed / envelopes never received at finalize."""


#: finding kinds that never raise, regardless of ``strict``
WARNING_KINDS = frozenset({"p2p-type-instability"})


@dataclass
class SanitizerConfig:
    """Which sanitizer families run, and how violations are surfaced.

    ``strict=True`` raises a typed :class:`SanitizerError` at the point of
    detection (deadlocks always raise); ``strict=False`` only records
    findings, for survey runs over known-dirty workloads.
    """

    collective_order: bool = True
    p2p: bool = True
    deadlock: bool = True
    ghost_race: bool = True
    strict: bool = True
    #: how often blocked ranks re-check the wait-for graph (seconds)
    deadlock_poll_s: float = 0.05
    #: per-rank collective history depth kept for divergence diagnostics
    history: int = 64

    def __post_init__(self) -> None:
        if self.deadlock_poll_s <= 0:
            raise ValueError(
                f"deadlock_poll_s must be positive, got {self.deadlock_poll_s}")
        if self.history < 2:
            raise ValueError(f"history must be >= 2, got {self.history}")


@dataclass(frozen=True)
class SanitizerFinding:
    """One recorded violation."""

    kind: str
    rank: int
    message: str

    def format(self) -> str:
        return f"[{self.kind}] rank {self.rank}: {self.message}"


@dataclass(frozen=True)
class _CollToken:
    """Per-rank metadata piggybacked through one collective exchange."""

    rank: int
    routine: str
    index: int
    seq_hash: int


@dataclass
class _WaitState:
    """One blocked rank's registered wait-for edge set."""

    op: str
    detail: str
    waits_on: frozenset[int]
    gen: int


def type_signature(obj: Any) -> str:
    """Compact payload type descriptor used for channel-stability checks."""
    tname = type(obj).__name__
    shape = getattr(obj, "shape", None)
    dtype = getattr(obj, "dtype", None)
    if shape is not None and dtype is not None:
        return f"{tname}[{dtype},{len(shape)}d]"
    return tname


class Sanitizer:
    """All shared sanitizer state for one simulated job."""

    def __init__(self, nranks: int, config: SanitizerConfig | None = None,
                 obs: Sequence[Any] | None = None) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = int(nranks)
        self.config = config or SanitizerConfig()
        self._obs = obs
        self.findings: list[SanitizerFinding] = []
        self._flock = threading.Lock()

        # Collective ordering: per-(rank, context) op counter + rolling
        # hash, plus a bounded per-rank history for divergence reports.
        self._coll_count: dict[tuple[int, str], int] = {}
        self._coll_hash: dict[tuple[int, str], int] = {}
        self._coll_hist: list[deque[tuple[str, int, str]]] = [
            deque(maxlen=self.config.history) for _ in range(self.nranks)]

        # P2P: channel payload-type stability + per-rank posted receives.
        self._chan_types: dict[tuple[str, int, int, int], str] = {}
        self._requests: list[list["RecvRequest"]] = [[] for _ in range(self.nranks)]

        # Deadlock: registered wait states + per-rank progress generations.
        self._dlock = threading.Lock()
        self._wait: list[_WaitState | None] = [None] * self.nranks
        self._gen: list[int] = [0] * self.nranks

    # ---------------------------------------------------------- findings
    def record(self, kind: str, rank: int, message: str,
               exc: type[SanitizerError] | None = None) -> None:
        """Record a finding; raise it when strict (warnings never raise)."""
        with self._flock:
            self.findings.append(SanitizerFinding(kind=kind, rank=rank,
                                                  message=message))
        if self._obs is not None:
            self._obs[rank].metrics.counter(
                "sanitizer_findings_total", "sanitizer findings by kind",
                kind=kind).inc()
        if kind in WARNING_KINDS:
            return
        always = exc is DeadlockError  # never trade a report for a hang
        if (self.config.strict or always) and exc is not None:
            raise exc(message)

    def findings_by_kind(self) -> dict[str, int]:
        with self._flock:
            out: dict[str, int] = {}
            for f in self.findings:
                out[f.kind] = out.get(f.kind, 0) + 1
            return out

    # ------------------------------------------------ collective ordering
    def collective_token(self, rank: int, context: str, seq: int,
                         routine: str) -> _CollToken:
        """Advance this rank's op sequence; returns the exchange token."""
        key = (rank, context)
        index = self._coll_count.get(key, 0)
        self._coll_count[key] = index + 1
        h = self._coll_hash.get(key, 0)
        h = ((h * 1000003) ^ (zlib.crc32(routine.encode()) + seq)) & 0xFFFFFFFFFFFFFFFF
        self._coll_hash[key] = h
        self._coll_hist[rank].append((context, seq, routine))
        return _CollToken(rank=rank, routine=routine, index=index, seq_hash=h)

    def collective_check(self, rank: int, context: str, seq: int,
                         tokens: Sequence[_CollToken]) -> None:
        """Compare all ranks' tokens for one rendezvous; report divergence."""
        mine = next(t for t in tokens if t.rank == rank)
        for other in tokens:
            if other.routine != mine.routine:
                msg = (f"collective #{seq} on context {context!r}: "
                       f"rank {mine.rank} issued {mine.routine} but "
                       f"rank {other.rank} issued {other.routine} "
                       "— collectives must be called in the same order on "
                       "all ranks")
                self.record("collective-mismatch", rank, msg,
                            CollectiveMismatchError)
                return
        for other in tokens:
            if other.seq_hash != mine.seq_hash or other.index != mine.index:
                first = self._first_divergence(rank, other.rank)
                msg = (f"collective #{seq} on context {context!r}: "
                       f"op-sequence divergence between rank {mine.rank} "
                       f"(op index {mine.index}) and rank {other.rank} "
                       f"(op index {other.index}); first divergent op in "
                       f"recent history: {first}")
                self.record("collective-mismatch", rank, msg,
                            CollectiveMismatchError)
                return

    def _first_divergence(self, a: int, b: int) -> str:
        ha, hb = list(self._coll_hist[a]), list(self._coll_hist[b])
        for i in range(max(len(ha), len(hb))):
            ea = ha[i] if i < len(ha) else None
            eb = hb[i] if i < len(hb) else None
            if ea != eb:
                return (f"rank {a}: {ea!r} vs rank {b}: {eb!r}")
        return "(histories agree within retained window)"

    # ------------------------------------------------------ point-to-point
    def on_send(self, rank: int, context: str, env: "Envelope") -> None:
        """Channel payload-type stability check, recorded at send time."""
        if not self.config.p2p:
            return
        sig = type_signature(env.payload)
        key = (context, env.source, env.dest, env.tag)
        with self._flock:
            prev = self._chan_types.get(key)
            self._chan_types[key] = sig
        if prev is not None and prev != sig:
            self.record(
                "p2p-type-instability", rank,
                f"channel (context={context!r}, {env.source}->{env.dest}, "
                f"tag={env.tag}) carried {prev} before but now {sig}; "
                "matching receives cannot rely on a stable datatype")

    def on_post_recv(self, rank: int, req: "RecvRequest") -> None:
        """Track a posted nonblocking receive for finalize-time leak checks."""
        if not self.config.p2p:
            return
        reqs = self._requests[rank]
        reqs.append(req)
        if len(reqs) > 256:
            # Compact completed requests so payload references are released.
            self._requests[rank] = [r for r in reqs if not r.complete]

    # ------------------------------------------------------------ deadlock
    def notify_progress(self, rank: int) -> None:
        """A message/deposit arrived for ``rank``: its registered wait is
        stale and must not count as stuck until it re-checks its mailbox."""
        with self._dlock:
            self._gen[rank] += 1

    def notify_progress_all(self) -> None:
        """Collective deposit: any waiter may be unblocked by it."""
        with self._dlock:
            for r in range(self.nranks):
                self._gen[r] += 1

    def enter_wait(self, rank: int, op: str, detail: str,
                   waits_on: Iterable[int]) -> None:
        """(Re-)register a blocked rank's current wait-for edge set."""
        with self._dlock:
            self._wait[rank] = _WaitState(
                op=op, detail=detail,
                waits_on=frozenset(waits_on) - {rank}, gen=self._gen[rank])

    def exit_wait(self, rank: int) -> None:
        with self._dlock:
            self._wait[rank] = None

    def _deadlock_snapshot(self) -> tuple[list[_WaitState | None], list[int]]:
        """Consistent (wait states, progress generations) snapshot.

        The seam process backends override: their ranks live in separate
        processes, so the snapshot must be read from a shared-memory wait
        table rather than this process's lists (see
        :class:`repro.mpi.mpshm.SharedSanitizer`).
        """
        with self._dlock:
            return list(self._wait), list(self._gen)

    @staticmethod
    def _stuck_set(waits: list[_WaitState | None], gens: list[int]) -> set[int]:
        """Fixpoint over the wait-for graph: the set of ranks whose every
        wait-for edge leads to another member with no progress since
        registration."""
        stuck = {r for r, w in enumerate(waits)
                 if w is not None and w.gen == gens[r] and w.waits_on}
        changed = True
        while changed:
            changed = False
            for r in list(stuck):
                if any(peer not in stuck for peer in waits[r].waits_on):
                    stuck.discard(r)
                    changed = True
        return stuck

    def check_deadlock(self, rank: int) -> None:
        """Fixpoint over the wait-for graph; raises :class:`DeadlockError`
        naming the cycle when ``rank`` belongs to a stuck group."""
        if not self.config.deadlock:
            return
        waits, gens = self._deadlock_snapshot()
        stuck = self._stuck_set(waits, gens)
        if rank not in stuck:
            return
        self._raise_deadlock(rank, waits, stuck)

    def _raise_deadlock(self, rank: int, waits: list[_WaitState | None],
                        stuck: set[int]) -> None:
        # Walk one concrete cycle through the stuck set for the report.
        cycle = [rank]
        seen = {rank}
        cur = rank
        while True:
            nxt = min(p for p in waits[cur].waits_on if p in stuck)
            if nxt in seen:
                cycle.append(nxt)
                break
            cycle.append(nxt)
            seen.add(nxt)
            cur = nxt
        hops = " -> ".join(
            f"rank {r} blocked in {waits[r].op} {waits[r].detail}"
            if i < len(cycle) - 1 else f"rank {r}"
            for i, r in enumerate(cycle))
        msg = (f"deadlock detected among ranks {sorted(stuck)}: {hops}")
        self.record("deadlock", rank, msg, DeadlockError)

    # ------------------------------------------------------------ finalize
    def finalize(self, world: Any) -> None:
        """End-of-job hygiene: leaked requests and unconsumed envelopes.

        Called by the runner after every rank thread joined cleanly.
        """
        if not self.config.p2p:
            return
        problems: list[str] = []
        for rank in range(self.nranks):
            leaked = [r for r in self._requests[rank] if not r.complete]
            if leaked:
                pend = ", ".join(
                    f"(source={r.source}, tag={r.tag})" for r in leaked)
                msg = (f"{len(leaked)} leaked RecvRequest(s) posted but "
                       f"never completed: {pend}")
                self.record("leaked-request", rank, msg, None)
                problems.append(f"rank {rank}: {msg}")
            left = world.leftover_envelopes(rank)
            if left:
                desc = ", ".join(
                    f"from rank {e.source} tag={e.tag} (context={c!r}, "
                    f"seq={e.seq}, {type_signature(e.payload)})"
                    for c, e in left)
                msg = (f"{len(left)} unconsumed Envelope(s) still in the "
                       f"mailbox at finalize: {desc}")
                self.record("unconsumed-envelope", rank, msg, None)
                problems.append(f"rank {rank}: {msg}")
        if problems and self.config.strict:
            raise LeakError("; ".join(problems))

    # ---------------------------------------------------------- ghost race
    def ghost_guard(self, rank: int) -> "GhostGuard | None":
        """A fresh per-exchange guard, or None when the family is off."""
        if not self.config.ghost_race:
            return None
        return GhostGuard(self, rank)


@dataclass
class _Watch:
    """One guarded patch region with an outstanding transfer."""

    patch: "Patch"
    region: Any
    fields: tuple[str, ...]
    tag: int
    version: int
    checksum: int


@dataclass
class GhostGuard:
    """Race detector for one ghost-exchange drain.

    ``watch_send``/``watch_recv`` stamp (version, checksum) of the patch
    region when the nonblocking operation is posted;
    ``check_recv``/``check_sends`` re-hash at completion and flag any
    mid-exchange write.  One guard instance covers one
    :func:`~repro.amr.ghost.execute_transfers` call.
    """

    sanitizer: Sanitizer
    rank: int
    _sends: list[_Watch] = field(default_factory=list)
    _recvs: dict[int, _Watch] = field(default_factory=dict)

    @staticmethod
    def _checksum(patch: "Patch", region: Any, fields: Sequence[str]) -> int:
        crc = 0
        for f in fields:
            block = patch.view(f, region)
            crc = zlib.crc32(block.tobytes(), crc)
        return crc

    def watch_send(self, patch: "Patch", region: Any, fields: Sequence[str],
                   tag: int) -> None:
        self._sends.append(_Watch(
            patch=patch, region=region, fields=tuple(fields), tag=tag,
            version=patch.version,
            checksum=self._checksum(patch, region, fields)))

    def watch_recv(self, patch: "Patch", region: Any, fields: Sequence[str],
                   tag: int) -> None:
        self._recvs[tag] = _Watch(
            patch=patch, region=region, fields=tuple(fields), tag=tag,
            version=patch.version,
            checksum=self._checksum(patch, region, fields))

    def _flag(self, w: _Watch, op: str) -> None:
        self.sanitizer.record(
            "ghost-race", self.rank,
            f"ghost-region race: patch uid={w.patch.uid} region={w.region} "
            f"fields={list(w.fields)} written while nonblocking {op} "
            f"tag={w.tag} was outstanding (patch version "
            f"{w.version} -> {w.patch.version})", GhostRaceError)

    def check_recv(self, tag: int) -> None:
        """Verify the destination region was untouched, then release it
        (the matched insert is about to write it legitimately)."""
        w = self._recvs.pop(tag, None)
        if w is None:
            return
        if self._checksum(w.patch, w.region, w.fields) != w.checksum:
            self._flag(w, "receive")

    def check_sends(self) -> None:
        """Verify every posted send's source region at drain completion."""
        for w in self._sends:
            if self._checksum(w.patch, w.region, w.fields) != w.checksum:
                self._flag(w, "send")
        self._sends.clear()
