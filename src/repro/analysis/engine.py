"""The whole-program analysis engine.

Orchestrates the per-file lexical pass and the interprocedural flow rules
into one production-shaped pipeline::

    files -> (cache?) per-file extraction -> symbol table -> call graph
          -> flow rules -> suppressions (+RA012) -> baseline filter

Production affordances:

* **Incremental cache** (``--cache PATH``): per-file raw lexical findings
  and symbol summaries are stored keyed by the file's sha256 content hash
  and :data:`ENGINE_VERSION`; an unchanged file is never re-parsed.  The
  cross-file phases (symbol table, call graph, flow rules) are cheap and
  recomputed every run, so cache hits stay sound across file boundaries.
* **Baseline** (``--baseline PATH``): known findings are identified by a
  line-drift-robust fingerprint — ``sha1(rule : relpath : stripped line
  text : occurrence-index)`` — and filtered out, so only *new* findings
  fail CI.  ``--update-baseline`` rewrites the file atomically.
* **Unused-suppression detection** (RA012): a ``# ra: noqa`` line that
  suppressed nothing is itself a finding (only when the full rule set
  runs; a ``--rules`` subset would make every other suppression look
  unused).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.analysis.callgraph import CallGraph, SymbolTable
from repro.analysis.commcheck import run_flow_rules
from repro.analysis.lint import (Finding, _collect_noqa, apply_suppressions,
                                 iter_python_files, lint_tree, make_context)
from repro.analysis.symbols import ModuleSummary, extract_module, module_name_for
from repro.util.atomicio import atomic_write_text

#: bumped whenever extraction or rule semantics change: stale cache entries
#: (and baselines written by older engines) are invalidated wholesale
ENGINE_VERSION = 1

#: rule codes produced only by the engine layer (not the lexical pass)
ENGINE_RULES = ("RA009", "RA010", "RA011", "RA012")


@dataclass
class EngineResult:
    """Outcome of one :func:`analyze_paths` run."""

    findings: list[Finding]
    fingerprints: dict[Finding, str]
    summaries: list[ModuleSummary]
    table: SymbolTable
    graph: CallGraph
    stats: dict[str, int] = field(default_factory=dict)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _load_json(path: Path) -> dict[str, Any]:
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
        return obj if isinstance(obj, dict) else {}
    except (OSError, ValueError):
        return {}


# ----------------------------------------------------------- fingerprints
def _relpath(path: str) -> str:
    p = Path(path)
    try:
        return p.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return p.as_posix()


def compute_fingerprints(findings: Sequence[Finding],
                         sources: dict[str, str]) -> dict[Finding, str]:
    """Stable ids robust to pure line drift.

    ``sha1(rule : relpath : stripped-line-text : k)`` where ``k`` numbers
    repeated identical (rule, line-text) pairs within one file.  Moving a
    line keeps its fingerprint; editing it (or its rule) makes a new one.
    """
    lines_of: dict[str, list[str]] = {}
    out: dict[Finding, str] = {}
    seen: dict[tuple[str, str, str], int] = {}
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        if f.path not in lines_of:
            src = sources.get(f.path)
            if src is None:
                try:
                    src = Path(f.path).read_text(encoding="utf-8")
                except OSError:
                    src = ""
            lines_of[f.path] = src.splitlines()
        lines = lines_of[f.path]
        text = lines[f.line - 1].strip() if 0 < f.line <= len(lines) else ""
        rel = _relpath(f.path)
        key = (f.rule, rel, text)
        k = seen.get(key, 0)
        seen[key] = k + 1
        out[f] = hashlib.sha1(
            f"{f.rule}:{rel}:{text}:{k}".encode("utf-8")).hexdigest()
    return out


# ---------------------------------------------------------------- baseline
def load_baseline(path: Path) -> set[str]:
    """Known-finding fingerprints, or the empty set on a missing file."""
    obj = _load_json(path)
    fps = obj.get("fingerprints", {})
    if isinstance(fps, dict):
        return set(fps)
    return set(fps) if isinstance(fps, list) else set()


def write_baseline(path: Path, findings: Sequence[Finding],
                   fingerprints: dict[Finding, str]) -> None:
    """Atomically (re)write the committed baseline, sorted for stable diffs."""
    entries = {
        fingerprints[f]: {"rule": f.rule, "path": _relpath(f.path),
                          "message": f.message}
        for f in findings if f in fingerprints
    }
    payload = {
        "version": ENGINE_VERSION,
        "tool": "repro.analysis",
        "fingerprints": {fp: entries[fp] for fp in sorted(entries)},
    }
    atomic_write_text(str(path), json.dumps(payload, indent=2) + "\n")


# ------------------------------------------------------------------- cache
def _load_cache(path: Path | None) -> dict[str, Any]:
    if path is None:
        return {}
    obj = _load_json(path)
    if obj.get("version") != ENGINE_VERSION:
        return {}
    files = obj.get("files", {})
    return files if isinstance(files, dict) else {}


def _write_cache(path: Path, entries: dict[str, Any]) -> None:
    payload = {"version": ENGINE_VERSION, "files": entries}
    atomic_write_text(str(path), json.dumps(payload) + "\n")


def _summarize_file(path: Path, source: str) -> ModuleSummary:
    """Per-file extraction: lexical findings + symbol summary (cacheable)."""
    ctx = make_context(path, source=source)
    if isinstance(ctx, Finding):  # RA000: does not parse
        return ModuleSummary(
            module=module_name_for(path), path=str(path),
            raw_findings=[(ctx.rule, ctx.line, ctx.col, ctx.message)],
            noqa={line: sorted(codes)
                  for line, codes in _collect_noqa(source).items()},
            syntax_error=True)
    raw = lint_tree(ctx)
    return extract_module(
        path, source, ctx.tree,
        raw_findings=[(f.rule, f.line, f.col, f.message) for f in raw],
        noqa=ctx.noqa)


# ------------------------------------------------------------------ driver
def analyze_paths(paths: Iterable[str | Path],
                  rules: Sequence[str] | None = None,
                  cache_path: str | Path | None = None,
                  baseline_path: str | Path | None = None,
                  update_baseline: bool = False) -> EngineResult:
    """Run the whole-program engine over ``paths``.

    Returns the surviving findings (suppressions applied, baseline
    filtered) plus the model itself (summaries, symbol table, call graph)
    for the crosscheck tests and the CLI.
    """
    selected = {c.upper() for c in rules} if rules is not None else None
    cache_file = Path(cache_path) if cache_path is not None else None
    cache = _load_cache(cache_file)
    new_cache: dict[str, Any] = {}
    stats = {"files": 0, "cache_hits": 0, "cache_misses": 0,
             "suppressed": 0, "baseline_filtered": 0}

    # --- per-file phase (cached)
    summaries: list[ModuleSummary] = []
    sources: dict[str, str] = {}
    for path in iter_python_files(paths):
        stats["files"] += 1
        source = path.read_text(encoding="utf-8")
        sources[str(path)] = source
        digest = _sha256(source)
        entry = cache.get(str(path))
        if entry is not None and entry.get("sha") == digest:
            stats["cache_hits"] += 1
            summary = ModuleSummary.from_json(entry["summary"])
        else:
            stats["cache_misses"] += 1
            summary = _summarize_file(path, source)
        summaries.append(summary)
        new_cache[str(path)] = {"sha": digest, "summary": summary.to_json()}
    if cache_file is not None:
        _write_cache(cache_file, new_cache)

    # --- cross-file phase (always recomputed)
    table = SymbolTable(s for s in summaries if not s.syntax_error)
    graph = CallGraph(table, cha=True)
    flow = run_flow_rules(table)

    # --- merge, dedupe, filter by rule selection
    per_file: dict[str, list[Finding]] = {s.path: [] for s in summaries}
    seen_sites: set[tuple[str, str, int, int]] = set()
    for s in summaries:
        for rule, line, col, message in s.raw_findings:
            per_file[s.path].append(Finding(rule, s.path, line, col, message))
            seen_sites.add((rule, s.path, line, col))
    for f in flow:
        if (f.rule, f.path, f.line, f.col) in seen_sites:
            continue  # the lexical pass already owns this exact site
        per_file.setdefault(f.path, []).append(f)

    # --- suppressions + RA012
    noqa_of = {s.path: {line: set(codes) for line, codes in s.noqa.items()}
               for s in summaries}
    findings: list[Finding] = []
    for path, file_findings in per_file.items():
        noqa = noqa_of.get(path, {})
        kept, used = apply_suppressions(file_findings, noqa)
        stats["suppressed"] += len(file_findings) - len(kept)
        findings.extend(kept)
        if selected is None:  # RA012 is only sound for the full rule set
            for line in sorted(set(noqa) - used):
                codes = ",".join(sorted(noqa[line] - {"*"})) or "*"
                findings.append(Finding(
                    "RA012", path, line, 0,
                    f"unused suppression '# ra: noqa[{codes}]' — "
                    "no finding on this line; remove the comment"))
    if selected is not None:
        findings = [f for f in findings if f.rule in selected]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    # --- baseline
    fingerprints = compute_fingerprints(findings, sources)
    if baseline_path is not None:
        baseline_file = Path(baseline_path)
        if update_baseline:
            write_baseline(baseline_file, findings, fingerprints)
        else:
            known = load_baseline(baseline_file)
            before = len(findings)
            findings = [f for f in findings if fingerprints[f] not in known]
            stats["baseline_filtered"] = before - len(findings)

    stats["findings"] = len(findings)
    return EngineResult(findings=findings, fingerprints=fingerprints,
                        summaries=summaries, table=table, graph=graph,
                        stats=stats)
