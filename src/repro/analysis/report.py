"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.lint import Finding


def human_report(findings: Sequence[Finding]) -> str:
    """``path:line:col: CODE message`` lines plus a per-rule tally."""
    if not findings:
        return "repro.analysis: no findings"
    lines = [f.format() for f in findings]
    tally = Counter(f.rule for f in findings)
    summary = ", ".join(f"{code}={n}" for code, n in sorted(tally.items()))
    lines.append(f"repro.analysis: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def json_report(findings: Sequence[Finding]) -> str:
    """JSON document: ``{"findings": [...], "counts": {...}}``."""
    payload = {
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line,
             "col": f.col, "message": f.message}
            for f in findings
        ],
        "counts": dict(sorted(Counter(f.rule for f in findings).items())),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
