"""Per-module symbol extraction for the whole-program engine.

One parse of a module produces a :class:`ModuleSummary`: the import alias
map, every function/method with a structured **op tree** (the control-flow
skeleton the flow rules in :mod:`repro.analysis.commcheck` walk), the p2p
request posts with their binding context, and the raw lexical findings.
Summaries are plain-JSON serializable, which is what makes the engine's
content-hash incremental cache possible: an unchanged file round-trips its
summary from the cache and is never re-parsed.

The op tree is a list of nodes (plain dicts)::

    {"k": "call", "name": "comm.isend", "line": 10, "col": 4,
     "depth": 1, "lock": null}
    {"k": "if",   "line": 12, "rank": true, "arms": [[...], [...]]}
    {"k": "loop", "line": 14, "body": [...]}
    {"k": "with", "line": 16, "lock": "self._lock", "body": [...]}

``depth`` counts enclosing ``for``/``while`` loops (the RA006 convention);
``lock`` names the innermost held lock-like context manager, if any.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

JsonNode = dict[str, Any]


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path: Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` packages.

    ``src/repro/mpi/comm.py`` -> ``repro.mpi.comm`` (because ``src`` has no
    ``__init__.py``); a loose fixture file maps to its stem.
    """
    parts: list[str] = [] if path.stem == "__init__" else [path.stem]
    d = path.resolve().parent
    while (d / "__init__.py").exists():
        parts.append(d.name)
        parent = d.parent
        if parent == d:
            break
        d = parent
    return ".".join(reversed(parts)) or path.stem


def _is_rankish(test: ast.AST) -> bool:
    """Does a branch condition (lexically) depend on the MPI rank?"""
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and "rank" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "rank" in node.attr.lower():
            return True
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "Get_rank"):
            return True
    return False


def _lock_name(expr: ast.expr) -> str | None:
    """Name of a lock-like ``with`` context, or None.

    Matches dotted tails ending in ``lock``/``mutex``; condition variables
    (``with cond:``) release while waiting and are deliberately excluded.
    """
    if isinstance(expr, ast.Call):
        expr = expr.func
    d = dotted_name(expr)
    if d is None:
        return None
    tail = d.rsplit(".", 1)[-1].lower()
    if "cond" in tail:
        return None
    if tail.endswith("lock") or tail == "mutex":
        return d
    return None


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    name: str
    line: int
    col: int
    depth: int
    lock: str | None


@dataclass(frozen=True)
class P2PPost:
    """An ``isend``/``irecv`` call and what happened to its request."""

    op: str          # "isend" | "irecv"
    recv: str        # receiver dotted path (e.g. "comm", "self.comm")
    line: int
    col: int
    ctx: str         # "discard" | "bound" | "escape"
    names: tuple[str, ...]  # bound target names (ctx == "bound")


@dataclass
class FuncInfo:
    """One function or method, with its extracted communication skeleton."""

    name: str                  # module-local qualname, e.g. "SimComm.isend"
    module: str
    path: str
    line: int
    parent: str | None = None  # enclosing function qualname (nested defs)
    cls: str | None = None
    ops: list[JsonNode] = field(default_factory=list)
    posts: list[P2PPost] = field(default_factory=list)
    loads: tuple[str, ...] = ()

    @property
    def fq(self) -> str:
        return f"{self.module}.{self.name}"

    def calls(self) -> Iterator[CallSite]:
        """Flat source-order iteration over the op tree's call nodes."""
        yield from _iter_calls(self.ops)

    def to_json(self) -> JsonNode:
        return {
            "name": self.name, "module": self.module, "path": self.path,
            "line": self.line, "parent": self.parent, "cls": self.cls,
            "ops": self.ops,
            "posts": [[p.op, p.recv, p.line, p.col, p.ctx, list(p.names)]
                      for p in self.posts],
            "loads": sorted(self.loads),
        }

    @classmethod
    def from_json(cls, obj: JsonNode) -> "FuncInfo":
        return cls(
            name=obj["name"], module=obj["module"], path=obj["path"],
            line=obj["line"], parent=obj.get("parent"), cls=obj.get("cls"),
            ops=obj.get("ops", []),
            posts=[P2PPost(op=p[0], recv=p[1], line=p[2], col=p[3],
                           ctx=p[4], names=tuple(p[5]))
                   for p in obj.get("posts", [])],
            loads=tuple(obj.get("loads", ())),
        )


def _iter_calls(nodes: list[JsonNode]) -> Iterator[CallSite]:
    for n in nodes:
        k = n["k"]
        if k == "call":
            yield CallSite(name=n["name"], line=n["line"], col=n["col"],
                           depth=n["depth"], lock=n.get("lock"))
        elif k == "if":
            for arm in n["arms"]:
                yield from _iter_calls(arm)
        elif k in ("loop", "with"):
            yield from _iter_calls(n["body"])


@dataclass
class ModuleSummary:
    """Everything the cross-file phases need from one module."""

    module: str
    path: str
    aliases: dict[str, str] = field(default_factory=dict)
    functions: list[FuncInfo] = field(default_factory=list)
    classes: dict[str, list[str]] = field(default_factory=dict)
    raw_findings: list[tuple[str, int, int, str]] = field(default_factory=list)
    noqa: dict[int, list[str]] = field(default_factory=dict)
    syntax_error: bool = False

    @property
    def posix(self) -> str:
        return Path(self.path).as_posix()

    def is_sanctioned_for(self, suffixes: tuple[str, ...]) -> bool:
        return any(self.posix.endswith(s) for s in suffixes)

    def to_json(self) -> JsonNode:
        return {
            "module": self.module, "path": self.path, "aliases": self.aliases,
            "functions": [f.to_json() for f in self.functions],
            "classes": self.classes,
            "raw_findings": [list(f) for f in self.raw_findings],
            "noqa": {str(k): v for k, v in self.noqa.items()},
            "syntax_error": self.syntax_error,
        }

    @classmethod
    def from_json(cls, obj: JsonNode) -> "ModuleSummary":
        return cls(
            module=obj["module"], path=obj["path"],
            aliases=dict(obj.get("aliases", {})),
            functions=[FuncInfo.from_json(f) for f in obj.get("functions", [])],
            classes={k: list(v) for k, v in obj.get("classes", {}).items()},
            raw_findings=[(f[0], int(f[1]), int(f[2]), f[3])
                          for f in obj.get("raw_findings", [])],
            noqa={int(k): list(v) for k, v in obj.get("noqa", {}).items()},
            syntax_error=bool(obj.get("syntax_error", False)),
        )


# ------------------------------------------------------------- extraction
def _collect_aliases(tree: ast.Module, module: str) -> dict[str, str]:
    """Local name -> fully-qualified dotted target, from import statements.

    Function-local imports merge into the module map: a slight
    over-approximation that keeps resolution context-free.
    """
    aliases: dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname:
                    aliases[a.asname] = a.name
                else:
                    top = a.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = module
                for _ in range(node.level):
                    anchor = anchor.rsplit(".", 1)[0] if "." in anchor else ""
                base = f"{anchor}.{base}".strip(".") if base else anchor
            if not base:
                continue
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{base}.{a.name}"
    # `package` intentionally unused beyond level handling above.
    del package
    return aliases


class _FunctionExtractor:
    """Builds one FuncInfo's op tree, posts and load set."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 qualname: str, module: str, path: str,
                 parent: str | None, cls: str | None) -> None:
        self.info = FuncInfo(name=qualname, module=module, path=path,
                             line=fn.lineno, parent=parent, cls=cls)
        loads: set[str] = set()
        self._loads = loads
        self.info.ops = self._body(fn.body, depth=0, lock=None)
        self.info.loads = tuple(sorted(loads))

    # -- statement dispatch
    def _body(self, stmts: list[ast.stmt], depth: int,
              lock: str | None) -> list[JsonNode]:
        out: list[JsonNode] = []
        for s in stmts:
            if isinstance(s, (ast.For, ast.AsyncFor)):
                out.extend(self._exprs([s.iter], depth, lock))
                out.append({"k": "loop", "line": s.lineno,
                            "body": self._body(s.body, depth + 1, lock)})
                out.extend(self._body(s.orelse, depth, lock))
            elif isinstance(s, ast.While):
                out.extend(self._exprs([s.test], depth, lock))
                out.append({"k": "loop", "line": s.lineno,
                            "body": self._body(s.body, depth + 1, lock)})
                out.extend(self._body(s.orelse, depth, lock))
            elif isinstance(s, ast.If):
                out.extend(self._exprs([s.test], depth, lock))
                out.append({"k": "if", "line": s.lineno,
                            "rank": _is_rankish(s.test),
                            "arms": [self._body(s.body, depth, lock),
                                     self._body(s.orelse, depth, lock)]})
            elif isinstance(s, (ast.With, ast.AsyncWith)):
                held = lock
                names: list[str] = []
                for item in s.items:
                    ln = _lock_name(item.context_expr)
                    if ln is not None:
                        held = ln
                        names.append(ln)
                    out.extend(self._exprs([item.context_expr], depth, lock))
                out.append({"k": "with", "line": s.lineno,
                            "lock": held if names or lock else None,
                            "body": self._body(s.body, depth, held)})
            elif isinstance(s, ast.Try):
                out.append({"k": "with", "line": s.lineno, "lock": lock,
                            "body": (self._body(s.body, depth, lock)
                                     + [n for h in s.handlers
                                        for n in self._body(h.body, depth, lock)]
                                     + self._body(s.orelse, depth, lock)
                                     + self._body(s.finalbody, depth, lock))})
            elif isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
                continue  # nested scopes are extracted as their own infos
            else:
                out.extend(self._stmt(s, depth, lock))
        return out

    def _stmt(self, s: ast.stmt, depth: int, lock: str | None) -> list[JsonNode]:
        nodes = self._exprs(list(ast.iter_child_nodes(s)), depth, lock)
        self._classify_posts(s)
        return nodes

    def _exprs(self, roots: list[ast.AST], depth: int,
               lock: str | None) -> list[JsonNode]:
        """Call nodes (source order) from expressions, skipping nested scopes.

        Comprehension bodies stay at the same depth — matching the lexical
        RA006 convention, which counts only ``for``/``while`` statements.
        """
        out: list[JsonNode] = []
        for root in roots:
            for node in ast.walk(root):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                    break  # ast.walk has no pruning; nested defs are rare
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    self._loads.add(node.id)
                if isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if name is not None:
                        out.append({"k": "call", "name": name,
                                    "line": node.lineno, "col": node.col_offset,
                                    "depth": depth, "lock": lock})
        out.sort(key=lambda n: (n["line"], n["col"]))
        return out

    # -- p2p binding classification
    def _classify_posts(self, s: ast.stmt) -> None:
        posts = [n for n in ast.walk(s)
                 if isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
                 and n.func.attr in ("isend", "irecv")]
        if not posts:
            return
        for call in posts:
            recv = dotted_name(call.func.value) or "?"
            op = call.func.attr
            ctx, names = self._post_context(s, call)
            self.info.posts.append(P2PPost(
                op=op, recv=recv, line=call.lineno, col=call.col_offset,
                ctx=ctx, names=names))

    @staticmethod
    def _post_context(s: ast.stmt, call: ast.Call) -> tuple[str, tuple[str, ...]]:
        if isinstance(s, ast.Expr):
            if s.value is call:
                return "discard", ()
            return "escape", ()  # e.g. pending.append(comm.irecv(...))
        if isinstance(s, (ast.Assign, ast.AnnAssign)):
            targets = s.targets if isinstance(s, ast.Assign) else [s.target]
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                return "bound", (targets[0].id,)
        return "escape", ()


def _extract_functions(tree: ast.Module, module: str,
                       path: str) -> tuple[list[FuncInfo], dict[str, list[str]]]:
    functions: list[FuncInfo] = []
    classes: dict[str, list[str]] = {}

    def visit(node: ast.AST, prefix: str, parent_fn: str | None,
              cls: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                functions.append(_FunctionExtractor(
                    child, qual, module, path, parent_fn, cls).info)
                visit(child, f"{qual}.", qual, cls)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}{child.name}"
                classes[qual] = [
                    n.name for n in child.body
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
                visit(child, f"{qual}.", parent_fn, qual)

    visit(tree, "", None, None)
    return functions, classes


def extract_module(path: Path, source: str, tree: ast.Module,
                   raw_findings: list[tuple[str, int, int, str]],
                   noqa: dict[int, set[str]]) -> ModuleSummary:
    """Build the cacheable summary for one parsed module."""
    module = module_name_for(path)
    functions, classes = _extract_functions(tree, module, str(path))
    return ModuleSummary(
        module=module, path=str(path),
        aliases=_collect_aliases(tree, module),
        functions=functions, classes=classes,
        raw_findings=raw_findings,
        noqa={line: sorted(codes) for line, codes in noqa.items()},
    )
