"""Domain-aware static linter driver.

The repo's measurement invariants — balanced TAU timer bracketing, seeded
randomness only through :mod:`repro.util.rng`, wall-clock reads only through
:mod:`repro.util.timebase`, MPI kept out of per-cell loops — are exactly the
"non-intrusive, identical-on-every-rank" properties the paper's methodology
depends on.  This module walks Python sources, runs the RA rule catalogue
(:mod:`repro.analysis.rules`) over each file's AST, and applies
``# ra: noqa[RAxxx]`` line suppressions.

Two entry layers:

* :func:`lint_file` / :func:`lint_paths` — the classic per-file lexical
  pass (suppressions applied), unchanged public contract.
* :func:`make_context` / :func:`lint_tree` / :func:`apply_suppressions` —
  the raw building blocks the whole-program engine
  (:mod:`repro.analysis.engine`) composes so it can track *which* noqa
  lines actually fired (unused-suppression detection) and cache raw
  findings per content hash.

Usage (library)::

    from repro.analysis import lint_paths
    findings = lint_paths(["src"])

or from the shell: ``python -m repro.analysis src/ --format=json``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

#: files in which the determinism escapes of RA002 are *defined* and hence
#: sanctioned (path suffix match, POSIX-style)
RA002_SANCTIONED = ("repro/util/timebase.py", "repro/util/rng.py")

#: reporter modules where RA007's no-print rule does not apply: CLI entry
#: points and human-facing report/loadgen output (path suffix match)
RA007_SANCTIONED = (
    "__main__.py",
    "repro/harness/report.py",
    "repro/serve/loadgen.py",
)

#: the one module allowed to call ``pickle.dumps`` inside ``repro.mpi``:
#: RA008 confines wire-serialization decisions (and their per-frame cost)
#: to the codec
RA008_SANCTIONED = ("repro/mpi/codec.py",)

_NOQA_RE = re.compile(r"#\s*ra:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything a rule needs to inspect one module."""

    path: Path
    source: str
    tree: ast.Module
    #: line -> set of suppressed rule codes ("*" suppresses all)
    noqa: dict[int, set[str]] = field(default_factory=dict)

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    def is_sanctioned_for(self, suffixes: Sequence[str]) -> bool:
        return any(self.posix.endswith(s) for s in suffixes)


def _parse_noqa_comment(text: str) -> set[str] | None:
    m = _NOQA_RE.search(text)
    if not m:
        return None
    codes = m.group("codes")
    if codes is None:
        return {"*"}
    return {c.strip().upper() for c in codes.split(",") if c.strip()}


def _collect_noqa(source: str) -> dict[int, set[str]]:
    """Map line numbers to the rule codes suppressed on that line.

    Token-based: only real ``#`` comments count, so a noqa marker quoted
    inside a string literal (test fixtures embed whole modules as strings)
    neither suppresses findings nor registers as an unused suppression.
    Falls back to a line scan when the file does not tokenize (the rules
    themselves already degrade to an RA000 syntax-error finding).
    """
    out: dict[int, set[str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                codes = _parse_noqa_comment(tok.string)
                if codes is not None:
                    out[tok.start[0]] = codes
    except (tokenize.TokenError, SyntaxError, IndentationError):
        out = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            codes = _parse_noqa_comment(text)
            if codes is not None:
                out[lineno] = codes
    return out


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            files.add(p)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {p}")
    return sorted(files)


def make_context(path: str | Path, source: str | None = None) -> FileContext | Finding:
    """Parse one module into a :class:`FileContext`.

    Returns an ``RA000`` :class:`Finding` instead when the file does not
    parse — callers surface it like any other finding.
    """
    path = Path(path)
    if source is None:
        source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding("RA000", str(path), exc.lineno or 1, exc.offset or 0,
                       f"syntax error: {exc.msg}")
    return FileContext(path=path, source=source, tree=tree,
                       noqa=_collect_noqa(source))


def lint_tree(ctx: FileContext, rules: Sequence[str] | None = None) -> list[Finding]:
    """Run the lexical rule catalogue; returns RAW findings (no noqa)."""
    from repro.analysis.rules import RULES

    selected = set(rules) if rules is not None else None
    findings: list[Finding] = []
    for code, rule in RULES.items():
        if selected is not None and code not in selected:
            continue
        findings.extend(rule.check(ctx))
    return findings


def apply_suppressions(
    findings: Iterable[Finding], noqa: dict[int, set[str]],
) -> tuple[list[Finding], set[int]]:
    """Drop findings suppressed by ``# ra: noqa`` lines.

    Returns ``(kept, used_lines)`` where ``used_lines`` is the set of noqa
    line numbers that suppressed at least one finding — the complement is
    the engine's unused-suppression (RA012) input.
    """
    kept: list[Finding] = []
    used: set[int] = set()
    for f in findings:
        codes = noqa.get(f.line)
        if codes is not None and ("*" in codes or f.rule in codes):
            used.add(f.line)
            continue
        kept.append(f)
    return kept, used


def lint_file(path: str | Path, rules: Sequence[str] | None = None) -> list[Finding]:
    """Run the rule catalogue over one file; returns unsuppressed findings."""
    ctx = make_context(path)
    if isinstance(ctx, Finding):
        return [ctx]
    kept, _ = apply_suppressions(lint_tree(ctx, rules), ctx.noqa)
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    return kept


def lint_paths(paths: Iterable[str | Path],
               rules: Sequence[str] | None = None) -> list[Finding]:
    """Lint every Python file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings
