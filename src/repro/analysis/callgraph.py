"""Project-wide symbol table and interprocedural call graph.

Built from the per-module :class:`~repro.analysis.symbols.ModuleSummary`
IR.  Two resolution policies coexist:

* **strict** — a call site resolves only when it names exactly one known
  function (direct module-local call, alias-qualified call, or a
  ``self.method`` whose defining class has a single candidate in the
  hierarchy).  The flow rules use this so ambiguity never manufactures a
  false positive.
* **CHA** — class-hierarchy style: an attribute call ``x.m(...)`` resolves
  to *every* known method named ``m``.  The reachability set used by the
  runtime-vs-static crosscheck uses this, because an over-approximation is
  exactly what "no static blind spots" requires.

Nested ``def``s get an implicit parent→child edge: defining a closure is
treated as (potentially) calling it, which keeps driver patterns like
``run_scmd``'s ``rank_main`` reachable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.analysis.symbols import CallSite, FuncInfo, ModuleSummary


class SymbolTable:
    """Fully-qualified function/class index over a set of module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        #: fq function name -> FuncInfo
        self.functions: dict[str, FuncInfo] = {}
        #: method name -> list of fq function names (CHA index)
        self.method_index: dict[str, list[str]] = defaultdict(list)
        #: fq class name -> list of method names
        self.classes: dict[str, list[str]] = {}
        #: module name -> alias map (local name -> dotted target)
        self.aliases: dict[str, dict[str, str]] = {}
        self.summaries: list[ModuleSummary] = list(summaries)
        for s in self.summaries:
            self.aliases[s.module] = s.aliases
            for qual, methods in s.classes.items():
                self.classes[f"{s.module}.{qual}"] = methods
            for fn in s.functions:
                self.functions[fn.fq] = fn
                self.method_index[fn.name.rsplit(".", 1)[-1]].append(fn.fq)

    def _expand(self, module: str, name: str) -> str:
        """Rewrite a dotted call name through the module's import aliases."""
        head, _, rest = name.partition(".")
        target = self.aliases.get(module, {}).get(head)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target

    def resolve(self, caller: FuncInfo, site: CallSite,
                cha: bool = False) -> list[FuncInfo]:
        """Candidate callees for one call site.

        Strict mode returns at most one candidate; CHA mode may return
        several (every method sharing the trailing name).
        """
        name = site.name
        out: list[FuncInfo] = []

        # self.method() -> method of the enclosing class (or a subclass
        # override; strict mode requires the hierarchy to be unambiguous).
        if name.startswith("self.") and caller.cls is not None:
            meth = name[len("self."):]
            if "." not in meth:
                fq_exact = f"{caller.module}.{caller.cls}.{meth}"
                if fq_exact in self.functions:
                    return [self.functions[fq_exact]]
                if cha:
                    return [self.functions[fq]
                            for fq in self.method_index.get(meth, ())]
                return []

        # Module-local function, including nested defs of the caller.
        if "." not in name:
            for scope in (f"{caller.name}.{name}",
                          f"{caller.cls}.{name}" if caller.cls else None,
                          name):
                if scope is None:
                    continue
                fq = f"{caller.module}.{scope}"
                if fq in self.functions:
                    return [self.functions[fq]]
            expanded = self._expand(caller.module, name)
            if expanded in self.functions:
                return [self.functions[expanded]]
        else:
            expanded = self._expand(caller.module, name)
            if expanded in self.functions:
                return [self.functions[expanded]]
            # Class instantiation resolves to __init__.
            if f"{expanded}.__init__" in self.functions:
                return [self.functions[f"{expanded}.__init__"]]

        if cha:
            meth = name.rsplit(".", 1)[-1]
            out = [self.functions[fq] for fq in self.method_index.get(meth, ())]
        return out


class CallGraph:
    """Edges between fully-qualified functions, with reachability."""

    def __init__(self, table: SymbolTable, cha: bool = False) -> None:
        self.table = table
        self.edges: dict[str, set[str]] = defaultdict(set)
        for fn in table.functions.values():
            if fn.parent is not None:
                parent_fq = f"{fn.module}.{fn.parent}"
                if parent_fq in table.functions:
                    self.edges[parent_fq].add(fn.fq)
            for site in fn.calls():
                for callee in table.resolve(fn, site, cha=cha):
                    self.edges[fn.fq].add(callee.fq)

    def reachable(self, roots: Iterable[str]) -> set[str]:
        seen: set[str] = set()
        stack = [r for r in roots if r in self.table.functions]
        while stack:
            fq = stack.pop()
            if fq in seen:
                continue
            seen.add(fq)
            stack.extend(self.edges.get(fq, ()))
        return seen

    def callees(self, fq: str) -> Iterator[FuncInfo]:
        for c in self.edges.get(fq, ()):
            yield self.table.functions[c]
