"""Flow-aware communication rules over the interprocedural model.

These are the static twins of the PR-4 runtime sanitizers, run on the
symbol table / call graph built by :mod:`repro.analysis.callgraph`:

========  ==================================================================
RA009     static collective-order divergence: a rank-dependent branch whose
          two arms issue different collective sequences (interprocedurally
          expanded) — the static side of the collective-ordering tokens
RA010     unmatched/leaked p2p: an ``irecv`` whose request is discarded, or
          an ``isend``/``irecv`` request bound to a name that is never read
          again — the static side of the finalize-time leak check.  A
          *discarded* ``isend`` is the sanctioned fire-and-forget idiom
          (simulated sends complete at post) and is never flagged.
RA011     blocking MPI call while holding a lock (``with self._lock:``), or
          after queueing a coalesced frame without flushing first — either
          breaks the deadlock detector's liveness argument
RA002*    interprocedural determinism escapes: import-alias expansion
          (``import time as t; t.time()``) and calls into helpers that
          transitively reach a wall-clock/RNG primitive
RA006*    interprocedural MPI-in-hot-loop: a call, inside >= 2 nested
          loops, to a helper that transitively performs MPI
========  ==================================================================

All resolution here is **strict** (single candidate) so ambiguity never
manufactures a finding; the crosscheck's reachability uses CHA instead.
"""

from __future__ import annotations

from repro.analysis.callgraph import SymbolTable
from repro.analysis.lint import RA002_SANCTIONED, Finding
from repro.analysis.rules import _COMM_METHODS, _RA002_CALLS, _RA002_SUFFIXES
from repro.analysis.symbols import CallSite, FuncInfo, JsonNode

#: collective operations — order-sensitive across the whole cohort
COLLECTIVE_ATTRS = frozenset({
    "barrier", "bcast", "gather", "allgather", "scatter", "alltoall",
    "reduce", "allreduce", "scan", "dup",
})
#: comm-receiver operations that can block the calling rank
BLOCKING_ATTRS = frozenset({"send", "recv", "sendrecv", "probe"}) | COLLECTIVE_ATTRS
#: request-wait entry points (any receiver, incl. module functions)
WAIT_TAILS = frozenset({"wait", "waitall", "waitsome", "waitany"})
#: frame-coalescing queue/flush vocabulary (PR-9 transport)
QUEUE_TAILS = frozenset({"queue_frame", "_enqueue_frame", "enqueue_frame"})
FLUSH_TAILS = frozenset({"flush", "flush_frames", "_flush_dest", "flush_dest"})

#: summaries for the engine-only rules (SARIF rule metadata + docs)
ENGINE_RULE_SUMMARIES: dict[str, str] = {
    "RA009": "static collective-order divergence across rank-dependent arms",
    "RA010": "p2p request discarded or bound but never waited",
    "RA011": "blocking MPI call under a held lock or unflushed coalesce window",
    "RA012": "unused '# ra: noqa' suppression",
}

_MAX_DEPTH = 12


def _split(name: str) -> tuple[str, str]:
    recv, _, attr = name.rpartition(".")
    return recv, attr


def _commish(recv: str) -> bool:
    return "comm" in recv.rsplit(".", 1)[-1].lower()


def _is_collective(site: CallSite) -> bool:
    recv, attr = _split(site.name)
    return attr in COLLECTIVE_ATTRS and _commish(recv)


def _is_blocking(site: CallSite) -> bool:
    recv, attr = _split(site.name)
    if attr in BLOCKING_ATTRS and _commish(recv):
        return True
    return attr in WAIT_TAILS


def _is_comm_call(site: CallSite) -> bool:
    recv, attr = _split(site.name)
    return attr in _COMM_METHODS and _commish(recv)


class FlowChecker:
    """One pass of the flow rules over a built symbol table."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self._summary_memo: dict[str, tuple] = {}
        self._may_block_memo: dict[str, bool] = {}
        self._does_comm_memo: dict[str, bool] = {}
        self._taint_memo: dict[str, bool] = {}

    def run(self) -> list[Finding]:
        findings: list[Finding] = []
        for fn in self.table.functions.values():
            findings.extend(self.check_collective_divergence(fn))
            findings.extend(self.check_leaked_p2p(fn))
            findings.extend(self.check_blocking_hazards(fn))
            findings.extend(self.check_determinism_indirect(fn))
            findings.extend(self.check_comm_in_loop_indirect(fn))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    # ------------------------------------------------ RA009: collectives
    def _summary_of(self, fn: FuncInfo, stack: frozenset[str],
                    depth: int) -> tuple:
        """Structural collective summary: tokens, ('loop', sub), ('br', a, b)."""
        if fn.fq in self._summary_memo:
            return self._summary_memo[fn.fq]
        if fn.fq in stack or depth > _MAX_DEPTH:
            return ()
        out = self._summarize_ops(fn, fn.ops, stack | {fn.fq}, depth)
        if fn.fq not in stack:
            self._summary_memo[fn.fq] = out
        return out

    def _summarize_ops(self, fn: FuncInfo, ops: list[JsonNode],
                       stack: frozenset[str], depth: int) -> tuple:
        out: list = []
        for n in ops:
            k = n["k"]
            if k == "call":
                site = CallSite(name=n["name"], line=n["line"], col=n["col"],
                                depth=n["depth"], lock=n.get("lock"))
                if _is_collective(site):
                    out.append(_split(site.name)[1])
                    continue
                for callee in self.table.resolve(fn, site):
                    sub = self._summary_of(callee, stack, depth + 1)
                    out.extend(sub)
            elif k == "if":
                a = self._summarize_ops(fn, n["arms"][0], stack, depth)
                b = self._summarize_ops(fn, n["arms"][1], stack, depth)
                if a != b:
                    out.append(("br", a, b))
                else:
                    out.extend(a)
            elif k == "loop":
                sub = self._summarize_ops(fn, n["body"], stack, depth)
                if sub:
                    out.append(("loop", sub))
            elif k == "with":
                out.extend(self._summarize_ops(fn, n["body"], stack, depth))
        return tuple(out)

    @staticmethod
    def _flatten(summary: tuple) -> list[str]:
        flat: list[str] = []
        for el in summary:
            if isinstance(el, str):
                flat.append(el)
            elif el and el[0] == "loop":
                flat.extend(FlowChecker._flatten(el[1]))
            elif el and el[0] == "br":
                flat.extend(FlowChecker._flatten(el[1]))
                flat.extend(FlowChecker._flatten(el[2]))
        return flat

    def check_collective_divergence(self, fn: FuncInfo) -> list[Finding]:
        findings: list[Finding] = []

        def walk(ops: list[JsonNode]) -> None:
            for n in ops:
                k = n["k"]
                if k == "if":
                    if n.get("rank"):
                        a = self._summarize_ops(fn, n["arms"][0],
                                                frozenset({fn.fq}), 0)
                        b = self._summarize_ops(fn, n["arms"][1],
                                                frozenset({fn.fq}), 0)
                        if a != b:
                            fa, fb = self._flatten(a), self._flatten(b)
                            findings.append(Finding(
                                "RA009", fn.path, n["line"], 0,
                                f"rank-dependent branch in {fn.name!r} issues "
                                f"divergent collective sequences "
                                f"({fa or ['<none>']} vs {fb or ['<none>']}); "
                                "all ranks must meet the same collectives in "
                                "the same order"))
                    for arm in n["arms"]:
                        walk(arm)
                elif k in ("loop", "with"):
                    walk(n["body"])

        walk(fn.ops)
        return findings

    # --------------------------------------------------- RA010: p2p leaks
    def check_leaked_p2p(self, fn: FuncInfo) -> list[Finding]:
        findings: list[Finding] = []
        for post in fn.posts:
            if not _commish(post.recv):
                continue
            if post.ctx == "discard" and post.op == "irecv":
                findings.append(Finding(
                    "RA010", fn.path, post.line, post.col,
                    f"{post.recv}.irecv() request discarded in {fn.name!r}; "
                    "the message is never consumed and leaks at finalize — "
                    "bind the request and wait() it"))
            elif post.ctx == "bound" and post.names:
                if not any(name in fn.loads for name in post.names):
                    findings.append(Finding(
                        "RA010", fn.path, post.line, post.col,
                        f"{post.recv}.{post.op}() request bound to "
                        f"{post.names[0]!r} in {fn.name!r} but never used; "
                        "no path waits on it before function exit"))
        return findings

    # --------------------------------------- RA011: blocking-under-hazard
    def _may_block(self, fn: FuncInfo, stack: frozenset[str]) -> bool:
        if fn.fq in self._may_block_memo:
            return self._may_block_memo[fn.fq]
        if fn.fq in stack:
            return False
        result = False
        for site in fn.calls():
            if _is_blocking(site):
                result = True
                break
            if any(self._may_block(c, stack | {fn.fq})
                   for c in self.table.resolve(fn, site)):
                result = True
                break
        self._may_block_memo[fn.fq] = result
        return result

    def check_blocking_hazards(self, fn: FuncInfo) -> list[Finding]:
        findings: list[Finding] = []
        pending_queue = False
        for site in fn.calls():
            _, attr = _split(site.name)
            blocking = _is_blocking(site)
            # --- lock half
            if site.lock is not None:
                indirect = (not blocking
                            and any(self._may_block(c, frozenset())
                                    for c in self.table.resolve(fn, site)))
                if blocking or indirect:
                    how = (f"{site.name}()" if blocking
                           else f"{site.name}() (which may block)")
                    findings.append(Finding(
                        "RA011", fn.path, site.line, site.col,
                        f"blocking MPI call {how} while holding "
                        f"{site.lock!r} in {fn.name!r}; the deadlock "
                        "detector's liveness argument assumes no rank "
                        "blocks on the wire under a lock"))
            # --- coalescing flush-window half
            if attr in QUEUE_TAILS:
                pending_queue = True
            elif attr in FLUSH_TAILS:
                pending_queue = False
            elif pending_queue and blocking:
                findings.append(Finding(
                    "RA011", fn.path, site.line, site.col,
                    f"blocking call {site.name}() in {fn.name!r} with "
                    "coalesced frames still queued; call flush_frames() "
                    "before any operation that can block "
                    "(flush-before-blocking invariant)"))
                pending_queue = False
        return findings

    # ------------------------------------- RA002*: determinism indirection
    def _expanded(self, fn: FuncInfo, name: str) -> str:
        return self.table._expand(fn.module, name)

    @staticmethod
    def _is_primitive(expanded: str) -> bool:
        return (expanded in _RA002_CALLS
                or any(expanded == s or expanded.endswith("." + s)
                       for s in _RA002_SUFFIXES))

    def _sanctioned(self, fn: FuncInfo) -> bool:
        posix = fn.path.replace("\\", "/")
        return any(posix.endswith(s) for s in RA002_SANCTIONED)

    def _tainted(self, fn: FuncInfo, stack: frozenset[str]) -> bool:
        """Does ``fn`` (non-sanctioned) transitively reach a primitive?"""
        if fn.fq in self._taint_memo:
            return self._taint_memo[fn.fq]
        if fn.fq in stack or self._sanctioned(fn):
            return False
        result = False
        for site in fn.calls():
            if self._is_primitive(self._expanded(fn, site.name)):
                result = True
                break
            if any(self._tainted(c, stack | {fn.fq})
                   for c in self.table.resolve(fn, site)):
                result = True
                break
        self._taint_memo[fn.fq] = result
        return result

    def check_determinism_indirect(self, fn: FuncInfo) -> list[Finding]:
        if self._sanctioned(fn):
            return []
        findings: list[Finding] = []
        for site in fn.calls():
            expanded = self._expanded(fn, site.name)
            if expanded != site.name and self._is_primitive(expanded):
                findings.append(Finding(
                    "RA002", fn.path, site.line, site.col,
                    f"call to {site.name}() resolves to {expanded}() — a "
                    "determinism escape hidden behind an import alias; "
                    "route through repro.util.timebase / repro.util.rng"))
                continue
            if self._is_primitive(expanded):
                continue  # direct hit: the lexical RA002 already owns it
            for callee in self.table.resolve(fn, site):
                if callee.fq != fn.fq and self._tainted(callee, frozenset({fn.fq})):
                    findings.append(Finding(
                        "RA002", fn.path, site.line, site.col,
                        f"{site.name}() reaches a wall-clock/RNG primitive "
                        f"through helper {callee.fq}(); determinism escapes "
                        "cannot be laundered through indirection"))
                    break
        return findings

    # ------------------------------------------ RA006*: comm-in-loop
    def _does_comm(self, fn: FuncInfo, stack: frozenset[str]) -> bool:
        if fn.fq in self._does_comm_memo:
            return self._does_comm_memo[fn.fq]
        if fn.fq in stack:
            return False
        result = False
        for site in fn.calls():
            if _is_comm_call(site):
                result = True
                break
            if any(self._does_comm(c, stack | {fn.fq})
                   for c in self.table.resolve(fn, site)):
                result = True
                break
        self._does_comm_memo[fn.fq] = result
        return result

    def check_comm_in_loop_indirect(self, fn: FuncInfo) -> list[Finding]:
        findings: list[Finding] = []
        for site in fn.calls():
            if site.depth < 2 or _is_comm_call(site):
                continue  # direct hits are the lexical RA006's
            for callee in self.table.resolve(fn, site):
                if self._does_comm(callee, frozenset({fn.fq})):
                    findings.append(Finding(
                        "RA006", fn.path, site.line, site.col,
                        f"{site.name}() inside {site.depth} nested loops "
                        f"performs MPI via {callee.fq}; hoist out and batch "
                        "the exchange"))
                    break
        return findings


def run_flow_rules(table: SymbolTable) -> list[Finding]:
    """All interprocedural findings for one built symbol table."""
    return FlowChecker(table).run()
