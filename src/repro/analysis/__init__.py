"""Correctness tooling: static domain linter + runtime MPI sanitizers.

Two halves (DESIGN.md section 10):

* :mod:`repro.analysis.lint` / :mod:`repro.analysis.rules` — an AST linter
  for the repo's measurement invariants (rules RA001–RA006), runnable as
  ``python -m repro.analysis src/``; suppress individual lines with
  ``# ra: noqa[RAxxx]``.
* :mod:`repro.analysis.sanitize` — MUST-style runtime checkers (collective
  ordering, p2p leak/type hygiene, wait-for-graph deadlock detection,
  ghost-region race detection) enabled with ``sanitize=SanitizerConfig()``
  on :class:`~repro.mpi.runner.ParallelRunner`,
  :func:`~repro.cca.scmd.run_scmd` and
  :class:`~repro.harness.casestudy.CaseStudyConfig`.
"""

from repro.analysis.lint import Finding, iter_python_files, lint_file, lint_paths
from repro.analysis.report import human_report, json_report
from repro.analysis.rules import RULES
from repro.analysis.sanitize import (CollectiveMismatchError, DeadlockError,
                                     GhostGuard, GhostRaceError, LeakError,
                                     Sanitizer, SanitizerConfig,
                                     SanitizerError, SanitizerFinding)

__all__ = [
    "Finding", "iter_python_files", "lint_file", "lint_paths",
    "human_report", "json_report", "RULES",
    "Sanitizer", "SanitizerConfig", "SanitizerError", "SanitizerFinding",
    "DeadlockError", "CollectiveMismatchError", "GhostRaceError",
    "LeakError", "GhostGuard",
]
