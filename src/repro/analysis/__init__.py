"""Correctness tooling: whole-program static analyzer + runtime MPI sanitizers.

Three layers (DESIGN.md sections 10 and 15):

* :mod:`repro.analysis.lint` / :mod:`repro.analysis.rules` — the per-file
  AST pass for the repo's measurement invariants (rules RA001–RA008),
  runnable as ``python -m repro.analysis src/``; suppress individual lines
  with ``# ra: noqa[RAxxx]``.
* :mod:`repro.analysis.engine` with :mod:`~repro.analysis.symbols`,
  :mod:`~repro.analysis.callgraph`, :mod:`~repro.analysis.commcheck` and
  :mod:`~repro.analysis.sarif` — the whole-program engine: project-wide
  symbol table, interprocedural call graph, flow-aware communication
  rules (RA009–RA011, interprocedural RA002/RA006), unused-suppression
  detection (RA012), SARIF 2.1.0 output, committed baseline and a
  content-hash incremental cache.
* :mod:`repro.analysis.sanitize` — MUST-style runtime checkers (collective
  ordering, p2p leak/type hygiene, wait-for-graph deadlock detection,
  ghost-region race detection) enabled with ``sanitize=SanitizerConfig()``
  on :class:`~repro.mpi.runner.ParallelRunner`,
  :func:`~repro.cca.scmd.run_scmd` and
  :class:`~repro.harness.casestudy.CaseStudyConfig`.
"""

from repro.analysis.callgraph import CallGraph, SymbolTable
from repro.analysis.engine import EngineResult, analyze_paths
from repro.analysis.lint import Finding, iter_python_files, lint_file, lint_paths
from repro.analysis.report import human_report, json_report
from repro.analysis.rules import RULES
from repro.analysis.sanitize import (CollectiveMismatchError, DeadlockError,
                                     GhostGuard, GhostRaceError, LeakError,
                                     Sanitizer, SanitizerConfig,
                                     SanitizerError, SanitizerFinding)
from repro.analysis.sarif import render_sarif, to_sarif, validate_sarif

__all__ = [
    "Finding", "iter_python_files", "lint_file", "lint_paths",
    "human_report", "json_report", "RULES",
    "analyze_paths", "EngineResult", "SymbolTable", "CallGraph",
    "to_sarif", "render_sarif", "validate_sarif",
    "Sanitizer", "SanitizerConfig", "SanitizerError", "SanitizerFinding",
    "DeadlockError", "CollectiveMismatchError", "GhostRaceError",
    "LeakError", "GhostGuard",
]
