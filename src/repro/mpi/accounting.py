"""Per-routine accumulation of simulated MPI time.

The paper's Mastermind derives a method's message-passing cost as "the
summation of the times of all the MPI routines" between two queries of the
TAU component.  :class:`MPIAccounting` is that ledger: every simulated MPI
call records its modeled cost under its routine name (``MPI_Isend``,
``MPI_Waitsome``, ...), and :meth:`total_us` gives the summation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class RoutineStats:
    """Cumulative cost and call count for one MPI routine."""

    total_us: float = 0.0
    calls: int = 0


class MPIAccounting:
    """Thread-safe per-routine MPI time ledger for a single rank.

    Each rank owns one instance (ranks are threads, but proxies/TAU on the
    same rank may read while the comm writes, so a lock guards updates).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: dict[str, RoutineStats] = {}
        self._listeners: list = []

    def __getstate__(self) -> dict:
        """Pickle the ledger contents only.

        The lock is process-local and listeners are runtime wiring (the TAU
        component subscribes a bound method); both are dropped so a worker
        process can ship its finished ledger back to the launcher.
        """
        with self._lock:
            return {"stats": {k: (v.total_us, v.calls)
                              for k, v in self._stats.items()}}

    def __setstate__(self, state: dict) -> None:
        self._lock = threading.Lock()
        self._stats = {k: RoutineStats(total_us=t, calls=c)
                       for k, (t, c) in state["stats"].items()}
        self._listeners = []

    def record(self, routine: str, cost_us: float) -> None:
        """Charge ``cost_us`` to ``routine`` (one call)."""
        if cost_us < 0:
            raise ValueError(f"negative MPI cost {cost_us} for {routine}")
        with self._lock:
            st = self._stats.setdefault(routine, RoutineStats())
            st.total_us += cost_us
            st.calls += 1
            listeners = list(self._listeners)
        for fn in listeners:
            fn(routine, cost_us)

    def add_listener(self, fn) -> None:
        """Register ``fn(routine, cost_us)`` called after each charge.

        The TAU component subscribes here so MPI routines appear in its
        profile (Figure 3's MPI_* rows).
        """
        with self._lock:
            self._listeners.append(fn)

    def total_us(self) -> float:
        """Summation of the times of all MPI routines (paper's 'MPI time')."""
        with self._lock:
            return sum(st.total_us for st in self._stats.values())

    def routine_totals(self) -> dict[str, RoutineStats]:
        """Snapshot copy of per-routine stats."""
        with self._lock:
            return {k: RoutineStats(v.total_us, v.calls) for k, v in self._stats.items()}

    def calls(self, routine: str) -> int:
        """Number of recorded calls to ``routine`` (0 if never called)."""
        with self._lock:
            st = self._stats.get(routine)
            return st.calls if st else 0
