"""Pluggable communicator backends for the simulated MPI layer.

The simulator originally hard-wired one execution model: P rank *threads*
sharing a :class:`~repro.mpi.world.SimWorld` inside one process.  That is
the right default — tests want determinism and cheap startup — but it
serializes all rank compute behind the GIL, which caps the scaling study at
a handful of ranks.  This module factors the execution model out behind a
named-backend registry (the ``create_communicator(name, ...)`` pattern of
ChainerMN and friends):

* ``"thread"`` — the classic in-process thread cohort (default);
* ``"mp-shm"`` — rank *processes* exchanging payloads through
  ``multiprocessing.shared_memory`` ring buffers
  (:mod:`repro.mpi.mpshm`), for real-parallel scaling runs;
* ``"mpi4py"`` — a gated adapter that maps the simulator API onto a real
  MPI library when one is installed (:mod:`repro.mpi.mpi4py_backend`).

Every backend launches the same ``fn(comm, *args)`` on every rank and
returns per-rank results plus a *world view*: an object duck-typed like a
finished :class:`SimWorld` (``accounting``, ``obs``, ``resilience``,
``sanitizer``, ``injector``, ``nranks``, ``network``) so accounting,
tracing, sanitizer and fault-plan consumers work unchanged regardless of
where the ranks actually ran.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar

from repro.mpi.network import NetworkModel

#: backend names accepted by :func:`create_backend` (import-cheap constant;
#: the heavyweight modules load lazily on first use)
BACKEND_NAMES = ("thread", "mp-shm", "mpi4py")


@dataclass(frozen=True)
class JobSpec:
    """Everything a backend needs to launch one simulated MPI job.

    This is the constructor signature of the old thread-only
    :class:`~repro.mpi.runner.ParallelRunner`, lifted into a value object
    so any backend can consume it (and a process backend can rebuild
    per-rank state from it on the far side of a fork).
    """

    nranks: int
    network: NetworkModel = field(default_factory=NetworkModel)
    seed: int | None = 0
    timeout_s: float = 120.0
    injector: Any = None
    policy: Any = None
    obs_config: Any = None
    sanitize: Any = None
    collectives: str | None = None


class BackendRun:
    """Outcome of one backend launch: per-rank results + the world view."""

    __slots__ = ("results", "world")

    def __init__(self, results: list[Any], world: Any) -> None:
        self.results = results
        self.world = world


class CommBackend(ABC):
    """One rank-execution strategy.

    Subclasses are stateless launchers: all per-job state lives in the
    :class:`JobSpec` and the world (view) each launch returns.
    """

    #: registry key; subclasses set this
    name: ClassVar[str] = ""

    @abstractmethod
    def launch(self, spec: JobSpec, fn: Callable[..., Any],
               args: tuple, kwargs: dict) -> BackendRun:
        """Run ``fn(comm, *args, **kwargs)`` on every rank of ``spec``."""


class ThreadBackend(CommBackend):
    """P rank threads in one process sharing one :class:`SimWorld`.

    Deterministic, cheap to start, debuggable with one pdb — the default
    and the reference semantics every other backend must reproduce.
    """

    name = "thread"

    def launch(self, spec: JobSpec, fn: Callable[..., Any],
               args: tuple, kwargs: dict) -> BackendRun:
        import threading
        import traceback

        from repro.mpi.comm import SimComm
        from repro.mpi.runner import RankFailure
        from repro.mpi.world import SimWorld

        world = SimWorld(spec.nranks, network=spec.network, seed=spec.seed,
                         timeout_s=spec.timeout_s, injector=spec.injector,
                         policy=spec.policy, obs_config=spec.obs_config,
                         sanitize=spec.sanitize, collectives=spec.collectives)
        results: list[Any] = [None] * spec.nranks
        failures: dict[int, str] = {}
        lock = threading.Lock()

        def target(rank: int) -> None:
            comm = SimComm(world, rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException:  # ra: noqa[RA005] — rank isolation barrier
                with lock:
                    failures[rank] = traceback.format_exc()
                world.abort(f"rank {rank} raised")

        threads = [
            threading.Thread(target=target, args=(r,),
                             name=f"simmpi-rank-{r}", daemon=True)
            for r in range(spec.nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=spec.timeout_s + 10.0)
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            world.abort("join timeout")
            _dump_black_boxes(world, f"join timeout: {alive}")
            raise RankFailure({-1: f"rank threads did not terminate: {alive}"})
        if failures:
            # Drop secondary abort-induced failures when a primary cause exists.
            primary = {
                r: tb for r, tb in failures.items()
                if "simulated MPI job aborted" not in tb
            }
            _dump_black_boxes(world, world.abort_reason or "rank failure")
            raise RankFailure(primary or failures)
        if world.sanitizer is not None:
            # End-of-job hygiene: leaked requests / unconsumed envelopes.
            world.sanitizer.finalize(world)
        return BackendRun(results, world)


def _dump_black_boxes(world: Any, reason: str) -> None:
    """Flush flight recorders on the failure path (no-op when off).

    The dump must happen *before* :class:`RankFailure` unwinds the
    launcher — after that the world (and its recorders) is unreachable.
    """
    from repro.obs.flightrec import dump_flight_recorders

    dump_flight_recorders(getattr(world, "obs", None), reason)


# --------------------------------------------------------------- world view
class SanitizerView:
    """Merged sanitizer findings from per-rank worker sanitizers.

    Read-side compatible with :class:`~repro.analysis.sanitize.Sanitizer`
    (``findings`` / ``findings_by_kind`` / ``config``).
    """

    def __init__(self, config: Any, findings: list) -> None:
        self.config = config
        self.findings = findings

    def findings_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out


class WorldView:
    """Parent-side read handle over a finished multi-process job.

    Process backends cannot hand back their (per-process, shared-memory
    laced) worlds, so they ship each rank's durable state — accounting
    ledger, observability bundle, resilience stats, sanitizer findings,
    injected-fault timeline — through the result pipe and the parent
    assembles this view.  It exposes exactly the attributes post-run
    consumers read off a :class:`SimWorld`; launch-time machinery
    (mailboxes, rendezvous slots, condition variables) is intentionally
    absent.
    """

    def __init__(
        self,
        spec: JobSpec,
        accounting: list,
        obs: list | None,
        resilience: list,
        sanitizer: SanitizerView | None,
        injector: Any = None,
    ) -> None:
        self.nranks = spec.nranks
        self.network = spec.network
        self.collectives = spec.collectives
        self.timeout_s = spec.timeout_s
        self.policy = spec.policy
        self.accounting = accounting
        self.obs = obs
        self.resilience = resilience
        self.sanitizer = sanitizer
        self.injector = injector

    def leftover_envelopes(self, rank: int) -> list:
        """Leftovers were checked worker-side at finalize; a view of a
        finished job has no in-flight envelopes by construction."""
        return []


# ----------------------------------------------------------------- registry
def create_backend(name: str = "thread") -> CommBackend:
    """Instantiate a communicator backend by name.

    Heavy backends import lazily so ``thread``-only users never pay for
    (or require) multiprocessing / mpi4py machinery.
    """
    if name == "thread":
        return ThreadBackend()
    if name == "mp-shm":
        from repro.mpi.mpshm import MpShmBackend

        return MpShmBackend()
    if name == "mpi4py":
        from repro.mpi.mpi4py_backend import Mpi4pyBackend

        return Mpi4pyBackend()
    raise ValueError(
        f"unknown communicator backend {name!r}; expected one of {BACKEND_NAMES}")
