"""The simulated communicator.

:class:`SimComm` exposes an mpi4py-flavoured API (lowercase object methods)
over the thread-backed :class:`~repro.mpi.world.SimWorld`.  Payloads are
copied at send time (MPI value semantics), transferred for real between
rank threads, and every operation charges its modeled network cost to the
rank's :class:`~repro.mpi.accounting.MPIAccounting` ledger under the MPI
routine name — those charges are the per-routine rows of the paper's
Figure 3 profile and the ghost-cell timings of Figure 9.
"""

from __future__ import annotations

import copy
import time as _time
from contextlib import nullcontext
from typing import Any, Callable, ContextManager, Sequence

import numpy as np

from repro.faults.plan import DROP as FAULT_DROP
from repro.faults.plan import DUPLICATE as FAULT_DUPLICATE
from repro.faults.policy import CommFailure
from repro.mpi import collectives as coll
from repro.mpi.message import ANY_SOURCE, ANY_TAG, Envelope, Status
from repro.mpi.network import payload_nbytes
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.world import WORLD_CONTEXT, SimMPIError, SimWorld
from repro.obs.span import CAT_MPI, CAT_MPI_WAIT, Span
from repro.util.timebase import now_us

# Reduction operators accepted by reduce/allreduce/scan, by name.
_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
}


def _copy_payload(obj: Any) -> Any:
    """Value-semantics copy of a message payload."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if obj is None or isinstance(obj, (int, float, complex, str, bytes, bool)):
        return obj
    return copy.deepcopy(obj)


#: MPI routine -> hierarchical algorithm used when ``collectives="hier"``
#: (everything else keeps the rendezvous movement with the tree cost model)
HIER_ALGORITHMS = {
    "MPI_Barrier": "tree",
    "MPI_Bcast": "tree",
    "MPI_Reduce": "tree",
    "MPI_Allreduce": "rdbl",
    "MPI_Gather": "tree",
    "MPI_Allgather": "ring",
}


class SimComm:
    """A communicator bound to one rank of a :class:`SimWorld`.

    Each rank thread constructs (or is handed) its own ``SimComm``; the
    instance is not shared across rank threads.  ``dup()`` derives a child
    communicator with an isolated message context, as AMRMesh does in the
    paper (``MPI_Comm_dup`` appears in Figure 3).
    """

    def __init__(self, world: SimWorld, rank: int, context: str = WORLD_CONTEXT) -> None:
        if not (0 <= rank < world.nranks):
            raise ValueError(f"rank {rank} out of range for nranks={world.nranks}")
        self.world = world
        self.rank = int(rank)
        self.context = context
        self._coll_seq = 0
        self._dup_count = 0
        self._obs = world.obs[self.rank] if world.obs is not None else None
        self._san = world.sanitizer
        # Registry lookups hash the label dict; at thousands of MPI ops per
        # step that shows up, so the hot path resolves each routine's
        # instruments once and reuses the references.
        self._mpi_metrics: dict[str, tuple] = {}
        self._bytes_counter = (
            self._obs.metrics.counter(
                "mpi_bytes_sent_total", "payload bytes posted for send")
            if self._obs is not None else None)

    # ------------------------------------------------------------ basics
    @property
    def size(self) -> int:
        return self.world.nranks

    def Get_rank(self) -> int:  # mpi4py spelling
        return self.rank

    def Get_size(self) -> int:  # mpi4py spelling
        return self.size

    @property
    def accounting(self):
        """This rank's MPI time ledger."""
        return self.world.accounting[self.rank]

    @property
    def rng(self) -> np.random.Generator:
        """This rank's jitter RNG stream."""
        return self.world.rngs[self.rank]

    @property
    def obs(self):
        """This rank's observability state (None when tracing is off)."""
        return self._obs

    def _span_ctx(self, name: str, category: str,
                  **attrs: Any) -> ContextManager[Span | None]:
        """Span around one MPI op, or a no-op when tracing is off.

        MPI spans are never sampled out: a missing send span would orphan
        the cross-rank edge to its receive.
        """
        if self._obs is None:
            return nullcontext(None)
        return self._obs.tracer.span(name, category, **attrs)

    def charge(self, routine: str, cost_us: float) -> None:
        """Record modeled time for ``routine`` on this rank.

        An attached fault injector may add a stall: extra modeled
        microseconds charged to the same routine, making this rank a
        straggler in the ledgers without slowing the run in real time.
        """
        injector = self.world.injector
        if injector is not None:
            cost_us += injector.on_mpi_op(self.rank, routine)
        self.accounting.record(routine, cost_us)
        if self._obs is not None:
            inst = self._mpi_metrics.get(routine)
            if inst is None:
                m = self._obs.metrics
                inst = self._mpi_metrics[routine] = (
                    m.counter("mpi_calls_total", "MPI calls by routine",
                              routine=routine),
                    m.histogram("mpi_cost_us", "modeled MPI cost by routine",
                                routine=routine),
                )
            inst[0].inc()
            inst[1].observe(cost_us)

    # ---------------------------------------------------- point-to-point
    def _post_send(self, obj: Any, dest: int, tag: int,
                   span: Span | None = None) -> int:
        net = self.world.network
        nbytes = payload_nbytes(obj)
        env = Envelope(
            source=self.rank,
            dest=dest,
            tag=tag,
            payload=_copy_payload(obj),
            nbytes=nbytes,
            cost_us=net.p2p_cost(nbytes, self.rng),
        )
        if self._obs is not None:
            # Stamp the sender's span context into the envelope and mark
            # the send span as the source of causal edge ``env.seq`` —
            # the matched receive becomes its sink on another rank.
            tracer = self._obs.tracer
            ctx_span = span if span is not None else tracer.current()
            env.trace_ctx = (self.rank, ctx_span.span_id) if ctx_span else None
            tracer.flow_out(env.seq, span)
            self._bytes_counter.inc(nbytes)
        if self._san is not None:
            self._san.on_send(self.rank, self.context, env)
        injector = self.world.injector
        if injector is not None:
            action = injector.on_send(self.rank, dest, tag)
            if action.kind == FAULT_DROP:
                # Never reaches the mailbox; recoverable drops wait in the
                # retransmission buffer, unrecoverable ones leave a
                # tombstone the receiver's bounded retries will find.
                self.world.stash_dropped(self.context, env, action.recoverable)
                return nbytes
            if action.kind == FAULT_DUPLICATE:
                self.world.deliver(self.context, env)
                # Same send sequence number: a resilient receiver
                # deduplicates; a non-resilient one sees a spurious extra
                # message, exactly like a retransmission race.
                self.world.deliver(self.context, Envelope(
                    source=env.source, dest=env.dest, tag=env.tag,
                    payload=_copy_payload(env.payload), nbytes=env.nbytes,
                    cost_us=env.cost_us, seq=env.seq, trace_ctx=env.trace_ctx,
                ))
                return nbytes
            if action.kind is not None:  # delay
                env.cost_us = env.cost_us * action.delay_factor + action.delay_us
        self.world.deliver(self.context, env)
        return nbytes

    def _mark_retry(self, span: Span | None, t_retry_us: float | None) -> None:
        """Accumulate bounded-retry wall time on the enclosing span.

        The critical-path analyzer splits ``retry_us`` out of an mpi_wait
        span into the retry bucket of its attribution.
        """
        if span is not None and t_retry_us is not None:
            span.attrs["retry_us"] = (
                span.attrs.get("retry_us", 0.0) + (now_us() - t_retry_us))

    def _match_resilient(self, source: int, tag: int,
                         span: Span | None = None) -> Envelope:
        """Blocking match with bounded retry + recovery when a resilience
        policy is attached (plain deadlock-bounded match otherwise).

        Each empty retry round triggers retransmission of matching dropped
        envelopes (charged ``retransmit_cost_us`` apiece under
        ``MPI_Retransmit``); the per-attempt timeout grows exponentially.
        Exhausting the budget raises a typed :class:`CommFailure` only when
        the message is provably lost (a tombstone matches) — a healthy but
        slow peer falls back to the ordinary deadlock timeout.
        """
        world = self.world
        policy = world.policy
        if policy is None or world.injector is None:
            return world.match(self.context, self.rank, source, tag)
        stats = world.resilience[self.rank]
        metrics = self._obs.metrics if self._obs is not None else None
        t_retry: float | None = None
        for attempt in range(policy.max_attempts):
            env = world.match_timeout(self.context, self.rank, source, tag,
                                      policy.attempt_timeout_s(attempt))
            if env is not None:
                self._mark_retry(span, t_retry)
                return env
            stats.retry_rounds += 1
            if t_retry is None:
                t_retry = now_us()
            if metrics is not None:
                metrics.counter("mpi_retry_rounds_total",
                                "bounded receive retry rounds").inc()
            recovered = world.recover_dropped(self.context, self.rank, source, tag)
            if recovered:
                self.charge("MPI_Retransmit", recovered * policy.retransmit_cost_us)
                env = world.try_match(self.context, self.rank, source, tag)
                if env is not None:
                    self._mark_retry(span, t_retry)
                    return env
        self._mark_retry(span, t_retry)
        if world.lost_forever(self.context, self.rank, source, tag):
            stats.failures += 1
            if metrics is not None:
                metrics.counter("mpi_comm_failures_total",
                                "typed communication failures raised").inc()
            raise CommFailure(
                f"rank {self.rank}: no message (source={source}, tag={tag}, "
                f"context={self.context!r}) after {policy.max_attempts} retry "
                "round(s); a matching message was unrecoverably dropped"
            )
        # Healthy but slow: fall back to the deadlock-timeout-bounded wait,
        # still recovering opportunistically — process backends deliver drop
        # records asynchronously, so a recoverable drop can land in the
        # stash after the counted rounds ran dry (on the thread backend the
        # stash is already empty here and recovery never fires).
        deadline = _time.monotonic() + world.timeout_s
        while True:
            env = world.match_timeout(self.context, self.rank, source, tag,
                                      min(0.5, world.timeout_s))
            if env is not None:
                return env
            recovered = world.recover_dropped(self.context, self.rank,
                                              source, tag)
            if recovered:
                self.charge("MPI_Retransmit",
                            recovered * policy.retransmit_cost_us)
            if _time.monotonic() >= deadline:
                raise SimMPIError(
                    f"rank {self.rank} timed out after {world.timeout_s}s "
                    f"waiting for message (source={source}, tag={tag}, "
                    f"context={self.context!r}) — likely deadlock"
                )

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send: copy, deliver, charge injection cost."""
        with self._span_ctx("MPI_Send", CAT_MPI, dest=dest, tag=tag) as sp:
            self._post_send(obj, dest, tag, span=sp)
            self.charge("MPI_Send", self.world.network.min_cost_us)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; complete immediately (payload copied)."""
        with self._span_ctx("MPI_Isend", CAT_MPI, dest=dest, tag=tag) as sp:
            self._post_send(obj, dest, tag, span=sp)
            self.charge("MPI_Isend", self.world.network.min_cost_us)
        return SendRequest(self)

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, status: Status | None = None
    ) -> Any:
        """Blocking receive; charged the message's modeled transfer cost."""
        with self._span_ctx("MPI_Recv", CAT_MPI_WAIT, source=source, tag=tag) as sp:
            env = self._match_resilient(source, tag, span=sp)
            if self._obs is not None:
                self._obs.tracer.flow_in(env.seq, sp)
            self.charge("MPI_Recv", env.cost_us)
            if status is not None:
                status.source, status.tag, status.nbytes = env.source, env.tag, env.nbytes
            return env.payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Post a nonblocking receive (cost charged at completion)."""
        with self._span_ctx("MPI_Irecv", CAT_MPI, source=source, tag=tag):
            self.charge("MPI_Irecv", self.world.network.min_cost_us)
        req = RecvRequest(self, source, tag)
        if self._san is not None:
            # Registered so a request never waited/tested to completion is
            # reported as a leak at finalize.
            self._san.on_post_recv(self.rank, req)
        return req

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               status: Status | None = None) -> bool:
        """Non-blocking probe: is a matching message waiting?

        Does not consume the message; fills ``status`` when one matches.
        """
        env = self.world.try_match(self.context, self.rank, source, tag)
        if env is None:
            return False
        # Probing must not dequeue: put it back at the front of matching
        # order by re-delivering (seq ordering keeps FIFO per source/tag
        # because try_match popped the earliest match).  The pop marked the
        # seq consumed for dedup purposes; undo that or the re-delivered
        # envelope would be discarded as a duplicate.
        with self._span_ctx("MPI_Iprobe", CAT_MPI, source=source, tag=tag):
            self.world.deliver(self.context, env)
            self.world.unmark_consumed(self.context, self.rank, env.seq)
            self.charge("MPI_Iprobe", self.world.network.min_cost_us)
        if status is not None:
            status.source, status.tag, status.nbytes = env.source, env.tag, env.nbytes
        return True

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              status: Status | None = None) -> None:
        """Blocking probe: wait until a matching message is available."""
        with self._span_ctx("MPI_Probe", CAT_MPI_WAIT, source=source, tag=tag) as sp:
            env = self._match_resilient(source, tag, span=sp)
            # No flow_in here: the probe does not consume the message, the
            # eventual receive anchors the causal edge.
            self.world.deliver(self.context, env)
            self.world.unmark_consumed(self.context, self.rank, env.seq)
            self.charge("MPI_Probe", self.world.network.min_cost_us)
        if status is not None:
            status.source, status.tag, status.nbytes = env.source, env.tag, env.nbytes

    def sendrecv(self, obj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive (deadlock-free under the buffered model)."""
        with self._span_ctx("MPI_Sendrecv", CAT_MPI_WAIT, dest=dest) as sp:
            self._post_send(obj, dest, sendtag, span=sp)
            env = self._match_resilient(source, recvtag, span=sp)
            if self._obs is not None:
                self._obs.tracer.flow_in(env.seq, sp)
            self.charge("MPI_Sendrecv", env.cost_us + self.world.network.min_cost_us)
            return env.payload

    # ------------------------------------------------------- collectives
    def _next_coll_seq(self) -> int:
        """Advance the per-communicator collective call counter.

        Consumed by both the rendezvous and the hierarchical paths so the
        (context, seq) identity of the n-th collective is algorithm- and
        backend-independent.
        """
        seq = self._coll_seq
        self._coll_seq += 1
        return seq

    def _use_hier(self, routine: str) -> bool:
        return (self.world.collectives == "hier" and self.size > 1
                and routine in HIER_ALGORITHMS)

    def _hier_collective(self, routine: str, seq: int, movement) -> Any:
        """One tree-structured collective: sanitizer token exchange, the
        algorithm's data movement, and the shared flow event.

        ``movement(world, ctx, base_tag)`` performs the transfer;
        each collective owns the 64-tag block ``[seq*64, seq*64+63)`` of
        the reserved transport context (data movement uses the low tags,
        the token exchange tag 48), so stages never collide.
        """
        world = self.world
        ctx = coll.coll_context(self.context)
        base = seq << 6
        with self._span_ctx(routine, CAT_MPI_WAIT, coll_seq=seq) as sp:
            san = self._san
            if san is not None and san.config.collective_order:
                token = san.collective_token(self.rank, self.context, seq,
                                             routine)
                tokens = coll.tree_allgather(world, ctx, self.rank,
                                             self.size, base + 48, token)
                san.collective_check(self.rank, self.context, seq, tokens)
            out = movement(world, ctx, base)
            if self._obs is not None:
                self._obs.tracer.flow_collective(f"c:{self.context}:{seq}", sp)
        return out

    def _exchange(self, value: Any, routine: str | None = None) -> list[Any]:
        seq = self._next_coll_seq()
        routine = routine or "MPI_Exchange"
        san = self._san
        check_order = san is not None and san.config.collective_order
        if check_order:
            # Piggyback (routine, op index, rolling op-sequence hash) so
            # every rank can verify all P ranks issued the same collective.
            value = (san.collective_token(self.rank, self.context, seq,
                                          routine), value)
        with self._span_ctx(routine, CAT_MPI_WAIT, coll_seq=seq) as sp:
            if self.world.policy is not None:
                vals = self.world.exchange_resilient(
                    self.context, seq, self.rank, value, self.world.policy,
                    routine=routine)
            else:
                vals = self.world.exchange(self.context, seq, self.rank,
                                           value, routine=routine)
            if check_order:
                san.collective_check(self.rank, self.context, seq,
                                     [v[0] for v in vals])
                vals = [v[1] for v in vals]
            if self._obs is not None:
                # All participants share one flow id; the analyzer draws
                # edges from the last arriver (who unblocked the slot) to
                # every other rank.
                self._obs.tracer.flow_collective(f"c:{self.context}:{seq}", sp)
        return vals

    def _charge_collective(self, routine: str, nbytes: int,
                           algo: str = "tree") -> None:
        """Charge one collective's modeled cost under its routine name.

        The formula follows the selected algorithm family: the default
        (``collectives=None``) keeps the legacy generic log-tree model
        bit-for-bit; ``"flat"`` charges the rendezvous its honest
        linear-in-P cost; ``"hier"`` charges the specific algorithm
        (binomial/recursive-doubling trees, or the ring for allgather).
        Exactly one jitter draw is consumed per collective in every mode,
        so per-rank RNG streams stay aligned across algorithm choices.
        """
        net = self.world.network
        mode = self.world.collectives
        if mode is None or self.size <= 1:
            cost = net.collective_cost(nbytes, self.size, self.rng)
        elif mode == "flat":
            cost = net.flat_collective_cost(nbytes, self.size, self.rng)
        elif algo == "ring":
            cost = net.ring_collective_cost(nbytes, self.size, self.rng)
        else:
            cost = net.tree_collective_cost(nbytes, self.size, self.rng)
        self.charge(routine, cost)

    def barrier(self) -> None:
        """Synchronize all ranks."""
        if self._use_hier("MPI_Barrier"):
            seq = self._next_coll_seq()
            self._hier_collective(
                "MPI_Barrier", seq,
                lambda w, ctx, base: coll.tree_allgather(
                    w, ctx, self.rank, self.size, base, None))
        else:
            self._exchange(None, "MPI_Barrier")
        self._charge_collective("MPI_Barrier", 0)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the value."""
        self._check_root(root)
        if self._use_hier("MPI_Bcast"):
            seq = self._next_coll_seq()
            result = self._hier_collective(
                "MPI_Bcast", seq,
                lambda w, ctx, base: coll.binomial_bcast(
                    w, ctx, self.rank, self.size, base,
                    obj if self.rank == root else None, root))
            self._charge_collective("MPI_Bcast", payload_nbytes(result))
            return result if self.rank != root else obj
        vals = self._exchange(_copy_payload(obj) if self.rank == root else None,
                              "MPI_Bcast")
        result = vals[root]
        self._charge_collective("MPI_Bcast", payload_nbytes(result))
        return _copy_payload(result) if self.rank != root else obj

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank at ``root`` (None elsewhere)."""
        self._check_root(root)
        if self._use_hier("MPI_Gather"):
            seq = self._next_coll_seq()
            acc = self._hier_collective(
                "MPI_Gather", seq,
                lambda w, ctx, base: coll.binomial_gather(
                    w, ctx, self.rank, self.size, base, obj, root))
            self._charge_collective("MPI_Gather", payload_nbytes(obj))
            return ([acc[r] for r in range(self.size)]
                    if self.rank == root else None)
        vals = self._exchange(_copy_payload(obj), "MPI_Gather")
        self._charge_collective("MPI_Gather", payload_nbytes(obj))
        return vals if self.rank == root else None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one value per rank, everywhere."""
        if self._use_hier("MPI_Allgather"):
            seq = self._next_coll_seq()
            vals = self._hier_collective(
                "MPI_Allgather", seq,
                lambda w, ctx, base: coll.ring_allgather(
                    w, ctx, self.rank, self.size, base, obj))
            self._charge_collective("MPI_Allgather", payload_nbytes(obj),
                                    algo="ring")
            return vals
        vals = self._exchange(_copy_payload(obj), "MPI_Allgather")
        self._charge_collective("MPI_Allgather", payload_nbytes(obj))
        return vals

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter a length-P sequence from ``root``; each rank gets one item."""
        self._check_root(root)
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter at root needs a length-{self.size} sequence")
            vals = self._exchange([_copy_payload(o) for o in objs], "MPI_Scatter")
        else:
            vals = self._exchange(None, "MPI_Scatter")
        items = vals[root]
        self._charge_collective("MPI_Scatter", payload_nbytes(items[self.rank]))
        return items[self.rank]

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Each rank sends item j to rank j; returns the column addressed to it."""
        if len(objs) != self.size:
            raise ValueError(f"alltoall needs a length-{self.size} sequence")
        vals = self._exchange([_copy_payload(o) for o in objs], "MPI_Alltoall")
        self._charge_collective("MPI_Alltoall", sum(payload_nbytes(o) for o in objs))
        return [vals[src][self.rank] for src in range(self.size)]

    def _reduce_values(self, vals: list[Any], op: str | Callable[[Any, Any], Any]) -> Any:
        fn = _OPS[op] if isinstance(op, str) else op
        acc = vals[0]
        for v in vals[1:]:
            acc = fn(acc, v)
        return acc

    def reduce(self, obj: Any, op: str | Callable[[Any, Any], Any] = "sum",
               root: int = 0) -> Any | None:
        """Reduce to ``root`` (None elsewhere)."""
        self._check_root(root)
        if self._use_hier("MPI_Reduce"):
            seq = self._next_coll_seq()
            acc = self._hier_collective(
                "MPI_Reduce", seq,
                lambda w, ctx, base: coll.binomial_gather(
                    w, ctx, self.rank, self.size, base, obj, root))
            self._charge_collective("MPI_Reduce", payload_nbytes(obj))
            if self.rank != root:
                return None
            # Combine in rank order: identical floating-point association
            # to the rendezvous path, so results match bit-for-bit.
            return self._reduce_values([acc[r] for r in range(self.size)], op)
        vals = self._exchange(_copy_payload(obj), "MPI_Reduce")
        self._charge_collective("MPI_Reduce", payload_nbytes(obj))
        return self._reduce_values(vals, op) if self.rank == root else None

    def allreduce(self, obj: Any, op: str | Callable[[Any, Any], Any] = "sum") -> Any:
        """Reduce across all ranks; every rank returns the result."""
        if self._use_hier("MPI_Allreduce"):
            seq = self._next_coll_seq()
            vals = self._hier_collective(
                "MPI_Allreduce", seq,
                lambda w, ctx, base: coll.recursive_doubling_allgather(
                    w, ctx, self.rank, self.size, base, obj))
            self._charge_collective("MPI_Allreduce", payload_nbytes(obj))
            return self._reduce_values(vals, op)
        vals = self._exchange(_copy_payload(obj), "MPI_Allreduce")
        self._charge_collective("MPI_Allreduce", payload_nbytes(obj))
        return self._reduce_values(vals, op)

    def scan(self, obj: Any, op: str | Callable[[Any, Any], Any] = "sum") -> Any:
        """Inclusive prefix reduction over ranks 0..self.rank."""
        vals = self._exchange(_copy_payload(obj), "MPI_Scan")
        self._charge_collective("MPI_Scan", payload_nbytes(obj))
        return self._reduce_values(vals[: self.rank + 1], op)

    # -------------------------------------------------------------- misc
    def dup(self) -> "SimComm":
        """Duplicate the communicator into a fresh message context.

        Collective: all ranks must call it in matching order.
        """
        self._dup_count += 1
        child_context = f"{self.context}/dup{self._dup_count}"
        # Synchronize so no rank races ahead and sends into a context the
        # peer hasn't created; also verifies all ranks derived the same name.
        names = self._exchange(child_context, "MPI_Comm_dup")
        if any(n != child_context for n in names):
            raise SimMPIError(f"inconsistent dup order across ranks: {names}")
        self._charge_collective("MPI_Comm_dup", 0)
        return SimComm(self.world, self.rank, child_context)

    def _check_root(self, root: int) -> None:
        if not (0 <= root < self.size):
            raise ValueError(f"root {root} out of range for size {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimComm(rank={self.rank}/{self.size}, context={self.context!r})"
