"""Message envelopes, wildcards and receive status for the MPI simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

ANY_SOURCE: int = -1
ANY_TAG: int = -1

_seqno = itertools.count()


@dataclass
class Envelope:
    """An in-flight message.

    ``cost_us`` is the network-model transfer time sampled at send time;
    the receiver charges it when the message is matched (a blocking receive
    pays for the transfer, as in a real rendezvous).  ``seq`` preserves
    per-(source, tag) FIFO matching order, the MPI non-overtaking rule.

    ``trace_ctx`` carries the sender's span context ``(rank, span_id)``
    when tracing is on: it is what turns a matched send/recv pair into a
    causal cross-rank edge in the merged span DAG (the flow id is the
    globally unique ``seq``, shared by retransmissions and injected
    duplicates of the same logical message).
    """

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    cost_us: float
    seq: int = field(default_factory=lambda: next(_seqno))
    trace_ctx: tuple[int, int] | None = None

    def matches(self, source: int, tag: int) -> bool:
        """Does this envelope match a receive posted for (source, tag)?"""
        return (source in (ANY_SOURCE, self.source)) and (tag in (ANY_TAG, self.tag))


@dataclass
class Status:
    """Receive status (mpi4py-style).

    Filled in by ``recv``/``Request.wait`` when the caller passes one.
    """

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self) -> int:
        return self.nbytes
