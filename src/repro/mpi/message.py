"""Message envelopes, wildcards and receive status for the MPI simulator."""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any

import numpy as np

ANY_SOURCE: int = -1
ANY_TAG: int = -1

#: Sequence numbers must be unique across every rank of a job: they key
#: receiver-side duplicate suppression and the cross-rank flow edges of the
#: span tracer.  With thread-backed ranks one process-wide counter suffices;
#: with process-backed ranks (the ``mp-shm`` backend) each rank process
#: inherits a *copy* of this module at fork/spawn, so the counter would be
#: silently duplicated and ranks would collide.  :func:`rebase_seqno` moves
#: a worker process onto a disjoint per-rank range before any send happens.
_SEQ_RANK_SHIFT = 44

_seqno = itertools.count()


def rebase_seqno(rank: int) -> None:
    """Re-base this process's send-sequence counter onto ``rank``'s range.

    Called once at worker startup by process-backed communicator backends;
    rank r draws from ``[(r+1) << 44, ...)``, disjoint from every other
    rank and from the parent process's unshifted range.
    """
    global _seqno
    if rank < 0:
        raise ValueError(f"rank must be non-negative, got {rank}")
    _seqno = itertools.count((rank + 1) << _SEQ_RANK_SHIFT)


def copy_payload(obj: Any) -> Any:
    """Value-semantics copy of a message payload (MPI buffered-send copy).

    Module-scope imports on purpose: this runs once per transport hop on
    the collective fast path, where a per-call ``import`` is measurable.
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if obj is None or isinstance(obj, (int, float, complex, str, bytes, bool)):
        return obj
    return copy.deepcopy(obj)


@dataclass
class Envelope:
    """An in-flight message.

    ``cost_us`` is the network-model transfer time sampled at send time;
    the receiver charges it when the message is matched (a blocking receive
    pays for the transfer, as in a real rendezvous).  ``seq`` preserves
    per-(source, tag) FIFO matching order, the MPI non-overtaking rule.

    ``trace_ctx`` carries the sender's span context ``(rank, span_id)``
    when tracing is on: it is what turns a matched send/recv pair into a
    causal cross-rank edge in the merged span DAG (the flow id is the
    globally unique ``seq``, shared by retransmissions and injected
    duplicates of the same logical message).
    """

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    cost_us: float
    seq: int = field(default_factory=lambda: next(_seqno))
    trace_ctx: tuple[int, int] | None = None

    def matches(self, source: int, tag: int) -> bool:
        """Does this envelope match a receive posted for (source, tag)?"""
        return (source in (ANY_SOURCE, self.source)) and (tag in (ANY_TAG, self.tag))


@dataclass
class Status:
    """Receive status (mpi4py-style).

    Filled in by ``recv``/``Request.wait`` when the caller passes one.
    """

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self) -> int:
        return self.nbytes
