"""Wire codec for the simulated-MPI transport (DESIGN.md §14).

One module owns every serialization decision on the communication hot
path; RA008 keeps ad-hoc ``pickle.dumps`` calls from creeping back into
the rest of :mod:`repro.mpi`.  Three frame families share a fixed
struct-packed header:

* ``F_NDARRAY`` — the fast path: all envelope fields live in the packed
  header, the dtype travels as its ``dtype.str`` (or pickled, for
  structured/user dtypes), the shape as raw ``int64`` dims, and the
  array body is referenced as a **memoryview** of the (contiguous)
  source buffer — :func:`encode` never calls ``tobytes()``, the ring
  writes the view directly, and :func:`decode` wraps the received
  buffer with ``np.frombuffer`` without copying when the buffer is
  writable (the receiver owns each frame exclusively).
* ``F_PICKLE`` — the fallback for rich payloads (dicts, dataclasses,
  object arrays): header + pickled payload.  Envelope fields still ride
  in the header, so even the fallback pickles only the payload, not the
  whole envelope.
* ``F_BATCH`` — a coalesced multi-frame write: one batch header, then N
  length-prefixed sub-frames, each itself a complete encoded frame.
  Sub-frames keep their envelope sequence numbers, so non-overtaking
  order, dedup and the ledgers are exactly as exact as per-frame sends.

A one-byte ``F_STOP`` marker (:data:`STOP_FRAME`) ends a receiver loop.

The module also centralizes payload *sizing*: :func:`pickled_size` is
the memoized pickle-length oracle behind
:func:`repro.mpi.network.payload_nbytes` (cache keys are exact — two
payloads share a key only when their pickles provably have equal
length), and :func:`transport_nbytes` is the cheap size used for
zero-cost transport frames that bypass the accounting entirely.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterator, Sequence

import numpy as np

from repro.mpi.message import Envelope

_PROTO = pickle.HIGHEST_PROTOCOL

# ------------------------------------------------------------ frame kinds
F_PICKLE = 0
F_NDARRAY = 1
F_STOP = 2
F_BATCH = 3

#: one-byte end-of-job marker a worker writes into its own ring
STOP_FRAME = bytes([F_STOP])

_FLAG_RECOVERABLE = 0x01
_FLAG_TRACE = 0x02
_FLAG_DTYPE_PICKLED = 0x04

#: fkind, kind, flags, ndim, ctx_len, dtype_len, source, dest, tag,
#: nbytes, cost_us, seq, trace_rank, trace_span
HEADER = struct.Struct("<BBBBHHiiqqdQiQ")

_BATCH_HEADER = struct.Struct("<BI")  # F_BATCH, sub-frame count
_SUBLEN = struct.Struct("<I")


# ---------------------------------------------------------------- helpers
def seg_nbytes(seg: Any) -> int:
    """Byte length of one wire segment (bytes or byte-cast memoryview)."""
    return seg.nbytes if isinstance(seg, memoryview) else len(seg)


def frame_nbytes(segments: Sequence[Any]) -> int:
    """Total wire length of an encoded frame (sum of its segments)."""
    return sum(seg_nbytes(s) for s in segments)


_DTYPE_CACHE: dict[Any, tuple[bytes, int]] = {}


def _dtype_bytes(dt: np.dtype) -> tuple[bytes, int]:
    """(wire bytes, header flag) for a dtype; simple dtypes travel as
    their ``.str`` descriptor, structured/user dtypes are pickled."""
    try:
        return _DTYPE_CACHE[dt]
    except KeyError:
        pass
    if dt.names is None and np.dtype(dt.str) == dt:
        out = (dt.str.encode("ascii"), 0)
    else:
        out = (pickle.dumps(dt, protocol=_PROTO), _FLAG_DTYPE_PICKLED)
    if len(_DTYPE_CACHE) < 256:
        _DTYPE_CACHE[dt] = out
    return out


# Per-frame micro-caches for the hot path.  A job uses a handful of
# message contexts, dtypes and array ranks, so each of these is a tiny
# dict hit after the first frame; all are capped so adversarial inputs
# degrade to the uncached cost instead of unbounded memory.
_CTX_ENCODE: dict[str, bytes] = {}
_CTX_DECODE: dict[bytes, str] = {}
_DTYPE_DECODE: dict[bytes, np.dtype] = {}
_SHAPE_STRUCTS: dict[int, struct.Struct] = {}


def _ctx_bytes(context: str) -> bytes:
    try:
        return _CTX_ENCODE[context]
    except KeyError:
        b = context.encode("utf-8")
        if len(_CTX_ENCODE) < 256:
            _CTX_ENCODE[context] = b
        return b


def _ctx_str(raw: bytes) -> str:
    try:
        return _CTX_DECODE[raw]
    except KeyError:
        s = str(raw, "utf-8")
        if len(_CTX_DECODE) < 256:
            _CTX_DECODE[raw] = s
        return s


def _decode_dtype(raw: bytes) -> np.dtype:
    try:
        return _DTYPE_DECODE[raw]
    except KeyError:
        dt = np.dtype(str(raw, "ascii"))
        if len(_DTYPE_DECODE) < 256:
            _DTYPE_DECODE[raw] = dt
        return dt


def _shape_struct(ndim: int) -> struct.Struct:
    try:
        return _SHAPE_STRUCTS[ndim]
    except KeyError:
        s = struct.Struct(f"<{ndim}q")
        _SHAPE_STRUCTS[ndim] = s
        return s


def _array_body(arr: np.ndarray) -> Any:
    """The raw bytes of a contiguous array, as a view when possible."""
    try:
        return memoryview(arr).cast("B")
    except (BufferError, TypeError, ValueError, NotImplementedError):
        return arr.tobytes()


# ----------------------------------------------------------------- encode
def encode(kind: int, context: str, env: Envelope,
           recoverable: bool = True) -> list[Any]:
    """Encode one transport record as a list of wire segments.

    The concatenation of the returned segments is the frame; callers
    feeding a ring pass them to ``send_segments`` so the array body —
    returned as a memoryview, never copied — is written straight from
    the envelope's payload buffer.  ``kind`` is the transport-level
    record kind (deliver/drop), opaque to the codec.
    """
    flags = _FLAG_RECOVERABLE if recoverable else 0
    tctx = env.trace_ctx
    if tctx is not None:
        flags |= _FLAG_TRACE
        trace_rank, trace_span = tctx
    else:
        trace_rank, trace_span = -1, 0
    ctx_b = _ctx_bytes(context)
    payload = env.payload
    if isinstance(payload, np.ndarray) and not payload.dtype.hasobject:
        arr = (payload if payload.flags.c_contiguous
               else np.ascontiguousarray(payload))
        dtype_b, dflag = _dtype_bytes(arr.dtype)
        header = HEADER.pack(
            F_NDARRAY, kind, flags | dflag, arr.ndim, len(ctx_b),
            len(dtype_b), env.source, env.dest, env.tag, env.nbytes,
            env.cost_us, env.seq, trace_rank, trace_span)
        ndim = arr.ndim
        shape_b = _shape_struct(ndim).pack(*arr.shape) if ndim else b""
        # One joined metadata segment + the body view: ring writes are
        # per-segment, so fewer/larger segments beat five tiny ones.
        return [header + ctx_b + dtype_b + shape_b, _array_body(arr)]
    blob = pickle.dumps(payload, protocol=_PROTO)
    header = HEADER.pack(
        F_PICKLE, kind, flags, 0, len(ctx_b), 0, env.source, env.dest,
        env.tag, env.nbytes, env.cost_us, env.seq, trace_rank, trace_span)
    return [header + ctx_b, blob]


def encode_bytes(kind: int, context: str, env: Envelope,
                 recoverable: bool = True) -> bytes:
    """One-buffer convenience form of :func:`encode` (tests, non-ring
    paths); the hot path keeps the segments separate."""
    return b"".join(encode(kind, context, env, recoverable))


# ----------------------------------------------------------------- decode
def decode(frame: Any) -> tuple[int, str, bool, Envelope] | None:
    """Inverse of :func:`encode`; ``None`` for the stop marker.

    Accepts any bytes-like object.  When the buffer is writable (the
    receiver-owned bytearray a ring hands back), the decoded array
    payload is a zero-copy view into it; read-only buffers are copied so
    receivers always own a mutable payload.
    """
    mv = frame if isinstance(frame, memoryview) else memoryview(frame)
    if mv[0] == F_STOP:
        return None
    (fkind, kind, flags, ndim, ctx_len, dtype_len, source, dest, tag,
     nbytes, cost_us, seq, trace_rank, trace_span) = HEADER.unpack_from(mv, 0)
    off = HEADER.size
    context = _ctx_str(bytes(mv[off:off + ctx_len]))
    off += ctx_len
    payload: Any
    if fkind == F_NDARRAY:
        if flags & _FLAG_DTYPE_PICKLED:
            dt = pickle.loads(mv[off:off + dtype_len])
        else:
            dt = _decode_dtype(bytes(mv[off:off + dtype_len]))
        off += dtype_len
        shape = _shape_struct(ndim).unpack_from(mv, off) if ndim else ()
        off += 8 * ndim
        count = 1
        for d in shape:
            count *= d
        payload = np.frombuffer(mv, dtype=dt, count=count, offset=off)
        if not payload.flags.writeable:
            payload = payload.copy()
        if shape != payload.shape:
            payload = payload.reshape(shape)
    elif fkind == F_PICKLE:
        payload = pickle.loads(mv[off:])
    else:
        raise ValueError(f"unknown frame kind {fkind}")
    env = Envelope(
        source=source, dest=dest, tag=tag, payload=payload, nbytes=nbytes,
        cost_us=cost_us, seq=seq,
        trace_ctx=((trace_rank, trace_span) if flags & _FLAG_TRACE
                   else None))
    return kind, context, bool(flags & _FLAG_RECOVERABLE), env


# ------------------------------------------------------------ batch frames

#: segments at or below this are cheaper to copy into a contiguous chunk
#: than to push through the ring as separate writes
_JOIN_MAX = 1024


def encode_batch(frames: Sequence[Sequence[Any]]) -> list[Any]:
    """Pack several encoded frames into one multi-frame wire write: one
    batch header, then each sub-frame length-prefixed.

    Small segments (headers, prefixes, control payloads) are joined into
    contiguous chunks — a sub-KB memcpy is far cheaper than a separate
    ring write — while memoryview bodies above :data:`_JOIN_MAX` pass
    through untouched, so sizable array payloads stay zero-copy."""
    segs: list[Any] = []
    buf = bytearray(_BATCH_HEADER.pack(F_BATCH, len(frames)))
    for frame in frames:
        buf += _SUBLEN.pack(frame_nbytes(frame))
        for seg in frame:
            if isinstance(seg, memoryview) and seg.nbytes > _JOIN_MAX:
                if buf:
                    segs.append(buf)
                    buf = bytearray()
                segs.append(seg)
            else:
                buf += seg
    if buf:
        segs.append(buf)
    return segs


def iter_batch(frame: Any) -> Iterator[memoryview]:
    """Yield each sub-frame of a batch frame, in send order, as a
    memoryview slice of the batch buffer (no per-sub-frame copies)."""
    mv = frame if isinstance(frame, memoryview) else memoryview(frame)
    (_, count) = _BATCH_HEADER.unpack_from(mv, 0)
    off = _BATCH_HEADER.size
    for _ in range(count):
        (n,) = _SUBLEN.unpack_from(mv, off)
        off += _SUBLEN.size
        yield mv[off:off + n]
        off += n


# ----------------------------------------------------------- payload sizes
_SIZE_CACHE: dict[Any, int] = {}
_SIZE_CACHE_MAX = 4096


def _signature(obj: Any) -> Any:
    """Exact-size cache key for :func:`pickled_size`, or None.

    A key is produced only when pickle's output *length* is a pure
    function of it.  That rules out anything pickle memoizes by object
    identity: two equal-but-distinct strings in one tuple pickle longer
    than the same string object twice, so tuples admit only the
    identity-free scalars (int/float/bool/None), while str/bytes are
    keyed at top level where exactly one occurrence exists.  Size-
    constant classes (float/bool/None) share one key; int and str key by
    value, bytes by length.
    """
    t = obj.__class__
    if t is int:
        return ("i", obj)
    if t is float:
        return "f"
    if t is bool:
        return "b"
    if obj is None:
        return "n"
    if t is str:
        return ("s", obj)
    if t is bytes:
        return ("y", len(obj))
    if t is tuple:
        parts: list[Any] = ["t"]
        for e in obj:
            et = e.__class__
            if et is int:
                parts.append(("i", e))
            elif et is float:
                parts.append("f")
            elif et is bool:
                parts.append("b")
            elif e is None:
                parts.append("n")
            else:
                return None
        return tuple(parts)
    return None


def pickled_size(obj: Any) -> int:
    """``len(pickle.dumps(obj))`` with an exact memo for hot signatures.

    Repeated small control payloads — ``(rank, i)`` tuples, step
    counters, tags — dominate the sizing path; unsignable payloads fall
    through to a full pickle every time, so the cache can never change a
    modeled byte count.
    """
    sig = _signature(obj)
    if sig is None:
        return len(pickle.dumps(obj, protocol=_PROTO))
    try:
        return _SIZE_CACHE[sig]
    except KeyError:
        n = len(pickle.dumps(obj, protocol=_PROTO))
        if len(_SIZE_CACHE) >= _SIZE_CACHE_MAX:
            _SIZE_CACHE.clear()
        _SIZE_CACHE[sig] = n
        return n


def transport_nbytes(obj: Any) -> int:
    """Cheap informational size for zero-cost transport envelopes.

    Transport frames (collective tree hops, rendezvous emulation,
    sanitizer tokens) bypass accounting, fault injection and the
    sanitizers; their ``nbytes`` is never charged or compared, so an
    exact pickled size would be pure overhead — gather payloads grow to
    whole per-rank dicts.  Buffers report their real size, rich objects
    a flat 0.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    return 0
