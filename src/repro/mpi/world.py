"""Shared state backing one simulated MPI job.

A :class:`SimWorld` holds, for a job of P ranks:

* per-rank mailboxes (point-to-point message queues) with condition
  variables for blocking receives,
* a slot table implementing the collective exchange primitive on which all
  collectives (barrier/bcast/reduce/allgather/...) are built,
* per-rank :class:`~repro.mpi.accounting.MPIAccounting` ledgers and jitter
  RNG streams,
* an abort flag so that when one rank fails, ranks blocked in communication
  wake up and raise instead of deadlocking.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.mpi.accounting import MPIAccounting
from repro.mpi.message import Envelope
from repro.mpi.network import NetworkModel
from repro.util.rng import spawn_rngs
from repro.util.validation import check_positive

WORLD_CONTEXT = "world"


class SimMPIError(RuntimeError):
    """Raised on simulator-level failures (deadlock timeout, abort)."""


class _CollectiveSlot:
    """Rendezvous slot for one collective call instance."""

    __slots__ = ("values", "deposited", "readers", "ready")

    def __init__(self) -> None:
        self.values: dict[int, Any] = {}
        self.deposited = 0
        self.readers = 0
        self.ready = False


class SimWorld:
    """All cross-rank shared state for one simulated job."""

    def __init__(
        self,
        nranks: int,
        network: NetworkModel | None = None,
        seed: int | None = 0,
        timeout_s: float = 120.0,
    ) -> None:
        check_positive("nranks", nranks)
        check_positive("timeout_s", timeout_s)
        self.nranks = int(nranks)
        self.network = network or NetworkModel()
        self.timeout_s = float(timeout_s)
        self.rngs = spawn_rngs(seed, self.nranks)
        self.accounting = [MPIAccounting() for _ in range(self.nranks)]

        # Point-to-point: mailbox per (context, dest rank); one condition
        # per dest rank shared by all contexts.
        self._mail_conds = [threading.Condition() for _ in range(self.nranks)]
        self._mailboxes: dict[tuple[str, int], list[Envelope]] = {}

        # Collectives: one lock/condition for the whole slot table (P is
        # small; contention is negligible).
        self._coll_cond = threading.Condition()
        self._coll_slots: dict[tuple[str, int], _CollectiveSlot] = {}

        self._aborted = False
        self._abort_reason: str | None = None

    # ------------------------------------------------------------- abort
    def abort(self, reason: str) -> None:
        """Mark the job failed and wake every blocked rank."""
        self._aborted = True
        self._abort_reason = reason
        for cond in self._mail_conds:
            with cond:
                cond.notify_all()
        with self._coll_cond:
            self._coll_cond.notify_all()

    def _check_abort(self) -> None:
        if self._aborted:
            raise SimMPIError(f"simulated MPI job aborted: {self._abort_reason}")

    @property
    def aborted(self) -> bool:
        return self._aborted

    # ----------------------------------------------------- point-to-point
    def deliver(self, context: str, env: Envelope) -> None:
        """Place an envelope in the destination's mailbox and wake it."""
        if not (0 <= env.dest < self.nranks):
            raise ValueError(f"invalid destination rank {env.dest} (nranks={self.nranks})")
        cond = self._mail_conds[env.dest]
        with cond:
            self._mailboxes.setdefault((context, env.dest), []).append(env)
            cond.notify_all()

    def try_match(self, context: str, rank: int, source: int, tag: int) -> Envelope | None:
        """Non-blocking: pop the first mailbox envelope matching (source, tag)."""
        cond = self._mail_conds[rank]
        with cond:
            return self._pop_locked(context, rank, source, tag)

    def match(self, context: str, rank: int, source: int, tag: int) -> Envelope:
        """Blocking receive match with deadlock timeout."""
        cond = self._mail_conds[rank]
        deadline = time.monotonic() + self.timeout_s
        with cond:
            while True:
                self._check_abort()
                env = self._pop_locked(context, rank, source, tag)
                if env is not None:
                    return env
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SimMPIError(
                        f"rank {rank} timed out after {self.timeout_s}s waiting for "
                        f"message (source={source}, tag={tag}, context={context!r}) — "
                        "likely deadlock"
                    )
                cond.wait(min(remaining, 0.5))

    def _pop_locked(self, context: str, rank: int, source: int, tag: int) -> Envelope | None:
        box = self._mailboxes.get((context, rank))
        if not box:
            return None
        # Match by lowest send sequence number, not list position: probes
        # may re-deliver envelopes out of order, and MPI's non-overtaking
        # rule is defined on send order.
        best_i = -1
        for i, env in enumerate(box):
            if env.matches(source, tag) and (best_i < 0 or env.seq < box[best_i].seq):
                best_i = i
        return box.pop(best_i) if best_i >= 0 else None

    def mailbox_cond(self, rank: int) -> threading.Condition:
        """Condition variable guarding ``rank``'s mailbox (for waitsome)."""
        return self._mail_conds[rank]

    def pending_count(self, context: str, rank: int) -> int:
        """Number of undelivered envelopes waiting for ``rank`` (testing aid)."""
        cond = self._mail_conds[rank]
        with cond:
            return len(self._mailboxes.get((context, rank), []))

    # ---------------------------------------------------------- collective
    def exchange(self, context: str, seq: int, rank: int, value: Any) -> list[Any]:
        """All-to-all rendezvous: every rank deposits, all read all values.

        ``seq`` is the per-communicator collective call counter; because MPI
        requires all ranks to issue collectives in the same order, equal
        ``(context, seq)`` identifies the same logical collective on every
        rank.  Returns values ordered by rank.  The last reader frees the
        slot so the table stays bounded.
        """
        key = (context, seq)
        deadline = time.monotonic() + self.timeout_s
        with self._coll_cond:
            slot = self._coll_slots.get(key)
            if slot is None:
                slot = _CollectiveSlot()
                self._coll_slots[key] = slot
            if rank in slot.values:
                raise SimMPIError(
                    f"rank {rank} deposited twice into collective {key}; "
                    "collectives must be called in the same order on all ranks"
                )
            slot.values[rank] = value
            slot.deposited += 1
            if slot.deposited == self.nranks:
                slot.ready = True
                self._coll_cond.notify_all()
            while not slot.ready:
                self._check_abort()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SimMPIError(
                        f"rank {rank} timed out in collective {key}: only "
                        f"{slot.deposited}/{self.nranks} ranks arrived — likely "
                        "mismatched collective calls"
                    )
                self._coll_cond.wait(min(remaining, 0.5))
            result = [slot.values[r] for r in range(self.nranks)]
            slot.readers += 1
            if slot.readers == self.nranks:
                del self._coll_slots[key]
            return result
