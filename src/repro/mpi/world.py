"""Shared state backing one simulated MPI job.

A :class:`SimWorld` holds, for a job of P ranks:

* per-rank mailboxes (point-to-point message queues) with condition
  variables for blocking receives,
* a slot table implementing the collective exchange primitive on which all
  collectives (barrier/bcast/reduce/allgather/...) are built,
* per-rank :class:`~repro.mpi.accounting.MPIAccounting` ledgers and jitter
  RNG streams,
* an abort flag so that when one rank fails, ranks blocked in communication
  wake up and raise instead of deadlocking,
* optionally, a :class:`~repro.faults.injector.FaultInjector` plus a
  :class:`~repro.faults.policy.ResiliencePolicy`: dropped envelopes land in
  a per-destination retransmission buffer (recoverable) or a tombstone list
  (lost forever), receivers deduplicate injected duplicates by send
  sequence number, and per-rank
  :class:`~repro.faults.policy.ResilienceStats` count recovery activity.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.analysis.sanitize import Sanitizer, SanitizerConfig
from repro.faults.policy import CommFailure, ResiliencePolicy, ResilienceStats
from repro.mpi.accounting import MPIAccounting
from repro.mpi.message import ANY_SOURCE, Envelope
from repro.mpi.network import NetworkModel
from repro.obs.runtime import ObsConfig, build_obs
from repro.util.rng import spawn_rngs
from repro.util.validation import check_positive

WORLD_CONTEXT = "world"


class SimMPIError(RuntimeError):
    """Raised on simulator-level failures (deadlock timeout, abort)."""


class _CollectiveSlot:
    """Rendezvous slot for one collective call instance."""

    __slots__ = ("values", "deposited", "readers", "ready")

    def __init__(self) -> None:
        self.values: dict[int, Any] = {}
        self.deposited = 0
        self.readers = 0
        self.ready = False


class SimWorld:
    """All cross-rank shared state for one simulated job."""

    def __init__(
        self,
        nranks: int,
        network: NetworkModel | None = None,
        seed: int | None = 0,
        timeout_s: float = 120.0,
        injector=None,
        policy: ResiliencePolicy | None = None,
        obs_config: ObsConfig | None = None,
        sanitize: SanitizerConfig | None = None,
        collectives: str | None = None,
    ) -> None:
        check_positive("nranks", nranks)
        check_positive("timeout_s", timeout_s)
        from repro.mpi.collectives import check_algorithm
        self.nranks = int(nranks)
        self.network = network or NetworkModel()
        #: collective-algorithm family: None (legacy rendezvous model),
        #: "flat" (rendezvous, honest linear cost), "hier" (tree algorithms)
        self.collectives = check_algorithm(collectives)
        self.timeout_s = float(timeout_s)
        self.rngs = spawn_rngs(seed, self.nranks)
        self.accounting = [MPIAccounting() for _ in range(self.nranks)]
        # Per-rank observability state (span tracer + metrics registry),
        # or None when tracing is off.
        self.obs = build_obs(self.nranks, obs_config)
        if self.obs is not None:
            # Flight recorders tap the MPI ledger: every modeled charge
            # lands in the rank's black-box ring.  (Listeners are runtime
            # wiring — MPIAccounting drops them on pickle, so mp-shm
            # workers re-wire in their own world constructions.)
            for r, ro in enumerate(self.obs):
                if ro.recorder is not None:
                    self.accounting[r].add_listener(ro.recorder.on_mpi)
        # Runtime correctness checkers (collective ordering, p2p hygiene,
        # deadlock and ghost-race detection), or None when off.
        self.sanitizer = (Sanitizer(self.nranks, sanitize, obs=self.obs)
                          if sanitize is not None else None)

        # Fault injection and recovery (both optional and independent: an
        # injector without a policy reproduces failures un-handled; a
        # policy without an injector is simply never exercised).
        self.injector = injector
        self.policy = policy
        self.resilience = [ResilienceStats() for _ in range(self.nranks)]

        # Point-to-point: mailbox per (context, dest rank); one condition
        # per dest rank shared by all contexts.
        self._mail_conds = [threading.Condition() for _ in range(self.nranks)]
        self._mailboxes: dict[tuple[str, int], list[Envelope]] = {}
        # Retransmission buffers / tombstones for injected drops, and the
        # consumed-seq sets receivers deduplicate against.  All three are
        # keyed like mailboxes and guarded by the destination's condition.
        self._dropped: dict[tuple[str, int], list[Envelope]] = {}
        self._tombstones: dict[tuple[str, int], list[Envelope]] = {}
        self._consumed: dict[tuple[str, int], set[int]] = {}

        # Collectives: one lock/condition for the whole slot table (P is
        # small; contention is negligible).
        self._coll_cond = threading.Condition()
        self._coll_slots: dict[tuple[str, int], _CollectiveSlot] = {}

        self._aborted = False
        self._abort_reason: str | None = None

    # ------------------------------------------------------------- abort
    def abort(self, reason: str) -> None:
        """Mark the job failed and wake every blocked rank."""
        self._aborted = True
        self._abort_reason = reason
        for cond in self._mail_conds:
            with cond:
                cond.notify_all()
        with self._coll_cond:
            self._coll_cond.notify_all()

    def _check_abort(self) -> None:
        if self._aborted:
            raise SimMPIError(f"simulated MPI job aborted: {self._abort_reason}")

    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def abort_reason(self) -> str | None:
        return self._abort_reason

    # ----------------------------------------------------- point-to-point
    def deliver(self, context: str, env: Envelope) -> None:
        """Place an envelope in the destination's mailbox and wake it."""
        if not (0 <= env.dest < self.nranks):
            raise ValueError(f"invalid destination rank {env.dest} (nranks={self.nranks})")
        cond = self._mail_conds[env.dest]
        with cond:
            self._mailboxes.setdefault((context, env.dest), []).append(env)
            if self.sanitizer is not None:
                # A registered wait by the destination is now stale: it must
                # re-check its mailbox before counting as deadlocked.
                self.sanitizer.notify_progress(env.dest)
            cond.notify_all()

    def deliver_batch(self, items: list[tuple[str, Envelope]]) -> None:
        """Deliver several envelopes for one destination rank under a
        single condition acquisition.

        The deposit path for coalesced wire frames (mp-shm backend):
        semantically identical to calling :meth:`deliver` per item —
        mailbox append order equals batch order, and matching is by seq
        anyway — but N frames cost one lock round-trip, one sanitizer
        progress bump and one ``notify_all``.
        """
        if not items:
            return
        dest = items[0][1].dest
        if not (0 <= dest < self.nranks):
            raise ValueError(f"invalid destination rank {dest} (nranks={self.nranks})")
        if any(env.dest != dest for _, env in items):
            raise ValueError("deliver_batch items must share one destination")
        cond = self._mail_conds[dest]
        with cond:
            for context, env in items:
                self._mailboxes.setdefault((context, dest), []).append(env)
            if self.sanitizer is not None:
                self.sanitizer.notify_progress(dest)
            cond.notify_all()

    def try_match(self, context: str, rank: int, source: int, tag: int) -> Envelope | None:
        """Non-blocking: pop the first mailbox envelope matching (source, tag)."""
        cond = self._mail_conds[rank]
        with cond:
            return self._pop_locked(context, rank, source, tag)

    def recv_waits_on(self, rank: int, source: int) -> set[int]:
        """Ranks whose progress could satisfy a receive from ``source``."""
        if source == ANY_SOURCE:
            return set(range(self.nranks)) - {rank}
        return {source}

    def _sanitize_blocked_recv(self, rank: int, source: int, tag: int,
                               context: str, wait_s: float) -> float:
        """Register a blocked receive with the deadlock detector and run a
        detection pass; returns the (possibly shortened) wait timeout."""
        san = self.sanitizer
        if san is None or not san.config.deadlock:
            return wait_s
        san.enter_wait(rank, "MPI_Recv",
                       f"(source={source}, tag={tag}, context={context!r})",
                       self.recv_waits_on(rank, source))
        san.check_deadlock(rank)
        return min(wait_s, san.config.deadlock_poll_s)

    def match(self, context: str, rank: int, source: int, tag: int) -> Envelope:
        """Blocking receive match with deadlock timeout."""
        cond = self._mail_conds[rank]
        deadline = time.monotonic() + self.timeout_s
        try:
            with cond:
                while True:
                    self._check_abort()
                    env = self._pop_locked(context, rank, source, tag)
                    if env is not None:
                        return env
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise SimMPIError(
                            f"rank {rank} timed out after {self.timeout_s}s waiting for "
                            f"message (source={source}, tag={tag}, context={context!r}) — "
                            "likely deadlock"
                        )
                    wait_s = self._sanitize_blocked_recv(
                        rank, source, tag, context, min(remaining, 0.5))
                    cond.wait(wait_s)
        finally:
            if self.sanitizer is not None:
                self.sanitizer.exit_wait(rank)

    def _pop_locked(self, context: str, rank: int, source: int, tag: int) -> Envelope | None:
        box = self._mailboxes.get((context, rank))
        if not box:
            return None
        dedup = (self.policy is not None and self.policy.dedup
                 and self.injector is not None)
        while True:
            # Match by lowest send sequence number, not list position:
            # probes may re-deliver envelopes out of order, and MPI's
            # non-overtaking rule is defined on send order.
            best_i = -1
            for i, env in enumerate(box):
                if env.matches(source, tag) and (best_i < 0 or env.seq < box[best_i].seq):
                    best_i = i
            if best_i < 0:
                return None
            env = box.pop(best_i)
            if dedup:
                consumed = self._consumed.setdefault((context, rank), set())
                if env.seq in consumed:
                    # An injected duplicate of a message already received:
                    # discard and keep looking.
                    self.resilience[rank].deduplicated += 1
                    self.injector.note(rank, "mpi.deduplicated")
                    if self.obs is not None:
                        self.obs[rank].metrics.counter(
                            "mpi_deduplicated_total",
                            "injected duplicates discarded by receivers").inc()
                    continue
                consumed.add(env.seq)
            return env

    def unmark_consumed(self, context: str, rank: int, seq: int) -> None:
        """Forget that ``seq`` was consumed (probe paths re-deliver the
        envelope they popped, which must stay receivable)."""
        cond = self._mail_conds[rank]
        with cond:
            self._consumed.get((context, rank), set()).discard(seq)

    def mailbox_cond(self, rank: int) -> threading.Condition:
        """Condition variable guarding ``rank``'s mailbox (for waitsome)."""
        return self._mail_conds[rank]

    def pending_count(self, context: str, rank: int) -> int:
        """Number of undelivered envelopes waiting for ``rank`` (testing aid)."""
        cond = self._mail_conds[rank]
        with cond:
            return len(self._mailboxes.get((context, rank), []))

    def leftover_envelopes(self, rank: int) -> list[tuple[str, Envelope]]:
        """Every undelivered envelope still addressed to ``rank``, across
        all contexts (sanitizer finalize: unconsumed-message detection)."""
        cond = self._mail_conds[rank]
        out: list[tuple[str, Envelope]] = []
        with cond:
            for (context, dest), box in self._mailboxes.items():
                if dest == rank:
                    out.extend((context, env) for env in box)
        return out

    # ------------------------------------------------- drop/recovery store
    def stash_dropped(self, context: str, env: Envelope, recoverable: bool) -> None:
        """Record an injected drop: recoverable envelopes wait in the
        sender-side retransmission buffer; unrecoverable ones become
        tombstones (evidence of permanent loss for the receiver's bounded
        retry logic)."""
        cond = self._mail_conds[env.dest]
        store = self._dropped if recoverable else self._tombstones
        with cond:
            store.setdefault((context, env.dest), []).append(env)

    def recover_dropped(self, context: str, rank: int, source: int, tag: int) -> int:
        """Retransmit: move every matching buffered drop into the mailbox.

        Called by a receiver whose per-attempt timeout expired; models the
        sender-side retransmission a real resilient transport performs.
        Returns the number of recovered envelopes.
        """
        cond = self._mail_conds[rank]
        with cond:
            buf = self._dropped.get((context, rank))
            if not buf:
                return 0
            matched = [env for env in buf if env.matches(source, tag)]
            if not matched:
                return 0
            self._dropped[(context, rank)] = [e for e in buf if e not in matched]
            self._mailboxes.setdefault((context, rank), []).extend(matched)
            self.resilience[rank].recovered += len(matched)
            if self.injector is not None:
                for _ in matched:
                    self.injector.note(rank, "mpi.recovered")
            if self.obs is not None:
                self.obs[rank].metrics.counter(
                    "mpi_recovered_total",
                    "dropped envelopes recovered by retransmission").inc(len(matched))
            cond.notify_all()
            return len(matched)

    def lost_forever(self, context: str, rank: int, source: int, tag: int) -> bool:
        """Is a matching message known to be unrecoverably lost?"""
        cond = self._mail_conds[rank]
        with cond:
            stones = self._tombstones.get((context, rank), [])
            return any(env.matches(source, tag) for env in stones)

    def match_timeout(self, context: str, rank: int, source: int, tag: int,
                      timeout_s: float) -> Envelope | None:
        """Like :meth:`match`, but give up after ``timeout_s`` (one bounded
        retry round) and return None instead of raising.

        Deadlock verdicts are suspended here: a receive inside a bounded
        retry round may be blocked on a *dropped-but-recoverable* message,
        which the wait-for graph cannot see — the retry machinery (which
        calls this) owns liveness until its rounds are exhausted, after
        which the caller falls back to :meth:`match` and detection resumes.
        """
        cond = self._mail_conds[rank]
        deadline = time.monotonic() + timeout_s
        with cond:
            while True:
                self._check_abort()
                env = self._pop_locked(context, rank, source, tag)
                if env is not None:
                    return env
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                cond.wait(min(remaining, 0.5))

    # ---------------------------------------------------------- collective
    def _sanitize_blocked_collective(self, rank: int, key: tuple[str, int],
                                     slot: "_CollectiveSlot", routine: str,
                                     wait_s: float) -> float:
        """Register a rank blocked in a collective with the deadlock
        detector (waiting on the ranks that have not deposited yet)."""
        san = self.sanitizer
        if san is None or not san.config.deadlock:
            return wait_s
        missing = set(range(self.nranks)) - set(slot.values)
        san.enter_wait(rank, routine,
                       f"(collective #{key[1]}, context={key[0]!r}, "
                       f"waiting on ranks {sorted(missing)})", missing)
        san.check_deadlock(rank)
        return min(wait_s, san.config.deadlock_poll_s)

    def exchange(self, context: str, seq: int, rank: int, value: Any,
                 routine: str = "MPI_Exchange") -> list[Any]:
        """All-to-all rendezvous: every rank deposits, all read all values.

        ``seq`` is the per-communicator collective call counter; because MPI
        requires all ranks to issue collectives in the same order, equal
        ``(context, seq)`` identifies the same logical collective on every
        rank.  Returns values ordered by rank.  The last reader frees the
        slot so the table stays bounded.  ``routine`` is diagnostic only
        (deadlock reports name the blocked operation).
        """
        key = (context, seq)
        deadline = time.monotonic() + self.timeout_s
        try:
            with self._coll_cond:
                slot = self._coll_slots.get(key)
                if slot is None:
                    slot = _CollectiveSlot()
                    self._coll_slots[key] = slot
                if rank in slot.values:
                    raise SimMPIError(
                        f"rank {rank} deposited twice into collective {key}; "
                        "collectives must be called in the same order on all ranks"
                    )
                slot.values[rank] = value
                slot.deposited += 1
                if self.sanitizer is not None:
                    # A deposit can unblock any waiter: registered waits on
                    # this rank are stale until re-checked.
                    self.sanitizer.notify_progress_all()
                if slot.deposited == self.nranks:
                    slot.ready = True
                    self._coll_cond.notify_all()
                while not slot.ready:
                    self._check_abort()
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise SimMPIError(
                            f"rank {rank} timed out in collective {key}: only "
                            f"{slot.deposited}/{self.nranks} ranks arrived — likely "
                            "mismatched collective calls"
                        )
                    wait_s = self._sanitize_blocked_collective(
                        rank, key, slot, routine, min(remaining, 0.5))
                    self._coll_cond.wait(wait_s)
                result = [slot.values[r] for r in range(self.nranks)]
                slot.readers += 1
                if slot.readers == self.nranks:
                    del self._coll_slots[key]
                return result
        finally:
            if self.sanitizer is not None:
                self.sanitizer.exit_wait(rank)

    def exchange_resilient(self, context: str, seq: int, rank: int, value: Any,
                           policy: ResiliencePolicy,
                           routine: str = "MPI_Exchange") -> list[Any]:
        """Bounded-retry variant of :meth:`exchange`.

        Waits in ``policy.max_attempts`` rounds of
        ``policy.collective_timeout_s`` (growing by the backoff factor);
        an incomplete round counts a collective retry, and exhausting the
        budget raises a typed :class:`~repro.faults.policy.CommFailure`
        instead of hanging until the world's deadlock timeout.  The overall
        wait is additionally capped by ``timeout_s`` like the plain path.
        """
        key = (context, seq)
        hard_deadline = time.monotonic() + self.timeout_s
        try:
            with self._coll_cond:
                slot = self._coll_slots.get(key)
                if slot is None:
                    slot = _CollectiveSlot()
                    self._coll_slots[key] = slot
                if rank in slot.values:
                    raise SimMPIError(
                        f"rank {rank} deposited twice into collective {key}; "
                        "collectives must be called in the same order on all ranks"
                    )
                slot.values[rank] = value
                slot.deposited += 1
                if self.sanitizer is not None:
                    self.sanitizer.notify_progress_all()
                if slot.deposited == self.nranks:
                    slot.ready = True
                    self._coll_cond.notify_all()
                attempt = 0
                round_deadline = time.monotonic() + min(
                    policy.collective_timeout_s, self.timeout_s)
                while not slot.ready:
                    self._check_abort()
                    now = time.monotonic()
                    if now >= hard_deadline:
                        raise SimMPIError(
                            f"rank {rank} timed out in collective {key}: only "
                            f"{slot.deposited}/{self.nranks} ranks arrived — likely "
                            "mismatched collective calls"
                        )
                    if now >= round_deadline:
                        attempt += 1
                        self.resilience[rank].retry_rounds += 1
                        if attempt >= policy.max_attempts:
                            self.resilience[rank].failures += 1
                            raise CommFailure(
                                f"rank {rank}: collective {key} incomplete after "
                                f"{attempt} bounded round(s) "
                                f"({slot.deposited}/{self.nranks} ranks arrived)"
                            )
                        self.resilience[rank].collective_retries += 1
                        round_deadline = now + policy.collective_timeout_s * (
                            policy.backoff_factor ** attempt)
                        continue
                    wait_s = self._sanitize_blocked_collective(
                        rank, key, slot, routine,
                        min(round_deadline - now, 0.5))
                    self._coll_cond.wait(wait_s)
                result = [slot.values[r] for r in range(self.nranks)]
                slot.readers += 1
                if slot.readers == self.nranks:
                    del self._coll_slots[key]
                return result
        finally:
            if self.sanitizer is not None:
                self.sanitizer.exit_wait(rank)
