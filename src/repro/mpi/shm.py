"""Shared-memory primitives for the ``mp-shm`` communicator backend.

Three small building blocks, all layered on
:mod:`multiprocessing.shared_memory` so rank *processes* can exchange
bytes without a broker process:

* :class:`ShmFlag` — a one-byte cross-process flag (the job abort signal);
* :class:`ShmRing` — a multi-writer / single-reader byte ring carrying
  length-prefixed frames (one ring per destination rank; any rank writes,
  only the owner drains);
* :class:`ShmWaitTable` — a fixed-slot per-rank wait/progress table the
  cross-process deadlock detector snapshots (the shared-memory analogue of
  the sanitizer's in-process ``_wait``/``_gen`` lists).

The ring uses monotonically increasing u64 head/tail counters (position =
counter mod capacity), the classic SPSC layout generalized to many writers
by serializing them behind one ``multiprocessing.Lock``.  The reader owns
``head``, the lock-holding writer owns ``tail``.  Counter *access* goes
through a second, dedicated lock held only for the (non-blocking) 16-byte
read or 8-byte publish: CPython reads and writes buffer slices with plain
``memcpy``, which tears 8-byte values under cross-process contention —
observed in practice as a reader seeing a half-updated tail and consuming
unpublished bytes.  The frame lock cannot double as that guard because a
writer sleeps holding it while the ring is full, which the reader must be
able to drain out of.  Frames stream: a writer holding the frame lock may
publish a frame larger than the free space and trickle it in as the
reader drains — oversized payloads need no chunking layer, and frames
from one writer are never interleaved with another's.  Blocked sides
wait through a :class:`BackoffController` (spin-then-park with a doubling
park interval) instead of a fixed poll constant, and each controller
exports its effective poll interval for the metrics registry.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory
from typing import Any

_HEAD = 0          # u64: bytes consumed (reader-owned)
_TAIL = 8          # u64: bytes published (writer-owned, lock-held)
_DEPOSITED = 16    # u64: bytes fully processed by the reader (reader-owned)
_HEADER = 24


class RingAborted(RuntimeError):
    """The job abort flag was raised while blocked on a ring."""


class BackoffController:
    """Spin-then-park waiter for ring full/empty conditions.

    Replaces the fixed spin-count/poll-interval constants: the first
    ``spin`` retries yield the GIL only (``sleep(0)``), so the hot
    rendezvous path — peer already mid-write — resolves at memory speed;
    past that the waiter parks, doubling the park interval from
    ``park_min_s`` up to ``park_max_s``, so a long-idle receiver costs
    hundreds of wakeups per second instead of thousands while a briefly
    blocked one still reacts within tens of microseconds.  Any progress
    resets to the spin phase.

    The controller keeps counters and an EWMA of recent park intervals
    so the *effective* poll interval is observable: the mp-shm backend
    exports it per rank through the metrics registry
    (``shm_poll_interval_us``).  State is plain per-process attributes —
    each forked rank mutates its own copy, which is exactly the per-rank
    granularity the export wants.
    """

    __slots__ = ("spin", "park_min_s", "park_max_s", "spins_total",
                 "parks_total", "parked_s_total", "_streak", "_park_s",
                 "_ewma_s")

    def __init__(self, spin: int = 20, park_min_s: float = 20e-6,
                 park_max_s: float = 2e-3) -> None:
        self.spin = int(spin)
        self.park_min_s = float(park_min_s)
        self.park_max_s = float(park_max_s)
        self.spins_total = 0
        self.parks_total = 0
        self.parked_s_total = 0.0
        self._streak = 0
        self._park_s = self.park_min_s
        self._ewma_s = self.park_min_s

    def pause(self) -> None:
        """One blocked retry: yield while spinning, then park and grow."""
        self._streak += 1
        if self._streak <= self.spin:
            self.spins_total += 1
            time.sleep(0.0)
            return
        park = self._park_s
        self.parks_total += 1
        self.parked_s_total += park
        self._ewma_s += 0.125 * (park - self._ewma_s)
        time.sleep(park)
        self._park_s = min(park * 2.0, self.park_max_s)

    def reset(self) -> None:
        """Progress was made: back to the spin phase at the floor."""
        self._streak = 0
        self._park_s = self.park_min_s

    @property
    def poll_interval_us(self) -> float:
        """Effective poll interval (EWMA of recent parks), microseconds;
        the park floor when the controller never left the spin phase."""
        return self._ewma_s * 1e6


def _u64(buf: memoryview, off: int) -> int:
    return struct.unpack_from("<Q", buf, off)[0]


def _put_u64(buf: memoryview, off: int, value: int) -> None:
    struct.pack_into("<Q", buf, off, value)


class ShmFlag:
    """One shared byte; set-once, poll-cheap (the abort signal)."""

    def __init__(self) -> None:
        self._shm = shared_memory.SharedMemory(create=True, size=1)
        self._shm.buf[0] = 0

    def set(self) -> None:
        self._shm.buf[0] = 1

    def is_set(self) -> bool:
        return self._shm.buf[0] != 0

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


class ShmRing:
    """Multi-writer, single-reader shared-memory byte ring.

    Writers call :meth:`send` (serialized by the ring lock); the owning
    rank's receiver thread calls :meth:`recv`.  Frames are ``u64 length +
    payload``; both the prefix and the payload may wrap around the ring
    edge and are copied in (at most) two slices.
    """

    def __init__(self, capacity: int, ctx: Any) -> None:
        if capacity < 1024:
            raise ValueError(f"ring capacity too small: {capacity}")
        self.capacity = int(capacity)
        self._shm = shared_memory.SharedMemory(
            create=True, size=_HEADER + self.capacity)
        buf = self._shm.buf
        _put_u64(buf, _HEAD, 0)
        _put_u64(buf, _TAIL, 0)
        _put_u64(buf, _DEPOSITED, 0)
        self._lock = ctx.Lock()
        self._clock = ctx.Lock()  # counter guard; never held while blocked
        #: adaptive full/empty waiters; forked per process, so each rank
        #: paces (and reports) its own side independently
        self.tx_backoff = BackoffController()
        self.rx_backoff = BackoffController()

    def _counters(self) -> tuple[int, int]:
        with self._clock:
            return _u64(self._shm.buf, _HEAD), _u64(self._shm.buf, _TAIL)

    # ------------------------------------------------------------- writer
    def send(self, payload: bytes, abort: ShmFlag) -> None:
        """Publish one frame; blocks (streaming) while the ring is full."""
        self.send_segments((payload,), abort)

    def send_segments(self, segments: Any, abort: ShmFlag) -> int:
        """Publish one frame gathered from several bytes-like segments.

        A vectored write: one u64 length prefix covering the segment
        total, then each segment streamed in order — the concatenated
        frame is never materialized, so memoryview segments (array
        bodies from :mod:`repro.mpi.codec`) go from the source buffer
        straight into shared memory.  Returns the frame length.
        """
        total = 0
        for seg in segments:
            total += seg.nbytes if isinstance(seg, memoryview) else len(seg)
        with self._lock:
            self._write(struct.pack("<Q", total), abort)
            for seg in segments:
                self._write(seg, abort)
        return total

    def _write(self, data: Any, abort: ShmFlag) -> None:
        buf = self._shm.buf
        mv = memoryview(data)
        back = self.tx_backoff
        while len(mv):
            head, tail = self._counters()
            free = self.capacity - (tail - head)
            if free == 0:
                if abort.is_set():
                    raise RingAborted("job aborted while ring full")
                back.pause()
                continue
            back.reset()
            n = min(len(mv), free)
            pos = tail % self.capacity
            first = min(n, self.capacity - pos)
            buf[_HEADER + pos:_HEADER + pos + first] = mv[:first]
            if n > first:
                buf[_HEADER:_HEADER + n - first] = mv[first:n]
            # Publish after the bytes are in place (tail is ours: the frame
            # lock is held, so re-reading it under the guard is redundant).
            with self._clock:
                _put_u64(buf, _TAIL, tail + n)
            mv = mv[n:]

    # ------------------------------------------------------------- reader
    def recv(self, abort: ShmFlag) -> bytearray:
        """Consume one frame; blocks while the ring is empty.

        Returns a freshly allocated (hence writable, receiver-owned)
        bytearray — the codec's zero-copy decode wraps array payloads
        around it directly.  Raises :class:`RingAborted` when the abort
        flag goes up while waiting (mid-frame reads finish normally: the
        lock-holding writer streams the rest even during abort only if
        it can — so mid-frame we keep honouring the flag too).
        """
        (length,) = struct.unpack("<Q", self._read(8, abort))
        return self._read(length, abort)

    def _read(self, n: int, abort: ShmFlag) -> bytearray:
        buf = self._shm.buf
        out = bytearray(n)
        got = 0
        back = self.rx_backoff
        while got < n:
            head, tail = self._counters()
            avail = tail - head
            if avail == 0:
                if abort.is_set():
                    raise RingAborted("job aborted while ring empty")
                back.pause()
                continue
            back.reset()
            take = min(n - got, avail)
            pos = head % self.capacity
            first = min(take, self.capacity - pos)
            out[got:got + first] = buf[_HEADER + pos:_HEADER + pos + first]
            if take > first:
                out[got + first:got + take] = buf[_HEADER:_HEADER + take - first]
            # Free the space only after the bytes are copied out (head is
            # ours: there is exactly one reader).
            with self._clock:
                _put_u64(buf, _HEAD, head + take)
            got += take
        return out

    def pending(self) -> int:
        """Unconsumed bytes currently in the ring (diagnostics)."""
        head, tail = self._counters()
        return tail - head

    def mark_deposited(self) -> None:
        """Reader-side: everything consumed so far is fully processed.

        The gap between :meth:`recv` returning a frame and the receiver
        finishing with it (depositing it in a mailbox) is invisible to
        ``pending()`` — the bytes have already left the ring.  The reader
        calls this after each frame so :meth:`undeposited` can expose that
        in-the-receiver's-hands state to the deadlock detector.
        """
        with self._clock:
            _put_u64(self._shm.buf, _DEPOSITED, _u64(self._shm.buf, _HEAD))

    def undeposited(self) -> int:
        """Bytes published but not yet fully processed by the reader —
        counts frames still in the ring *and* the frame the reader is
        currently handling."""
        with self._clock:
            return (_u64(self._shm.buf, _TAIL)
                    - _u64(self._shm.buf, _DEPOSITED))

    # ------------------------------------------------------------ cleanup
    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


# ------------------------------------------------------------- wait table
_REC_FMT = "<QBxxxxxxxQQ32s128s"  # gen, active, wait_gen, mask, op, detail
_REC_SIZE = struct.calcsize(_REC_FMT)

#: the wait mask is one u64 bit per rank
WAIT_TABLE_MAX_RANKS = 64


class ShmWaitTable:
    """Per-rank blocked-wait records + progress generations, shared.

    The process-backend sanitizer mirrors ``enter_wait`` / ``exit_wait`` /
    ``notify_progress`` here so any rank's deadlock check can snapshot the
    whole job's wait-for graph.  Wait-on sets are stored as a u64 bitmask,
    which caps cross-process deadlock detection at 64 ranks — exactly the
    backend's target scale.
    """

    def __init__(self, nranks: int, ctx: Any) -> None:
        if not (1 <= nranks <= WAIT_TABLE_MAX_RANKS):
            raise ValueError(
                f"wait table supports 1..{WAIT_TABLE_MAX_RANKS} ranks, "
                f"got {nranks}")
        self.nranks = int(nranks)
        self._shm = shared_memory.SharedMemory(
            create=True, size=_REC_SIZE * self.nranks)
        self._shm.buf[:_REC_SIZE * self.nranks] = bytes(_REC_SIZE * self.nranks)
        self._lock = ctx.Lock()

    def _pack(self, rank: int, gen: int, active: int, wait_gen: int,
              mask: int, op: str, detail: str) -> None:
        struct.pack_into(
            _REC_FMT, self._shm.buf, rank * _REC_SIZE, gen, active, wait_gen,
            mask, op.encode()[:32], detail.encode()[:128])

    def _unpack(self, rank: int) -> tuple[int, int, int, int, str, str]:
        gen, active, wait_gen, mask, op, detail = struct.unpack_from(
            _REC_FMT, self._shm.buf, rank * _REC_SIZE)
        return (gen, active, wait_gen, mask,
                op.rstrip(b"\x00").decode(errors="replace"),
                detail.rstrip(b"\x00").decode(errors="replace"))

    # ------------------------------------------------------------ mutators
    def bump(self, rank: int) -> None:
        """Progress happened for ``rank``: its registered wait is stale."""
        with self._lock:
            gen, active, wait_gen, mask, op, detail = self._unpack(rank)
            self._pack(rank, gen + 1, active, wait_gen, mask, op, detail)

    def bump_all(self) -> None:
        with self._lock:
            for r in range(self.nranks):
                gen, active, wait_gen, mask, op, detail = self._unpack(r)
                self._pack(r, gen + 1, active, wait_gen, mask, op, detail)

    def enter_wait(self, rank: int, op: str, detail: str,
                   waits_on: frozenset[int]) -> None:
        mask = 0
        for peer in waits_on:
            mask |= 1 << peer
        with self._lock:
            gen = self._unpack(rank)[0]
            self._pack(rank, gen, 1, gen, mask, op, detail)

    def exit_wait(self, rank: int) -> None:
        with self._lock:
            gen = self._unpack(rank)[0]
            self._pack(rank, gen, 0, 0, 0, "", "")

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> tuple[list[tuple[str, str, frozenset[int], int] | None],
                                list[int]]:
        """(per-rank (op, detail, waits_on, wait_gen) or None, gens)."""
        waits: list[tuple[str, str, frozenset[int], int] | None] = []
        gens: list[int] = []
        with self._lock:
            for r in range(self.nranks):
                gen, active, wait_gen, mask, op, detail = self._unpack(r)
                gens.append(gen)
                if not active:
                    waits.append(None)
                    continue
                on = frozenset(
                    p for p in range(self.nranks) if mask & (1 << p))
                waits.append((op, detail, on, wait_gen))
        return waits, gens

    # ------------------------------------------------------------ cleanup
    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass
