"""Parametric network cost model for the simulated MPI layer.

Cost of moving ``n`` bytes point-to-point::

    t = (latency_us + n / bandwidth_bytes_per_us) * jitter

where ``jitter`` is a log-normal multiplier modeling fluctuating network
load — the cause of the scatter in the paper's Figure 9 ("the substantial
scatter is caused by fluctuating network loads").  Collectives are charged a
``ceil(log2 P)``-stage tree cost, the standard model for reductions,
barriers and gathers on switched clusters.

Defaults approximate the paper's testbed era (100 Mb/s switched Ethernet):
~50 us latency, ~12.5 bytes/us bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mpi.codec import pickled_size
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth/jitter model, all times in microseconds.

    Parameters
    ----------
    latency_us:
        Per-message fixed cost (one-way).
    bandwidth_bytes_per_us:
        Sustained point-to-point bandwidth.
    jitter_sigma:
        Sigma of the log-normal load multiplier.  ``0`` disables jitter
        (used by the ablation bench to collapse Figure 9's scatter).
    min_cost_us:
        Floor applied to every charge (a zero-byte message still costs
        something).
    """

    latency_us: float = 50.0
    bandwidth_bytes_per_us: float = 12.5
    jitter_sigma: float = 0.25
    min_cost_us: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("latency_us", self.latency_us)
        check_positive("bandwidth_bytes_per_us", self.bandwidth_bytes_per_us)
        check_non_negative("jitter_sigma", self.jitter_sigma)
        check_non_negative("min_cost_us", self.min_cost_us)

    # ------------------------------------------------------------------ #
    def base_p2p_cost(self, nbytes: int) -> float:
        """Deterministic point-to-point cost (no jitter)."""
        check_non_negative("nbytes", nbytes)
        return max(self.min_cost_us, self.latency_us + nbytes / self.bandwidth_bytes_per_us)

    def sample_jitter(self, rng: np.random.Generator) -> float:
        """Draw a load multiplier (>= ~e^{-3 sigma}, mean ~1)."""
        if self.jitter_sigma == 0.0:
            return 1.0
        # Mean-one log-normal: exp(N(-sigma^2/2, sigma)).
        return float(np.exp(rng.normal(-0.5 * self.jitter_sigma**2, self.jitter_sigma)))

    def p2p_cost(self, nbytes: int, rng: np.random.Generator) -> float:
        """Jittered point-to-point transfer cost in microseconds."""
        return self.base_p2p_cost(nbytes) * self.sample_jitter(rng)

    def collective_cost(self, nbytes: int, nranks: int, rng: np.random.Generator) -> float:
        """Jittered tree-based collective cost for ``nranks`` participants."""
        check_positive("nranks", nranks)
        stages = max(1, math.ceil(math.log2(nranks))) if nranks > 1 else 0
        base = stages * self.base_p2p_cost(nbytes)
        return max(self.min_cost_us, base * self.sample_jitter(rng))

    # ------------------------------------------- algorithmic collective models
    def flat_collective_cost(self, nbytes: int, nranks: int,
                             rng: np.random.Generator) -> float:
        """Honest cost of the flat rendezvous: a central coordinator absorbs
        one deposit per peer and re-emits the combined result, serializing
        ``2(P-1)`` transfers on its link — linear in P, the reason flat
        collectives stop scaling past a handful of ranks."""
        check_positive("nranks", nranks)
        if nranks <= 1:
            return self.min_cost_us
        base = 2 * (nranks - 1) * self.base_p2p_cost(nbytes)
        return max(self.min_cost_us, base * self.sample_jitter(rng))

    def tree_collective_cost(self, nbytes: int, nranks: int,
                             rng: np.random.Generator) -> float:
        """Binomial-tree bcast/reduce and recursive-doubling allreduce:
        ``ceil(log2 P)`` stages each moving the full payload."""
        check_positive("nranks", nranks)
        if nranks <= 1:
            return self.min_cost_us
        stages = math.ceil(math.log2(nranks))
        base = stages * self.base_p2p_cost(nbytes)
        return max(self.min_cost_us, base * self.sample_jitter(rng))

    def ring_collective_cost(self, nbytes: int, nranks: int,
                             rng: np.random.Generator) -> float:
        """Ring allgather: ``P-1`` stages each moving one rank's ``1/P``
        share — bandwidth-optimal, latency-bound for small payloads."""
        check_positive("nranks", nranks)
        if nranks <= 1:
            return self.min_cost_us
        base = (nranks - 1) * self.base_p2p_cost(max(1, nbytes // nranks))
        return max(self.min_cost_us, base * self.sample_jitter(rng))


# A fast, low-latency model handy for tests that don't care about timing.
LOOPBACK = NetworkModel(latency_us=1.0, bandwidth_bytes_per_us=1000.0, jitter_sigma=0.0)


def payload_nbytes(obj: object) -> int:
    """Best-effort byte size of a message payload.

    NumPy arrays report their buffer size; bytes-like objects their
    length; everything else is sized via pickling (matching what a real
    MPI layer shipping pickled objects would transmit), delegated to
    :func:`repro.mpi.codec.pickled_size` — module-scope import, and an
    exact memo for repeated message signatures, so the per-send sizing
    cost on the hot path is a dict lookup instead of a serialization.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if obj is None:
        return 0
    return pickled_size(obj)
