"""``mp-shm`` backend: rank processes over shared-memory rings.

The thread backend runs every rank inside one Python process, which means
one GIL: compute-bound cells serialize and the "scaling" study measures
modeled time only.  This backend forks one OS process per rank so compute
really runs in parallel, while keeping the *model* bit-for-bit: each
worker instantiates the same :class:`~repro.mpi.world.SimWorld` (full-size
per-rank RNG streams, ledgers, observability) and executes only its own
rank, so every jitter draw, modeled charge and fault-injection decision
happens in the same per-rank program order as on the thread backend.

Wire protocol
-------------
Each rank owns one :class:`~repro.mpi.shm.ShmRing`; any peer writes frames
into the destination's ring and a per-worker receiver thread drains its
own ring into the local world's mailboxes.  Frames are encoded by
:mod:`repro.mpi.codec` (struct-packed header, zero-copy NumPy bodies,
pickle only for rich payloads; see DESIGN.md §14) and written as gathered
segments — array payloads go from the envelope's buffer straight into
shared memory with no intermediate ``tobytes()`` copy.

Small frames to the same destination **coalesce**: instead of one ring
write (lock, length prefix, counter publish) per envelope, outbound
frames queue per destination and flush as a single multi-frame batch
write when the batch fills — or, crucially, *before this rank blocks*
(any receive, collective wait, or shutdown).  Flush-before-blocking
preserves every liveness property: a rank registered in the deadlock
wait table provably has nothing buffered, and a computing rank cannot be
part of a stuck cycle.  Sub-frames keep their envelope sequence numbers,
so non-overtaking order, receiver dedup, fault plans and the MPI ledger
are exactly as exact as per-frame sends.  A ``stop`` frame (end-of-job
marker a worker writes into its *own* ring after the final barrier)
releases the receiver thread.

Collectives: the rendezvous-slot exchange of the thread world cannot span
processes, so :meth:`ShmWorld.exchange` reuses the tree machinery of
:mod:`repro.mpi.collectives` (binomial gather + broadcast over transport
frames).  Sanitizer tokens piggyback through the exchanged values exactly
as on the thread backend.  The bounded-retry semantics of
``exchange_resilient`` degrade to the plain deadlock-timeout-bounded tree
(documented limitation; p2p bounded retry/recovery is unaffected because
drop/tombstone frames are routed to the destination's local stores).

Failure handling: any rank's exception raises the shared abort flag; every
blocked ring operation and every mailbox wait then raises, workers ship
their tracebacks to the launcher, and the launcher raises
:class:`~repro.mpi.runner.RankFailure` exactly like the thread backend.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable

from repro.analysis.sanitize import Sanitizer, _WaitState
from repro.mpi import codec
from repro.mpi import collectives as coll
from repro.mpi.backend import (BackendRun, CommBackend, JobSpec,
                               SanitizerView, WorldView)
from repro.mpi.message import Envelope, rebase_seqno
from repro.mpi.shm import (WAIT_TABLE_MAX_RANKS, RingAborted, ShmFlag,
                           ShmRing, ShmWaitTable)
from repro.mpi.world import SimMPIError, SimWorld

_KIND_DELIVER = 0
_KIND_DROP_RECOVERABLE = 1
_KIND_DROP_TOMBSTONE = 2

#: default per-rank ring capacity; a frame may exceed it (writers stream),
#: it only bounds how far a sender can run ahead of a slow receiver
DEFAULT_RING_BYTES = 1 << 20

#: frames above this size bypass coalescing: bulk data gains nothing from
#: batching and would hold queued control frames hostage to a full ring
COALESCE_MAX_FRAME = 4096
#: a destination's pending batch flushes beyond either bound
COALESCE_MAX_BYTES = 1 << 15
COALESCE_MAX_FRAMES = 64


class SharedSanitizer(Sanitizer):
    """Sanitizer whose deadlock state lives in a shared wait table.

    Collective-order and p2p checks are per-rank local (each worker only
    issues operations for its own rank); only the wait-for graph needs the
    whole job, so exactly those methods mirror into the
    :class:`~repro.mpi.shm.ShmWaitTable`.
    """

    def __init__(self, nranks: int, config, obs, table: ShmWaitTable | None,
                 rings: list[ShmRing]) -> None:
        super().__init__(nranks, config, obs=obs)
        self._table = table
        self._rings = rings

    def notify_progress(self, rank: int) -> None:
        if self._table is not None:
            self._table.bump(rank)

    def notify_progress_all(self) -> None:
        if self._table is not None:
            self._table.bump_all()

    def enter_wait(self, rank, op, detail, waits_on) -> None:
        if self._table is not None:
            self._table.enter_wait(
                rank, op, detail, frozenset(waits_on) - {rank})

    def exit_wait(self, rank: int) -> None:
        if self._table is not None:
            self._table.exit_wait(rank)

    def _deadlock_snapshot(self):
        if self._table is None:
            return [None] * self.nranks, [0] * self.nranks
        raw_waits, gens = self._table.snapshot()
        waits = [
            None if w is None else _WaitState(
                op=w[0], detail=w[1], waits_on=w[2], gen=w[3])
            for w in raw_waits
        ]
        for r in range(self.nranks):
            if self._rings[r].undeposited():
                # A frame is in flight to r — still in the ring, or drained
                # but not yet deposited by r's receiver thread (which may be
                # blocked on r's mailbox lock, held by the very rank running
                # this check through its detection sleep).  Either way r
                # will make progress, so its registered wait must read as
                # stale.
                gens[r] += 1
        return waits, gens

    def check_deadlock(self, rank: int) -> None:
        """Two-phase deadlock check for the cross-process wait graph.

        Unlike the thread backend — where delivery is synchronous with the
        send, so a registered wait with an unbumped generation really is
        stuck — a process backend has a window between a frame being
        published and the receiver thread depositing it into the mailbox.
        A snapshot taken inside that window would report a phantom cycle,
        so :meth:`_deadlock_snapshot` treats any rank with undeposited ring
        bytes as having made progress.  That accounting matters most for
        the checking rank itself: it holds its own mailbox lock throughout
        (including the sleep below), so its receiver thread cannot deposit
        — or bump a generation — until the check is over.  On top of that,
        when a snapshot implicates this rank, sleep long enough for any
        rank whose mailbox already holds a message to wake from its poll,
        then require a second snapshot to show the identical stuck set
        with unchanged generations before raising.
        """
        if not self.config.deadlock or self._table is None:
            return
        waits, gens = self._deadlock_snapshot()
        stuck = self._stuck_set(waits, gens)
        if rank not in stuck:
            return
        time.sleep(max(0.1, 2.0 * self.config.deadlock_poll_s))
        waits2, gens2 = self._deadlock_snapshot()
        if any(gens2[r] != gens[r] for r in stuck):
            return
        stuck2 = self._stuck_set(waits2, gens2)
        if rank not in stuck2:
            return
        self._raise_deadlock(rank, waits2, stuck2)


class ShmWorld(SimWorld):
    """A :class:`SimWorld` whose remote ranks live in other processes.

    Exactly five behaviours change relative to the base class:

    * :meth:`deliver` / :meth:`stash_dropped` route envelopes addressed to
      remote ranks through the destination's ring, coalescing small
      frames per destination;
    * every blocking entry point (:meth:`match`, :meth:`match_timeout`,
      :meth:`try_match`) flushes the coalescing buffers first, so queued
      frames are always on the wire before this rank can stall;
    * :meth:`exchange` / :meth:`exchange_resilient` replace the
      shared-slot rendezvous with tree transport;
    * :meth:`abort` raises the cross-process abort flag;
    * the sanitizer (when on) is the shared-wait-table variant.

    Everything else — matching, dedup, recovery stores, accounting, RNG
    streams — is the base class operating on this process's local state.

    Thread-safety note: only the worker's main thread sends (the receiver
    thread deposits into local stores via the base-class methods), so the
    coalescing buffers are single-threaded state by construction.
    """

    def __init__(self, spec: JobSpec, myrank: int, rings: list[ShmRing],
                 abort_flag: ShmFlag, wait_table: ShmWaitTable | None,
                 coalesce: bool = True) -> None:
        super().__init__(
            spec.nranks, network=spec.network, seed=spec.seed,
            timeout_s=spec.timeout_s, injector=spec.injector,
            policy=spec.policy, obs_config=spec.obs_config,
            sanitize=None, collectives=spec.collectives)
        # Swap in the cross-process sanitizer (the base class built none).
        if spec.sanitize is not None:
            self.sanitizer = SharedSanitizer(
                spec.nranks, spec.sanitize, self.obs, wait_table, rings)
        self.myrank = int(myrank)
        self._rings = rings
        self._abort_flag = abort_flag
        self._receiver: threading.Thread | None = None
        self._coalesce = bool(coalesce)
        #: per-destination queues of encoded-but-unsent frames (segment
        #: lists) and their byte totals
        self._pending: list[list[list[Any]]] = [[] for _ in range(self.nranks)]
        self._pending_bytes = [0] * self.nranks
        self._tx_frames = 0
        self._tx_batches = 0
        self._tx_coalesced = 0

    # ------------------------------------------------------------ routing
    def _send_frame(self, dest: int, segments: list[Any]) -> None:
        try:
            self._rings[dest].send_segments(segments, self._abort_flag)
        except RingAborted:
            self._check_abort()
            raise
        self._tx_frames += 1

    def _enqueue_frame(self, dest: int, segments: list[Any]) -> None:
        """Queue one encoded frame for ``dest``, coalescing small frames
        into a single ring write.  Large frames flush the queue first, so
        the per-destination wire order always equals the send order (the
        seq-based non-overtaking rule needs nothing beyond that)."""
        if (not self._coalesce
                or codec.frame_nbytes(segments) > COALESCE_MAX_FRAME):
            self._flush_dest(dest)
            self._send_frame(dest, segments)
            return
        pend = self._pending[dest]
        pend.append(segments)
        self._pending_bytes[dest] += codec.frame_nbytes(segments)
        if (self._pending_bytes[dest] >= COALESCE_MAX_BYTES
                or len(pend) >= COALESCE_MAX_FRAMES):
            self._flush_dest(dest)

    def _flush_dest(self, dest: int) -> None:
        pend = self._pending[dest]
        if not pend:
            return
        self._pending[dest] = []
        self._pending_bytes[dest] = 0
        if len(pend) == 1:
            self._send_frame(dest, pend[0])
        else:
            self._tx_batches += 1
            self._tx_coalesced += len(pend)
            self._send_frame(dest, codec.encode_batch(pend))

    def flush_frames(self) -> None:
        """Put every queued frame on the wire.

        Called before any operation that can block this rank: a rank
        registered as waiting in the deadlock table then provably has
        nothing buffered (its frames are visible to peers and to the
        detector via ``undeposited()``), and a rank that is *not*
        waiting cannot be part of a stuck cycle — so coalescing is
        invisible to deadlock detection and to liveness.
        """
        for dest in range(self.nranks):
            self._flush_dest(dest)

    def deliver(self, context: str, env: Envelope) -> None:
        if env.dest == self.myrank:
            super().deliver(context, env)
            return
        if not (0 <= env.dest < self.nranks):
            raise ValueError(
                f"invalid destination rank {env.dest} (nranks={self.nranks})")
        self._enqueue_frame(env.dest, codec.encode(_KIND_DELIVER, context, env))

    def stash_dropped(self, context: str, env: Envelope, recoverable: bool) -> None:
        """Injected drops live in the *destination's* local stores so the
        receiver-side bounded-retry/recovery logic runs unchanged."""
        if env.dest == self.myrank:
            super().stash_dropped(context, env, recoverable)
            return
        kind = _KIND_DROP_RECOVERABLE if recoverable else _KIND_DROP_TOMBSTONE
        self._enqueue_frame(
            env.dest, codec.encode(kind, context, env, recoverable))

    # -------------------------------------------- flush-before-blocking
    def match(self, context: str, rank: int, source: int, tag: int) -> Envelope:
        self.flush_frames()
        return super().match(context, rank, source, tag)

    def match_timeout(self, context: str, rank: int, source: int, tag: int,
                      timeout_s: float) -> Envelope | None:
        self.flush_frames()
        return super().match_timeout(context, rank, source, tag, timeout_s)

    def try_match(self, context: str, rank: int, source: int, tag: int) -> Envelope | None:
        self.flush_frames()
        return super().try_match(context, rank, source, tag)

    def mailbox_cond(self, rank: int) -> threading.Condition:
        # The waitsome/waitall loop blocks on the raw condition rather
        # than through match(); it fetches the condition exactly once,
        # before acquiring it, and generates no outbound frames while
        # waiting — so flushing here keeps the nothing-queued-while-
        # blocked invariant (and means the flush inside try_match() is a
        # no-op when the wait loop re-tests under the held lock, which a
        # blocking ring write must never run under).
        self.flush_frames()
        return super().mailbox_cond(rank)

    # --------------------------------------------------------- collectives
    def exchange(self, context: str, seq: int, rank: int, value: Any,
                 routine: str = "MPI_Exchange") -> list[Any]:
        ctx = "__xchg__:" + context
        # Stride 4: tree_allgather consumes two tags per call.
        return coll.tree_allgather(
            self, ctx, self.myrank, self.nranks, seq * 4, value)

    def exchange_resilient(self, context: str, seq: int, rank: int, value: Any,
                           policy, routine: str = "MPI_Exchange") -> list[Any]:
        # Documented limitation: across processes the rendezvous is a tree
        # of point-to-point transfers bounded by the deadlock timeout; the
        # per-round bounded-retry accounting of the thread backend does not
        # apply (p2p retry/recovery is unaffected).
        return self.exchange(context, seq, rank, value, routine=routine)

    # -------------------------------------------------------------- abort
    def abort(self, reason: str) -> None:
        self._abort_flag.set()
        super().abort(reason)

    # ----------------------------------------------------------- receiver
    def start_receiver(self) -> None:
        t = threading.Thread(target=self._receive_loop,
                             name=f"shm-recv-{self.myrank}", daemon=True)
        self._receiver = t
        t.start()

    def _receive_loop(self) -> None:
        ring = self._rings[self.myrank]
        while True:
            try:
                frame = ring.recv(self._abort_flag)
            except RingAborted:
                # Wake local waiters; the failing rank ships the real cause.
                super().abort("peer rank failed (shared abort flag raised)")
                return
            fkind = frame[0]
            if fkind == codec.F_STOP:
                ring.mark_deposited()
                return
            if fkind == codec.F_BATCH:
                self._deposit_batch(frame)
            else:
                kind, context, recoverable, env = codec.decode(frame)
                if kind == _KIND_DELIVER:
                    SimWorld.deliver(self, context, env)
                else:
                    SimWorld.stash_dropped(self, context, env, recoverable)
            # Only now has the frame truly landed: between ring.recv() and
            # here it was in no ring and no mailbox, and the deadlock
            # detector must still count it as in flight (undeposited()).
            ring.mark_deposited()

    def _deposit_batch(self, frame: bytearray) -> None:
        """Unpack a coalesced frame in send order; consecutive deliveries
        land under one mailbox-lock acquisition (``deliver_batch``),
        decoded payloads stay zero-copy views into ``frame``."""
        run: list[tuple[str, Envelope]] = []
        for sub in codec.iter_batch(frame):
            kind, context, recoverable, env = codec.decode(sub)
            if kind == _KIND_DELIVER:
                run.append((context, env))
                continue
            if run:
                SimWorld.deliver_batch(self, run)
                run = []
            SimWorld.stash_dropped(self, context, env, recoverable)
        if run:
            SimWorld.deliver_batch(self, run)

    def shutdown_receiver(self) -> None:
        """Unblock and join the receiver (call after the final barrier)."""
        t = self._receiver
        if t is None:
            return
        self._receiver = None
        try:
            self.flush_frames()  # nothing may stay queued past shutdown
            self._rings[self.myrank].send(codec.STOP_FRAME, self._abort_flag)
        except (RingAborted, SimMPIError):
            # Aborted with a full ring: the receiver is exiting (or gone)
            # via the abort flag anyway.
            pass
        t.join(timeout=self.timeout_s)

    # ------------------------------------------------------------ metrics
    def export_transport_metrics(self) -> None:
        """Publish coalescing and adaptive-polling state into this rank's
        metrics registry (the PR-3 surface): the effective ring poll
        interval plus spin/park and frame/batch counters."""
        if self.obs is None:
            return
        m = self.obs[self.myrank].metrics
        rx = self._rings[self.myrank].rx_backoff
        m.gauge("shm_poll_interval_us",
                "effective ring poll interval (EWMA of recent parks)"
                ).set(rx.poll_interval_us)
        m.counter("shm_poll_spins_total",
                  "blocked ring retries resolved in the spin phase"
                  ).inc(rx.spins_total
                        + sum(r.tx_backoff.spins_total for r in self._rings))
        m.counter("shm_poll_parks_total",
                  "blocked ring retries that parked (timed sleep)"
                  ).inc(rx.parks_total
                        + sum(r.tx_backoff.parks_total for r in self._rings))
        m.counter("shm_frames_sent_total",
                  "wire frames this rank published").inc(self._tx_frames)
        m.counter("shm_batches_sent_total",
                  "coalesced multi-frame writes").inc(self._tx_batches)
        m.counter("shm_frames_coalesced_total",
                  "frames shipped inside coalesced writes"
                  ).inc(self._tx_coalesced)


#: transport context for the end-of-job barrier (never collides with user
#: contexts, which are namespaced under "world")
_FINAL_CONTEXT = "__final__"


def _worker_main(rank: int, spec: JobSpec, rings: list[ShmRing],
                 abort_flag: ShmFlag, wait_table: ShmWaitTable | None,
                 conn, fn: Callable[..., Any], args: tuple, kwargs: dict,
                 coalesce: bool = True) -> None:
    """Body of one rank process (entered via fork)."""
    rebase_seqno(rank)
    world = ShmWorld(spec, rank, rings, abort_flag, wait_table,
                     coalesce=coalesce)
    world.start_receiver()
    from repro.mpi.comm import SimComm

    payload: tuple
    try:
        result = fn(SimComm(world, rank), *args, **kwargs)
        # Final barrier: after it, no peer will write to our ring again
        # (every pre-barrier send completed before its sender entered),
        # so the receiver can be stopped and the mailboxes are complete.
        coll.tree_allgather(world, _FINAL_CONTEXT, rank, spec.nranks, 0, None)
        world.shutdown_receiver()
        world.export_transport_metrics()
        if world.sanitizer is not None:
            world.sanitizer.finalize(world)
        inj = world.injector
        payload = ("ok", result, {
            "accounting": world.accounting[rank],
            "obs": world.obs[rank] if world.obs is not None else None,
            "resilience": world.resilience[rank],
            "findings": (list(world.sanitizer.findings)
                         if world.sanitizer is not None else []),
            "fault_counts": inj.counts[rank] if inj is not None else None,
            "fault_tracer": inj.tracers[rank] if inj is not None else None,
        })
    except BaseException:  # ra: noqa[RA005] — rank isolation barrier
        world.abort(f"rank {rank} raised")
        world.shutdown_receiver()
        if world.obs is not None:
            # Each worker flushes its own black box: unlike the thread
            # backend there is no launcher-side world holding the rings,
            # and abort-woken peers flush theirs on their own except path.
            rec = getattr(world.obs[rank], "recorder", None)
            if rec is not None:
                rec.dump(f"rank {rank} raised")
        payload = ("err", traceback.format_exc())
    try:
        conn.send(payload)
    except Exception:
        conn.send(("err",
                   f"rank {rank}: result not transferable:\n"
                   + traceback.format_exc()))
    finally:
        conn.close()


class MpShmBackend(CommBackend):
    """One forked process per rank, wired through shared-memory rings."""

    name = "mp-shm"

    def __init__(self, ring_bytes: int = DEFAULT_RING_BYTES,
                 coalesce: bool = True) -> None:
        self.ring_bytes = int(ring_bytes)
        #: frame coalescing is the default fast path; ``coalesce=False``
        #: forces one ring write per envelope (A/B benching, debugging)
        self.coalesce = bool(coalesce)

    def launch(self, spec: JobSpec, fn: Callable[..., Any],
               args: tuple, kwargs: dict) -> BackendRun:
        import multiprocessing as mp

        from repro.mpi.runner import RankFailure

        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise RuntimeError(
                "the mp-shm backend requires the 'fork' start method "
                "(POSIX); use backend='thread' on this platform") from exc

        n = spec.nranks
        rings = [ShmRing(self.ring_bytes, ctx) for _ in range(n)]
        abort_flag = ShmFlag()
        wait_table = None
        if (spec.sanitize is not None and spec.sanitize.deadlock
                and n <= WAIT_TABLE_MAX_RANKS):
            wait_table = ShmWaitTable(n, ctx)
        pipes = [ctx.Pipe(duplex=False) for _ in range(n)]
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(r, spec, rings, abort_flag, wait_table,
                      pipes[r][1], fn, args, kwargs, self.coalesce),
                name=f"simmpi-rank-{r}", daemon=True)
            for r in range(n)
        ]
        try:
            for p in procs:
                p.start()
            for _, w in pipes:
                w.close()  # parent keeps only the read ends
            outcomes: list[tuple | None] = [None] * n
            for r, (reader, _) in enumerate(pipes):
                if reader.poll(spec.timeout_s + 30.0):
                    try:
                        outcomes[r] = reader.recv()
                    except EOFError:
                        outcomes[r] = None
            for p in procs:
                p.join(timeout=10.0)
            stuck = [p.name for p in procs if p.is_alive()]
            if stuck:
                abort_flag.set()
                for p in procs:
                    if p.is_alive():  # pragma: no cover - hard-kill path
                        p.terminate()
                        p.join(timeout=5.0)
        finally:
            for ring in rings:
                ring.close()
                ring.unlink()
            abort_flag.close()
            abort_flag.unlink()
            if wait_table is not None:
                wait_table.close()
                wait_table.unlink()

        failures = {
            r: out[1] for r, out in enumerate(outcomes)
            if out is not None and out[0] == "err"
        }
        dead = [r for r, out in enumerate(outcomes) if out is None]
        if dead and not failures:
            failures = {r: "rank process died without reporting a result"
                        for r in dead}
        if failures:
            primary = {
                r: tb for r, tb in failures.items()
                if "simulated MPI job aborted" not in tb
            }
            raise RankFailure(primary or failures)
        if stuck:
            raise RankFailure({-1: f"rank processes did not terminate: {stuck}"})

        results = [out[1] for out in outcomes]
        states = [out[2] for out in outcomes]
        findings = [f for st in states for f in st["findings"]]
        findings.sort(key=lambda f: (f.rank, f.kind, f.message))
        sanitizer = (SanitizerView(spec.sanitize, findings)
                     if spec.sanitize is not None else None)
        injector = spec.injector
        if injector is not None:
            # Adopt each worker's authoritative slice of the fault record.
            for r, st in enumerate(states):
                if st["fault_counts"] is not None:
                    injector.counts[r] = st["fault_counts"]
                    injector.tracers[r] = st["fault_tracer"]
        obs = None
        if spec.obs_config is not None:
            obs = [st["obs"] for st in states]
        world = WorldView(
            spec,
            accounting=[st["accounting"] for st in states],
            obs=obs,
            resilience=[st["resilience"] for st in states],
            sanitizer=sanitizer,
            injector=injector,
        )
        return BackendRun(results, world)
