"""Simulated MPI-1 subset (the paper's message-passing substrate).

The paper ran its case study on three processors of a Xeon cluster with a
real MPI library.  This package provides a faithful *functional* stand-in:

* P ranks execute concurrently as threads inside one process
  (:class:`ParallelRunner`), each holding a :class:`SimComm` communicator.
* Point-to-point (``send``/``recv``/``isend``/``irecv`` + ``waitsome``,
  ``waitall``, ``waitany``) and collective (``barrier``, ``bcast``,
  ``reduce``, ``allreduce``, ``allgather``, ``alltoall``) operations move
  real data between ranks.
* A :class:`NetworkModel` (latency + bandwidth + stochastic load jitter)
  charges each operation a *virtual* communication cost in microseconds,
  accumulated per MPI routine in :class:`MPIAccounting` — exactly the
  per-routine numbers TAU reports in the paper's Figure 3 and the
  ghost-cell exchange timings of Figure 9.

The API follows mpi4py naming (lowercase methods communicate picklable
objects / NumPy arrays by value).
"""

from repro.mpi.network import NetworkModel
from repro.mpi.accounting import MPIAccounting
from repro.mpi.message import ANY_SOURCE, ANY_TAG, Status
from repro.mpi.request import Request, waitall, waitany, waitsome
from repro.mpi.world import SimWorld, SimMPIError
from repro.mpi.comm import SimComm
from repro.mpi.backend import (BACKEND_NAMES, CommBackend, JobSpec,
                               WorldView, create_backend)
from repro.mpi.runner import ParallelRunner, RankFailure, create_world

__all__ = [
    "NetworkModel",
    "MPIAccounting",
    "ANY_SOURCE",
    "ANY_TAG",
    "Status",
    "Request",
    "waitall",
    "waitany",
    "waitsome",
    "SimWorld",
    "SimMPIError",
    "SimComm",
    "ParallelRunner",
    "RankFailure",
    "BACKEND_NAMES",
    "CommBackend",
    "JobSpec",
    "WorldView",
    "create_backend",
    "create_world",
]
