"""``mpi4py`` backend: map the simulator API onto a real MPI library.

This adapter is import-gated: the study's container images ship without an
MPI stack, so the backend exists as a named, documented extension point
that fails with an actionable message instead of an ImportError deep in a
launch.  When ``mpi4py`` *is* available the adapter still refuses to
launch from a single Python process — real MPI jobs are started by
``mpiexec``, which inverts the control flow of :func:`ParallelRunner.run`
(the launcher does not own the ranks).  The supported shape is::

    mpiexec -n 16 python my_study.py   # each process calls attach()

where :func:`attach` wraps ``MPI.COMM_WORLD`` with the accounting /
observability adapters.  That wrapping work is tracked in ROADMAP.md; the
class below is the registry hook plus the capability probe.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mpi.backend import BackendRun, CommBackend, JobSpec


def mpi4py_available() -> bool:
    """Can ``mpi4py`` be imported in this environment?"""
    try:
        import mpi4py  # noqa: F401
    except ImportError:
        return False
    return True


class Mpi4pyBackend(CommBackend):
    """Registry entry for real-MPI execution (capability-gated)."""

    name = "mpi4py"

    def launch(self, spec: JobSpec, fn: Callable[..., Any],
               args: tuple, kwargs: dict) -> BackendRun:
        if not mpi4py_available():
            raise RuntimeError(
                "backend='mpi4py' requires the mpi4py package and an MPI "
                "runtime, neither of which is installed in this environment; "
                "use backend='thread' (deterministic, default) or "
                "backend='mp-shm' (process-parallel) instead")
        raise NotImplementedError(
            "backend='mpi4py' cannot be launched from a single process: "
            "start the job under mpiexec and wrap MPI.COMM_WORLD directly "
            "(see repro.mpi.mpi4py_backend module docs)")
