"""Nonblocking-communication requests and completion operations.

Completion charging convention: posting ``isend``/``irecv`` is cheap (the
sender pays a small injection overhead at post time); the modeled *transfer*
cost of a message is charged to whichever completion routine observes it
(``MPI_Wait``, ``MPI_Waitsome``, ``MPI_Waitall``, or a blocking
``MPI_Recv``).  This mirrors where time shows up in a real profile — the
paper's Figure 3 attributes ~25% of runtime to ``MPI_Waitsome`` invoked
from AMRMesh's ghost-cell updates.

When several messages complete in one wait call their transfer costs are
assumed to overlap on the network, so the call is charged the *maximum* of
the individual costs, not the sum.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Sequence

from repro.faults.policy import CommFailure
from repro.mpi.message import ANY_SOURCE, ANY_TAG, Status
from repro.mpi.world import SimMPIError
from repro.obs.span import CAT_MPI_WAIT
from repro.util.timebase import now_us

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import SimComm


class Request:
    """Base request; concrete kinds are :class:`SendRequest` / :class:`RecvRequest`."""

    def __init__(self, comm: "SimComm") -> None:
        self._comm = comm
        self._complete = False
        self._cost_us = 0.0

    # -- completion cost of the message this request observed (0 for sends)
    @property
    def cost_us(self) -> float:
        return self._cost_us

    @property
    def complete(self) -> bool:
        return self._complete

    def test(self, status: Status | None = None) -> bool:
        """Non-blocking completion check; completes the request if possible."""
        raise NotImplementedError

    def wait(self, status: Status | None = None) -> Any:
        """Block until complete; returns the received object (None for sends)."""
        raise NotImplementedError


class SendRequest(Request):
    """Buffered-send request: the payload was copied at post time, so the
    request is complete as soon as it exists (MPI buffered semantics)."""

    def __init__(self, comm: "SimComm") -> None:
        super().__init__(comm)
        self._complete = True

    def test(self, status: Status | None = None) -> bool:
        return True

    def wait(self, status: Status | None = None) -> None:
        return None


class RecvRequest(Request):
    """Posted receive for (source, tag); completes when a match arrives."""

    def __init__(self, comm: "SimComm", source: int = ANY_SOURCE, tag: int = ANY_TAG) -> None:
        super().__init__(comm)
        self.source = source
        self.tag = tag
        self._payload: Any = None

    @property
    def payload(self) -> Any:
        if not self._complete:
            raise SimMPIError("receive request not yet complete")
        return self._payload

    def _absorb(self, env, status: Status | None) -> None:
        self._payload = env.payload
        self._cost_us = env.cost_us
        self._complete = True
        obs = self._comm.obs
        if obs is not None:
            # Sink of the causal edge: bind to the enclosing wait span, or
            # to an instant marker when completed by a bare test().
            obs.tracer.flow_in(env.seq, obs.tracer.current())
        if status is not None:
            status.source, status.tag, status.nbytes = env.source, env.tag, env.nbytes

    def test(self, status: Status | None = None) -> bool:
        if self._complete:
            return True
        env = self._comm.world.try_match(self._comm.context, self._comm.rank, self.source, self.tag)
        if env is None:
            return False
        self._absorb(env, status)
        return True

    def wait(self, status: Status | None = None) -> Any:
        if not self._complete:
            with self._comm._span_ctx("MPI_Wait", CAT_MPI_WAIT,
                                      source=self.source, tag=self.tag) as sp:
                env = self._comm._match_resilient(self.source, self.tag, span=sp)
                self._absorb(env, status)
                self._comm.charge("MPI_Wait", self._cost_us)
        return self._payload


def _poll_until_some(requests: Sequence[Request], want_all: bool) -> list[int]:
    """Block until some (or all) requests complete; return newly completed indices.

    All requests must belong to the same rank's communicators.  Uses the
    rank's mailbox condition to sleep between matching attempts.

    Under a resilience policy the wait runs in bounded retry rounds: an
    empty round recovers matching dropped envelopes for every pending
    receive (charging ``MPI_Retransmit``), and after ``max_attempts``
    rounds a pending receive whose message is provably lost (tombstoned)
    raises a typed :class:`CommFailure`.  With no evidence of loss the
    wait falls back to the ordinary deadlock timeout — slow peers are not
    failures.
    """
    if not requests:
        return []
    comm = requests[0]._comm
    for r in requests:
        if r._comm.rank != comm.rank or r._comm.world is not comm.world:
            raise SimMPIError("all requests in a wait call must belong to one rank")
    pending = [i for i, r in enumerate(requests) if not r.complete]
    if not pending:
        return []
    world = comm.world
    policy = world.policy
    resilient = policy is not None and world.injector is not None
    cond = world.mailbox_cond(comm.rank)
    deadline = time.monotonic() + world.timeout_s
    attempt = 0
    next_retry = (time.monotonic() + policy.attempt_timeout_s(0)) if resilient else None
    completed: list[int] = []
    obs = comm.obs
    wait_span = obs.tracer.current() if obs is not None else None
    t_retry = None
    san = world.sanitizer
    try:
        return _wait_loop(requests, comm, world, cond, deadline, resilient,
                          policy, next_retry, attempt, completed, pending,
                          obs, wait_span, t_retry, want_all, san)
    finally:
        if san is not None:
            san.exit_wait(comm.rank)


def _wait_loop(requests, comm, world, cond, deadline, resilient, policy,
               next_retry, attempt, completed, pending, obs, wait_span,
               t_retry, want_all, san):
    fault_run = resilient
    with cond:
        while True:
            if world.aborted:
                raise SimMPIError("simulated MPI job aborted during wait")
            still = []
            for i in pending:
                if requests[i].test():
                    completed.append(i)
                else:
                    still.append(i)
            pending = still
            done = (not pending) if want_all else bool(completed)
            if done:
                comm._mark_retry(wait_span, t_retry)
                return completed
            now = time.monotonic()
            remaining = deadline - now
            if remaining <= 0:
                raise SimMPIError(
                    f"rank {comm.rank} timed out waiting on {len(pending)} "
                    "request(s) — likely deadlock"
                )
            if resilient and now >= next_retry:
                world.resilience[comm.rank].retry_rounds += 1
                if t_retry is None:
                    t_retry = now_us()
                if obs is not None:
                    obs.metrics.counter("mpi_retry_rounds_total",
                                        "bounded receive retry rounds").inc()
                recovered = 0
                receives = [requests[i] for i in pending
                            if isinstance(requests[i], RecvRequest)]
                for r in receives:
                    recovered += world.recover_dropped(
                        r._comm.context, comm.rank, r.source, r.tag)
                if recovered:
                    comm.charge("MPI_Retransmit",
                                recovered * policy.retransmit_cost_us)
                attempt += 1
                if attempt >= policy.max_attempts:
                    lost = [r for r in receives if world.lost_forever(
                        r._comm.context, comm.rank, r.source, r.tag)]
                    if lost:
                        world.resilience[comm.rank].failures += 1
                        comm._mark_retry(wait_span, t_retry)
                        if obs is not None:
                            obs.metrics.counter(
                                "mpi_comm_failures_total",
                                "typed communication failures raised").inc()
                        r = lost[0]
                        raise CommFailure(
                            f"rank {comm.rank}: receive (source={r.source}, "
                            f"tag={r.tag}) unmatched after {attempt} retry "
                            "round(s); a matching message was unrecoverably "
                            "dropped"
                        )
                    resilient = False  # healthy but slow: plain timeout only
                else:
                    next_retry = now + policy.attempt_timeout_s(attempt)
                continue  # re-test immediately after any recovery
            if fault_run and not resilient:
                # Retry budget exhausted with no evidence of loss.  Keep
                # recovering opportunistically: process backends deliver drop
                # records asynchronously, so a recoverable drop may land in
                # the stash only after the counted rounds ran dry.  On the
                # thread backend (synchronous drops) the stash is empty here
                # and this is a no-op, preserving the counted semantics.
                recovered = 0
                for i in pending:
                    r = requests[i]
                    if isinstance(r, RecvRequest):
                        recovered += world.recover_dropped(
                            r._comm.context, comm.rank, r.source, r.tag)
                if recovered:
                    comm.charge("MPI_Retransmit",
                                recovered * policy.retransmit_cost_us)
                    continue
            wait_s = min(remaining, 0.5)
            if resilient:
                wait_s = min(wait_s, max(next_retry - now, 0.0))
            # In a fault run the retry/recovery machinery owns liveness: a
            # pending recv may be blocked on a dropped-but-recoverable
            # message the wait-for graph cannot see (and on process
            # backends the drop record itself may still be in flight), so
            # both registration and verdicts are suspended; the hard
            # ``timeout_s`` deadline above remains the backstop.
            if san is not None and san.config.deadlock and not fault_run:
                waits_on: set[int] = set()
                pends = []
                for i in pending:
                    r = requests[i]
                    if isinstance(r, RecvRequest):
                        waits_on |= world.recv_waits_on(comm.rank, r.source)
                        pends.append(f"(source={r.source}, tag={r.tag})")
                san.enter_wait(
                    comm.rank, "MPI_Wait",
                    f"({len(pends)} pending recv(s): {', '.join(pends)})",
                    waits_on)
                san.check_deadlock(comm.rank)
                wait_s = min(wait_s, san.config.deadlock_poll_s)
            cond.wait(wait_s)


def waitsome(requests: Sequence[Request]) -> list[int]:
    """Complete at least one pending request; return indices completed now.

    Charged to ``MPI_Waitsome`` (the max transfer cost among completions —
    concurrent arrivals overlap).  Returns ``[]`` if every request was
    already complete (MPI's ``MPI_UNDEFINED`` case).
    """
    if not any(not r.complete for r in requests):
        return _poll_until_some(requests, want_all=False)
    comm = requests[0]._comm
    with comm._span_ctx("MPI_Waitsome", CAT_MPI_WAIT, n=len(requests)):
        done = _poll_until_some(requests, want_all=False)
        comm.charge("MPI_Waitsome", max(requests[i].cost_us for i in done))
    return done


def waitall(requests: Sequence[Request]) -> None:
    """Complete all requests; charged to ``MPI_Waitall``."""
    if not requests:
        return
    comm = requests[0]._comm
    with comm._span_ctx("MPI_Waitall", CAT_MPI_WAIT, n=len(requests)):
        done = _poll_until_some(requests, want_all=True)
        cost = max((requests[i].cost_us for i in done), default=0.0)
        comm.charge("MPI_Waitall", cost)


def waitany(requests: Sequence[Request]) -> int:
    """Complete exactly one request; return its index (charged to ``MPI_Waitany``)."""
    if not requests:
        raise ValueError("waitany on empty request list")
    if all(r.complete for r in requests):
        raise SimMPIError("waitany: all requests already complete")
    comm = requests[0]._comm
    with comm._span_ctx("MPI_Waitany", CAT_MPI_WAIT, n=len(requests)):
        done = _poll_until_some(requests, want_all=False)
        idx = done[0]
        comm.charge("MPI_Waitany", requests[idx].cost_us)
    return idx
