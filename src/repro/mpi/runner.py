"""SCMD job launcher: run the same function on P rank threads.

This is the simulator's ``mpiexec -n P``.  The CCA layer builds on it to
realize the paper's SCMD (Single Component Multiple Data) model: identical
frameworks containing the same components are instantiated on all P
processors, with MPI between the cohort instances.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable

from repro.mpi.comm import SimComm
from repro.mpi.network import NetworkModel
from repro.mpi.world import SimWorld
from repro.util.validation import check_positive


class RankFailure(RuntimeError):
    """Raised by :meth:`ParallelRunner.run` when any rank raised.

    Carries per-rank tracebacks; the message includes the first failure so
    pytest output points straight at the root cause.
    """

    def __init__(self, failures: dict[int, str]) -> None:
        self.failures = failures
        first_rank = min(failures)
        super().__init__(
            f"{len(failures)} rank(s) failed; first failure on rank {first_rank}:\n"
            + failures[first_rank]
        )


class ParallelRunner:
    """Run ``fn(comm)`` concurrently on ``nranks`` simulated ranks.

    Example
    -------
    >>> runner = ParallelRunner(3)
    >>> runner.run(lambda comm: comm.allreduce(comm.rank))
    [3, 3, 3]
    """

    def __init__(
        self,
        nranks: int,
        network: NetworkModel | None = None,
        seed: int | None = 0,
        timeout_s: float = 120.0,
        injector=None,
        policy=None,
        obs_config=None,
        sanitize=None,
    ) -> None:
        check_positive("nranks", nranks)
        self.nranks = int(nranks)
        self.network = network or NetworkModel()
        self.seed = seed
        self.timeout_s = float(timeout_s)
        #: optional FaultInjector / ResiliencePolicy attached to each world
        self.injector = injector
        self.policy = policy
        #: optional ObsConfig enabling per-rank span tracing + metrics
        self.obs_config = obs_config
        #: optional SanitizerConfig enabling runtime MPI correctness checks
        self.sanitize = sanitize
        #: the world of the most recent ``run`` (exposes per-rank accounting)
        self.last_world: SimWorld | None = None

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
        """Execute ``fn(comm, *args, **kwargs)`` on every rank; return results by rank.

        If any rank raises, the world is aborted (waking blocked peers) and
        a :class:`RankFailure` is raised after all threads join.
        """
        world = SimWorld(self.nranks, network=self.network, seed=self.seed,
                         timeout_s=self.timeout_s, injector=self.injector,
                         policy=self.policy, obs_config=self.obs_config,
                         sanitize=self.sanitize)
        self.last_world = world
        results: list[Any] = [None] * self.nranks
        failures: dict[int, str] = {}
        lock = threading.Lock()

        def target(rank: int) -> None:
            comm = SimComm(world, rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException:  # ra: noqa[RA005] — rank isolation barrier
                with lock:
                    failures[rank] = traceback.format_exc()
                world.abort(f"rank {rank} raised")

        threads = [
            threading.Thread(target=target, args=(r,), name=f"simmpi-rank-{r}", daemon=True)
            for r in range(self.nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=self.timeout_s + 10.0)
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            world.abort("join timeout")
            raise RankFailure({-1: f"rank threads did not terminate: {alive}"})
        if failures:
            # Drop secondary abort-induced failures when a primary cause exists.
            primary = {
                r: tb for r, tb in failures.items() if "simulated MPI job aborted" not in tb
            }
            raise RankFailure(primary or failures)
        if world.sanitizer is not None:
            # End-of-job hygiene: leaked requests / unconsumed envelopes.
            world.sanitizer.finalize(world)
        return results
