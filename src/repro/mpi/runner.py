"""SCMD job launcher: run the same function on P simulated ranks.

This is the simulator's ``mpiexec -n P``.  The CCA layer builds on it to
realize the paper's SCMD (Single Component Multiple Data) model: identical
frameworks containing the same components are instantiated on all P
processors, with MPI between the cohort instances.

Where the ranks actually execute is pluggable
(:mod:`repro.mpi.backend`): ``backend="thread"`` (default) runs them as
threads in this process, ``backend="mp-shm"`` as real processes wired
through shared-memory rings, ``backend="mpi4py"`` on a real MPI library
when one is installed.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mpi.backend import JobSpec, create_backend
from repro.mpi.network import NetworkModel
from repro.util.validation import check_positive


class RankFailure(RuntimeError):
    """Raised by :meth:`ParallelRunner.run` when any rank raised.

    Carries per-rank tracebacks; the message includes the first failure so
    pytest output points straight at the root cause.
    """

    def __init__(self, failures: dict[int, str]) -> None:
        self.failures = failures
        first_rank = min(failures)
        super().__init__(
            f"{len(failures)} rank(s) failed; first failure on rank {first_rank}:\n"
            + failures[first_rank]
        )


class ParallelRunner:
    """Run ``fn(comm)`` concurrently on ``nranks`` simulated ranks.

    Example
    -------
    >>> runner = ParallelRunner(3)
    >>> runner.run(lambda comm: comm.allreduce(comm.rank))
    [3, 3, 3]
    """

    def __init__(
        self,
        nranks: int,
        network: NetworkModel | None = None,
        seed: int | None = 0,
        timeout_s: float = 120.0,
        injector=None,
        policy=None,
        obs_config=None,
        sanitize=None,
        backend: str = "thread",
        collectives: str | None = None,
    ) -> None:
        check_positive("nranks", nranks)
        self.nranks = int(nranks)
        self.network = network or NetworkModel()
        self.seed = seed
        self.timeout_s = float(timeout_s)
        #: optional FaultInjector / ResiliencePolicy attached to each world
        self.injector = injector
        self.policy = policy
        #: optional ObsConfig enabling per-rank span tracing + metrics
        self.obs_config = obs_config
        #: optional SanitizerConfig enabling runtime MPI correctness checks
        self.sanitize = sanitize
        #: communicator backend name ("thread", "mp-shm", "mpi4py")
        self.backend = backend
        #: collective-algorithm family (None, "flat", "hier")
        self.collectives = collectives
        # Fail fast on unknown backend names (before any launch).
        create_backend(backend)
        #: the world (or WorldView) of the most recent ``run``
        self.last_world = None

    def _spec(self) -> JobSpec:
        return JobSpec(
            nranks=self.nranks, network=self.network, seed=self.seed,
            timeout_s=self.timeout_s, injector=self.injector,
            policy=self.policy, obs_config=self.obs_config,
            sanitize=self.sanitize, collectives=self.collectives)

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
        """Execute ``fn(comm, *args, **kwargs)`` on every rank; return results by rank.

        If any rank raises, the world is aborted (waking blocked peers) and
        a :class:`RankFailure` is raised after all ranks wind down.
        """
        out = create_backend(self.backend).launch(self._spec(), fn, args, kwargs)
        self.last_world = out.world
        return out.results


def create_world(backend: str = "thread", nranks: int = 1,
                 **kwargs: Any) -> ParallelRunner:
    """Named-communicator factory (ChainerMN-style).

    ``create_world("mp-shm", nranks=16).run(fn)`` is the one-line spelling
    of "launch fn on 16 shared-memory rank processes".  All
    :class:`ParallelRunner` keyword options pass through.
    """
    return ParallelRunner(nranks, backend=backend, **kwargs)
