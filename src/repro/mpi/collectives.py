"""Hierarchical (tree-structured) collective algorithms.

The simulator's original collectives all funnel through one flat
rendezvous slot: every rank deposits its value, every rank reads all P
values.  That is simple and correct, but it serializes 2(P-1) transfers
through a single coordinator — fine at the paper's 3 ranks, hopeless at
64.  This module provides the standard tree algorithms of switched-cluster
MPI implementations, expressed purely over the world's point-to-point
primitives (``deliver``/``match``) so the same code moves data between
rank *threads* (thread backend) and rank *processes* (mp-shm backend):

* **binomial-tree broadcast / gather** — ``ceil(log2 P)`` stages, each
  doubling the informed (or halving the un-gathered) set;
* **recursive-doubling allgather** — ``ceil(log2 P)`` stages of pairwise
  exchange with partner ``vrank ^ 2^k`` (non-power-of-two rank counts use
  the standard pre/post fold onto the largest embedded power of two);
* **ring allgather** — ``P-1`` stages passing one rank's block around the
  ring; bandwidth-optimal for large payloads.

Transport envelopes move in a reserved ``__coll__:``-prefixed context with
zero modeled cost: they are *mechanism*, not *model*.  The modeled cost of
a hierarchical collective is charged once, under the collective's MPI
routine name, from the matching :class:`~repro.mpi.network.NetworkModel`
algorithm formula — so ledgers stay per-routine exactly as the paper's
Figure 3 expects, while the charged number reflects the selected
algorithm's stage structure.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.codec import transport_nbytes
from repro.mpi.message import Envelope, copy_payload

#: message-context prefix reserved for collective transport traffic
COLL_CONTEXT_PREFIX = "__coll__:"


def coll_context(context: str) -> str:
    """Transport context derived from a communicator's message context."""
    return COLL_CONTEXT_PREFIX + context


def _tsend(world, context: str, source: int, dest: int, tag: int,
           payload: Any) -> None:
    """Zero-cost transport send (bypasses accounting/injection/sanitizer).

    Payloads are value-copied at every hop: on the thread backend the same
    object reference would otherwise be forwarded down the tree and alias
    across ranks (the process backend copies by serializing anyway).
    """
    world.deliver(context, Envelope(
        source=source, dest=dest, tag=tag, payload=copy_payload(payload),
        nbytes=transport_nbytes(payload), cost_us=0.0))


def _trecv(world, context: str, rank: int, source: int, tag: int) -> Any:
    """Blocking transport receive (deadlock-timeout bounded like any match)."""
    return world.match(context, rank, source, tag).payload


def _vrank(rank: int, root: int, nranks: int) -> int:
    """Virtual rank with ``root`` rotated to 0 (standard tree trick)."""
    return (rank - root) % nranks


def _arank(vrank: int, root: int, nranks: int) -> int:
    return (vrank + root) % nranks


def binomial_bcast(world, context: str, rank: int, nranks: int, tag: int,
                   value: Any, root: int = 0) -> Any:
    """Broadcast ``value`` from ``root`` down a binomial tree.

    Stage k: every informed virtual rank ``v < 2^k`` forwards to
    ``v + 2^k``.  Returns the broadcast value on every rank.
    """
    if nranks == 1:
        return value
    vr = _vrank(rank, root, nranks)
    mask = 1
    # Receive exactly once: from the parent whose bit is my lowest set bit.
    while mask < nranks:
        if vr & mask:
            parent = _arank(vr - mask, root, nranks)
            value = _trecv(world, context, rank, parent, tag)
            break
        mask <<= 1
    # Forward to children below my lowest set bit (root forwards at all
    # stages above its own).
    mask >>= 1
    while mask > 0:
        if vr + mask < nranks:
            child = _arank(vr + mask, root, nranks)
            _tsend(world, context, rank, child, tag, value)
        mask >>= 1
    return value


def binomial_gather(world, context: str, rank: int, nranks: int, tag: int,
                    value: Any, root: int = 0) -> dict[int, Any] | None:
    """Gather one value per rank up a binomial tree.

    Returns the complete ``{rank: value}`` dict at ``root``, None elsewhere.
    Each node merges its children's partial dicts before forwarding, so
    every edge carries its subtree exactly once.
    """
    acc: dict[int, Any] = {rank: value}
    if nranks == 1:
        return acc
    vr = _vrank(rank, root, nranks)
    mask = 1
    while mask < nranks:
        if vr & mask:
            parent = _arank(vr - mask, root, nranks)
            _tsend(world, context, rank, parent, tag, acc)
            return None
        if vr + mask < nranks:
            child = _arank(vr + mask, root, nranks)
            acc.update(_trecv(world, context, rank, child, tag))
        mask <<= 1
    return acc


def tree_allgather(world, context: str, rank: int, nranks: int, tag: int,
                   value: Any, root: int = 0) -> list[Any]:
    """Gather to ``root`` then broadcast: 2·log2(P) stages, every rank ends
    with the full by-rank value list.  The workhorse behind the process
    backend's rendezvous emulation and the sanitizer's token exchange."""
    acc = binomial_gather(world, context, rank, nranks, tag, value, root)
    ordered = ([acc[r] for r in range(nranks)]
               if acc is not None else None)
    return binomial_bcast(world, context, rank, nranks, tag + 1, ordered, root)


def recursive_doubling_allgather(world, context: str, rank: int, nranks: int,
                                 tag: int, value: Any) -> list[Any]:
    """Allgather by recursive doubling; log2(P) pairwise exchange stages.

    Non-power-of-two P: the trailing ``P - m`` ranks (m = largest power of
    two ≤ P) fold their values onto partners below m before the doubling
    stages and receive the finished list afterwards.
    """
    if nranks == 1:
        return [value]
    m = 1
    while m * 2 <= nranks:
        m *= 2
    extra = nranks - m
    acc: dict[int, Any] = {rank: value}
    if rank >= m:
        # Fold in: hand my value to my partner, wait for the final list.
        _tsend(world, context, rank, rank - m, tag, acc)
        return _trecv(world, context, rank, rank - m, tag + 1)
    if rank < extra:
        acc.update(_trecv(world, context, rank, rank + m, tag))
    mask = 1
    stage_tag = tag + 2
    while mask < m:
        partner = rank ^ mask
        # Deterministic pairwise exchange: both sides send, both receive.
        _tsend(world, context, rank, partner, stage_tag, acc)
        acc = {**acc, **_trecv(world, context, rank, partner, stage_tag)}
        mask <<= 1
        stage_tag += 1
    result = [acc[r] for r in range(nranks)]
    if rank < extra:
        _tsend(world, context, rank, rank + m, tag + 1, result)
    return result


def ring_allgather(world, context: str, rank: int, nranks: int, tag: int,
                   value: Any) -> list[Any]:
    """Allgather around a ring: P-1 stages, each passing one block on.

    Stage s: send the block that originated at ``rank - s`` to the right
    neighbour, receive the block that originated at ``rank - s - 1`` from
    the left — every link carries 1/P of the data per stage.
    """
    blocks: list[Any] = [None] * nranks
    blocks[rank] = value
    if nranks == 1:
        return blocks
    right = (rank + 1) % nranks
    left = (rank - 1) % nranks
    for s in range(nranks - 1):
        outgoing = (rank - s) % nranks
        _tsend(world, context, rank, right, tag, blocks[outgoing])
        incoming = (rank - s - 1) % nranks
        blocks[incoming] = _trecv(world, context, rank, left, tag)
    return blocks


#: collective-algorithm families selectable via ``collectives=...``:
#: ``None`` keeps the legacy rendezvous + generic log-tree cost model
#: (bitwise-identical to all prior releases); ``"flat"`` keeps the
#: rendezvous but charges its honest linear-in-P cost; ``"hier"`` moves
#: data down real trees and charges the per-algorithm cost.
ALGORITHMS = (None, "flat", "hier")


def check_algorithm(name: str | None) -> str | None:
    if name not in ALGORITHMS:
        raise ValueError(
            f"collectives must be one of {ALGORITHMS}, got {name!r}")
    return name
