"""The containing framework (CCAFFEINE analog).

"Since a containing framework creates, configures and assembles components,
the framework possesses the global understanding of how the components are
networked into an application" (paper Section 1).  Accordingly
:class:`Framework` owns:

* component instantiation (by class or repository name — the analog of
  loading a shared object at run time);
* port connection — "just the movement of (pointers to) interfaces from the
  providing to the using component";
* the wiring diagram as a :class:`networkx.MultiDiGraph`, consumed by the
  Mastermind to build the application's dual;
* dynamic component replacement through the AbstractFramework port
  (Figure 10: "the Mastermind is seen connected to CCAFFEINE via the
  AbstractFramework Port to enable dynamic replacement of sub-optimal
  components").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import networkx as nx

from repro.cca.component import Component
from repro.cca.ports import GoPort, Port
from repro.cca.repository import ComponentRepository, default_repository
from repro.cca.services import Services
from repro.tau.profiler import MPI_GROUP, Profiler

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import SimComm


class AbstractFrameworkPort(Port):
    """Builtin port giving components (the Mastermind) framework control."""

    def wiring(self) -> nx.MultiDiGraph:
        raise NotImplementedError

    def replace(self, instance_name: str, new_cls: type[Component]) -> Component:
        raise NotImplementedError

    def component_class(self, instance_name: str) -> type[Component]:
        raise NotImplementedError


class MPIPort(Port):
    """Builtin port exposing the rank's communicator to components."""

    def comm(self) -> "SimComm":
        raise NotImplementedError


class _FrameworkAdapter(AbstractFrameworkPort):
    """AbstractFrameworkPort implementation delegating to the framework."""

    def __init__(self, fw: "Framework") -> None:
        self._fw = fw

    def wiring(self) -> nx.MultiDiGraph:
        return self._fw.wiring_diagram()

    def replace(self, instance_name: str, new_cls: type[Component]) -> Component:
        return self._fw.replace_component(instance_name, new_cls)

    def component_class(self, instance_name: str) -> type[Component]:
        return type(self._fw.component(instance_name))


class _MPIAdapter(MPIPort):
    def __init__(self, fw: "Framework") -> None:
        self._fw = fw

    def comm(self) -> "SimComm":
        if self._fw.comm is None:
            raise RuntimeError("framework has no MPI communicator (serial run)")
        return self._fw.comm


class Framework:
    """One rank's component container.

    Under SCMD, every rank instantiates an identical Framework holding the
    same components (a *cohort*); ``comm`` links cohort instances.
    """

    #: names under which builtin ports are fetched via ``services.get_port``
    ABSTRACT_FRAMEWORK_PORT = "cca.AbstractFramework"
    MPI_PORT = "cca.MPI"

    def __init__(
        self,
        rank: int = 0,
        comm: "SimComm | None" = None,
        profiler: Profiler | None = None,
        repository: ComponentRepository | None = None,
        obs=None,
    ) -> None:
        self.rank = int(rank)
        self.comm = comm
        self.repository = repository or default_repository
        self.profiler = profiler or Profiler(rank=self.rank)
        #: this rank's RankObs (span tracer + metrics), or None when off.
        #: Components reach it via ``services.framework.obs``.
        self.obs = obs if obs is not None else (comm.obs if comm is not None else None)
        if comm is not None:
            # MPI routine charges flow into the profiler's MPI group so the
            # TAU component sees them (Figure 3's MPI_* rows).
            comm.accounting.add_listener(
                lambda routine, cost: self.profiler.charge(routine, cost, group=MPI_GROUP)
            )
        self._components: dict[str, Component] = {}
        self._services: dict[str, Services] = {}
        self._builtins: dict[str, Port] = {
            self.ABSTRACT_FRAMEWORK_PORT: _FrameworkAdapter(self),
            self.MPI_PORT: _MPIAdapter(self),
        }

    # ------------------------------------------------------------ builtin
    def builtin_port(self, name: str) -> Port | None:
        """Framework-provided port for ``name`` or None."""
        return self._builtins.get(name)

    # ---------------------------------------------------------- creation
    def create(
        self, instance_name: str, component: type[Component] | str, **kwargs: Any
    ) -> Component:
        """Instantiate a component and invoke its ``set_services``.

        ``component`` may be a class or a repository name (the runtime
        shared-object-loading analog).  ``kwargs`` go to the constructor.
        """
        if instance_name in self._components:
            raise ValueError(f"instance name {instance_name!r} already in use")
        cls = self.repository.get(component) if isinstance(component, str) else component
        if not (isinstance(cls, type) and issubclass(cls, Component)):
            raise TypeError(f"{component!r} is not a Component subclass or repository name")
        comp = cls(**kwargs)
        services = Services(instance_name, self)
        comp.set_services(services)
        self._components[instance_name] = comp
        self._services[instance_name] = services
        return comp

    def destroy(self, instance_name: str) -> None:
        """Remove a component, unbinding every connection touching it."""
        comp = self.component(instance_name)
        # Unbind this instance's own uses ports.
        sv = self._services[instance_name]
        for name, up in sv.used.items():
            if up.impl is not None:
                sv._unbind(name)
        # Unbind peers using this instance's provided ports.
        for peer, psv in self._services.items():
            if peer == instance_name:
                continue
            for name, up in psv.used.items():
                if up.provider_instance == instance_name:
                    psv._unbind(name)
        comp.release()
        del self._components[instance_name]
        del self._services[instance_name]

    # ------------------------------------------------------------ lookup
    def component(self, instance_name: str) -> Component:
        try:
            return self._components[instance_name]
        except KeyError:
            raise KeyError(
                f"no component instance {instance_name!r}; have {sorted(self._components)}"
            ) from None

    def services_of(self, instance_name: str) -> Services:
        self.component(instance_name)
        return self._services[instance_name]

    def instance_names(self) -> list[str]:
        return sorted(self._components)

    def provided_port(self, instance_name: str, port_name: str) -> Port:
        """The implementation object a component exports under ``port_name``."""
        sv = self.services_of(instance_name)
        try:
            return sv.provided[port_name].impl
        except KeyError:
            raise KeyError(
                f"{instance_name} provides no port {port_name!r}; "
                f"have {sorted(sv.provided)}"
            ) from None

    # -------------------------------------------------------- connection
    def connect(
        self,
        user_instance: str,
        uses_port: str,
        provider_instance: str,
        provides_port: str | None = None,
    ) -> None:
        """Wire a uses port to a provides port (defaults to the same name)."""
        provides_port = provides_port if provides_port is not None else uses_port
        usv = self.services_of(user_instance)
        if uses_port not in usv.used:
            raise KeyError(
                f"{user_instance} registered no uses port {uses_port!r}; "
                f"have {sorted(usv.used)}"
            )
        impl = self.provided_port(provider_instance, provides_port)
        usv._bind(uses_port, impl, provider_instance)

    def disconnect(self, user_instance: str, uses_port: str) -> None:
        usv = self.services_of(user_instance)
        if uses_port not in usv.used:
            raise KeyError(f"{user_instance} registered no uses port {uses_port!r}")
        usv._unbind(uses_port)

    # ------------------------------------------------------- replacement
    def replace_component(self, instance_name: str, new_cls: type[Component],
                          **kwargs: Any) -> Component:
        """Swap an instance for another implementation, preserving wiring.

        The new class must provide ports under the same names so existing
        connections can be re-established — the "switching in a similar
        component without affecting the rest of the application" property.
        """
        old_sv = self.services_of(instance_name)
        inbound = [
            (peer, name, up.name)
            for peer, psv in self._services.items()
            for name, up in psv.used.items()
            if up.provider_instance == instance_name
        ]
        # Record provider port name used for each inbound edge: the port
        # object identity maps back to a provided-port name.
        inbound_ports = []
        for peer, uses_name, _ in inbound:
            up = self._services[peer].used[uses_name]
            pname = next(
                (p.name for p in old_sv.provided.values() if p.impl is up.impl), None
            )
            if pname is None:
                raise RuntimeError(
                    f"cannot trace provided port for {peer}.{uses_name}; "
                    "was it connected outside the framework?"
                )
            inbound_ports.append((peer, uses_name, pname))
        outbound = [
            (up.name, up.provider_instance, up.impl)
            for up in old_sv.used.values()
            if up.impl is not None
        ]
        self.destroy(instance_name)
        comp = self.create(instance_name, new_cls, **kwargs)
        new_sv = self.services_of(instance_name)
        for uses_name, provider_instance, impl in outbound:
            if uses_name in new_sv.used:
                new_sv._bind(uses_name, impl, provider_instance)
        for peer, uses_name, pname in inbound_ports:
            self.connect(peer, uses_name, instance_name, pname)
        return comp

    # ------------------------------------------------------------ wiring
    def wiring_diagram(self) -> nx.MultiDiGraph:
        """Directed multigraph: user --(uses port name)--> provider."""
        g = nx.MultiDiGraph()
        for name, comp in self._components.items():
            g.add_node(name, component_class=type(comp).__name__,
                       functionality=type(comp).FUNCTIONALITY)
        for name, sv in self._services.items():
            for up in sv.used.values():
                if up.provider_instance is not None:
                    g.add_edge(name, up.provider_instance, port=up.name,
                               port_type=up.port_type.port_type_name())
        return g

    # ---------------------------------------------------------------- go
    def go(self, instance_name: str, provides_port: str = "go") -> int:
        """Fetch a component's GoPort and run the application."""
        port = self.provided_port(instance_name, provides_port)
        if not isinstance(port, GoPort):
            raise TypeError(f"{instance_name}.{provides_port} is not a GoPort")
        return port.go()
