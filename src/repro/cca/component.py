"""Component base class.

Paper Section 3.1: "All CCAFFEINE components are derived from a data-less
abstract class with one deferred method called setServices(Services *q).
All components implement the setServices method which is invoked by the
framework at component creation and is used by the components to register
themselves and their UsesPorts and ProvidesPorts."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cca.services import Services


class Component:
    """Abstract CCA component.

    Subclasses override :meth:`set_services` to declare their ports.  Two
    optional class attributes support performance-driven assembly:

    * ``FUNCTIONALITY`` — the abstract functionality this class implements
      (e.g. ``"flux"``); multiple classes sharing a FUNCTIONALITY are the
      paper's "multiple implementations of a component".
    * ``QUALITY`` — a scalar quality-of-service figure (e.g. accuracy) used
      by the QoS-aware assembly optimizer (paper Section 5's
      GodunovFlux-vs-EFMFlux discussion).
    """

    FUNCTIONALITY: str | None = None
    QUALITY: float = 1.0

    def set_services(self, services: "Services") -> None:
        """Register uses/provides ports; called once by the framework."""
        raise NotImplementedError

    def release(self) -> None:
        """Hook invoked when the framework destroys the component."""
