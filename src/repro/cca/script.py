"""Assembly scripts (paper Section 3.1).

"A CCAFFEINE code can be assembled and run through a script or a
Graphical User Interface (GUI)."  This module implements the script path:
a small line-oriented language closely following CCAFFEINE's ``rc`` files:

.. code-block:: text

    # the instrumented flux assembly
    instantiate StatesComponent states
    instantiate EFMFluxComponent flux
    instantiate InviscidFluxComponent inviscid
    connect inviscid states states states
    connect inviscid flux flux flux
    go driver go

Commands
--------
``instantiate <ClassName> <instance> [key=value ...]``
    Create a component from the framework's repository; ``key=value``
    pairs become constructor keyword arguments (parsed as Python literals).
``connect <user> <usesPort> <provider> [providesPort]``
    Wire ports (provider port name defaults to the uses port name).
``disconnect <user> <usesPort>``
``destroy <instance>``
``go <instance> [port]``
    Run a GoPort; the script result is the last ``go``'s return value.
``#`` starts a comment; blank lines are ignored.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any

from repro.cca.framework import Framework


class ScriptError(ValueError):
    """Raised on malformed script lines, with line-number context."""

    def __init__(self, lineno: int, line: str, message: str) -> None:
        super().__init__(f"line {lineno}: {message}\n    {line}")
        self.lineno = lineno


@dataclass
class ScriptResult:
    """What a script execution produced."""

    framework: Framework
    #: instance names created by the script, in order
    created: list[str] = field(default_factory=list)
    #: return value of the last ``go`` (None if the script never ran one)
    go_result: Any = None
    #: number of commands executed (excluding comments/blanks)
    commands: int = 0


def _parse_kwargs(tokens: list[str], lineno: int, line: str) -> dict[str, Any]:
    kwargs: dict[str, Any] = {}
    for tok in tokens:
        if "=" not in tok:
            raise ScriptError(lineno, line, f"expected key=value, got {tok!r}")
        key, _, raw = tok.partition("=")
        if not key.isidentifier():
            raise ScriptError(lineno, line, f"invalid keyword name {key!r}")
        try:
            kwargs[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            # Bare words are treated as strings (CCAFFEINE rc style).
            kwargs[key] = raw
    return kwargs


def run_script(framework: Framework, text: str) -> ScriptResult:
    """Execute an assembly script against a framework.

    Component class names resolve through the framework's repository — the
    scripting analog of loading shared objects by name at run time.
    """
    result = ScriptResult(framework=framework)
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        cmd, args = tokens[0], tokens[1:]
        try:
            if cmd == "instantiate":
                if len(args) < 2:
                    raise ScriptError(lineno, raw_line,
                                      "usage: instantiate <Class> <instance> [k=v ...]")
                cls_name, instance = args[0], args[1]
                kwargs = _parse_kwargs(args[2:], lineno, raw_line)
                framework.create(instance, cls_name, **kwargs)
                result.created.append(instance)
            elif cmd == "connect":
                if len(args) not in (3, 4):
                    raise ScriptError(lineno, raw_line,
                                      "usage: connect <user> <usesPort> <provider> [providesPort]")
                provides = args[3] if len(args) == 4 else None
                framework.connect(args[0], args[1], args[2], provides)
            elif cmd == "disconnect":
                if len(args) != 2:
                    raise ScriptError(lineno, raw_line,
                                      "usage: disconnect <user> <usesPort>")
                framework.disconnect(args[0], args[1])
            elif cmd == "destroy":
                if len(args) != 1:
                    raise ScriptError(lineno, raw_line, "usage: destroy <instance>")
                framework.destroy(args[0])
            elif cmd == "go":
                if len(args) not in (1, 2):
                    raise ScriptError(lineno, raw_line, "usage: go <instance> [port]")
                port = args[1] if len(args) == 2 else "go"
                result.go_result = framework.go(args[0], provides_port=port)
            else:
                raise ScriptError(lineno, raw_line, f"unknown command {cmd!r}")
        except ScriptError:
            raise
        except Exception as exc:
            raise ScriptError(lineno, raw_line, f"{type(exc).__name__}: {exc}") from exc
        result.commands += 1
    return result
