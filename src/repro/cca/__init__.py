"""CCA component framework (CCAFFEINE analog, paper Section 3.1).

Implements the provides/uses design pattern:

* components derive from :class:`Component` and implement one deferred
  method, ``set_services(services)``, invoked by the framework at creation;
* functionality is exchanged through :class:`Port` interfaces — a component
  *provides* ports (exports implementations) and *uses* ports (imports
  peers' implementations);
* a :class:`Framework` instantiates components (by class or by repository
  name, the analog of dynamically loading a shared object), connects ports
  (the movement of references from provider to user) and exports the wiring
  diagram the Mastermind needs for composite modeling;
* :func:`run_scmd` launches the SCMD model: identical frameworks containing
  the same components are instantiated on all P (simulated) processors,
  with :mod:`repro.mpi` between cohort instances.
"""

from repro.cca.ports import Port, GoPort, port_methods
from repro.cca.component import Component
from repro.cca.services import Services, PortNotConnectedError
from repro.cca.repository import ComponentRepository, register_component, default_repository
from repro.cca.framework import Framework, AbstractFrameworkPort
from repro.cca.scmd import run_scmd, ScmdResult
from repro.cca.script import run_script, ScriptError, ScriptResult

__all__ = [
    "Port",
    "GoPort",
    "port_methods",
    "Component",
    "Services",
    "PortNotConnectedError",
    "ComponentRepository",
    "register_component",
    "default_repository",
    "Framework",
    "AbstractFrameworkPort",
    "run_scmd",
    "ScmdResult",
    "run_script",
    "ScriptError",
    "ScriptResult",
]
