"""Port interfaces.

Paper Section 3.1: "Components also implement other data-less abstract
classes, called Ports, to allow access to their standard functionalities."
A Port subclass declares an interface as ordinary (abstract) methods; the
proxy generator introspects those methods via :func:`port_methods`.
"""

from __future__ import annotations

import inspect


class Port:
    """Data-less abstract base for all port interfaces.

    Subclass and declare methods; provider components implement the
    subclass.  Ports carry no state of their own (the CCA "data-less
    abstract class" discipline) — implementations, of course, may.
    """

    @classmethod
    def port_type_name(cls) -> str:
        """The interface's name (used in wiring diagrams and proxies)."""
        return cls.__name__


def port_methods(port_cls: type[Port]) -> list[str]:
    """Public methods declared by a Port interface (not inherited from Port).

    This is what proxy generation introspects: every method listed here is
    intercepted and forwarded.
    """
    if not (isinstance(port_cls, type) and issubclass(port_cls, Port)):
        raise TypeError(f"{port_cls!r} is not a Port subclass")
    base = set(dir(Port))
    names = []
    for name, member in inspect.getmembers(port_cls, callable):
        if name.startswith("_") or name in base:
            continue
        names.append(name)
    return sorted(names)


class GoPort(Port):
    """CCAFFEINE's standard entry-point port: the driver's ``go()``."""

    def go(self) -> int:
        """Run the application; return a status code (0 = success)."""
        raise NotImplementedError
