"""SCMD (Single Component Multiple Data) launcher.

Paper Section 3.1: "Identical frameworks, containing the same components,
are instantiated on all P processors.  Parallelism is implemented by
running the same component on all P processors and using MPI to communicate
between them.  P instances of a given component form a cohort."

:func:`run_scmd` realizes this over the thread-backed MPI simulator: each
rank builds a framework via the caller's ``compose`` function, then the
named driver component's GoPort is invoked inside a top-level ``main``
timer (the 100% row of the paper's Figure 3 profile).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cca.framework import Framework
from repro.cca.repository import ComponentRepository
from repro.mpi.network import NetworkModel
from repro.mpi.runner import ParallelRunner
from repro.mpi.world import SimWorld
from repro.tau.hardware import CacheModel
from repro.tau.profiler import Profiler
from repro.tau.timer import TimerStats

#: the top-level timer name, echoing Figure 3's ``int main(int, char **)``
MAIN_TIMER = "int main(int, char **)"


@dataclass
class ScmdResult:
    """Everything a run produced, per rank."""

    nranks: int
    #: per-rank values returned by the driver's go() (or compose result)
    results: list[Any]
    #: per-rank cumulative timer snapshots (feed to tau.function_summary)
    timer_snapshots: list[dict[str, TimerStats]]
    #: per-rank atomic event summaries
    event_summaries: list[dict[str, dict[str, float]]]
    #: per-rank hardware counter values
    counter_values: list[dict[str, int]]
    #: the simulated world — a :class:`SimWorld` (thread backend) or a
    #: :class:`~repro.mpi.backend.WorldView` (process backends); either
    #: way, per-rank MPI accounting/obs/sanitizer findings live here
    world: SimWorld | Any | None = None
    #: optional per-rank extra payloads filled by compose/go
    extras: list[Any] = field(default_factory=list)


def run_scmd(
    nranks: int,
    compose: Callable[[Framework], Any],
    go_instance: str | None = None,
    *,
    network: NetworkModel | None = None,
    seed: int | None = 0,
    cache: CacheModel | None = None,
    repository: ComponentRepository | None = None,
    timeout_s: float = 300.0,
    extract: Callable[[Framework], Any] | None = None,
    fault_plan=None,
    resilience=None,
    observe=None,
    sanitize=None,
    backend: str = "thread",
    collectives: str | None = None,
) -> ScmdResult:
    """Run a component application on ``nranks`` simulated processors.

    Parameters
    ----------
    compose:
        Called once per rank with that rank's :class:`Framework`; it
        creates and connects components (the paper's assembly script/GUI).
        Its return value is used as the rank result when ``go_instance`` is
        None.
    go_instance:
        Instance name of the driver component providing a ``go`` port; when
        given, its ``go()`` return value is the rank result.
    extract:
        Called with each rank's framework after ``go`` completes; its
        return value lands in ``ScmdResult.extras[rank]``.  Use it to pull
        measurement records (e.g. the Mastermind's) out of rank threads.
    fault_plan:
        A :class:`~repro.faults.plan.FaultPlan` to inject (a shared
        :class:`~repro.faults.injector.FaultInjector` is built and attached
        to the world); None runs fault-free.
    resilience:
        A :class:`~repro.faults.policy.ResiliencePolicy` enabling bounded
        retry/recovery in the MPI layer and the proxies; None keeps the
        non-resilient semantics.
    observe:
        An :class:`~repro.obs.runtime.ObsConfig` turning on span tracing
        and metrics: each rank gets a span tracer (every TAU timer
        bracketing — including the Mastermind's proxied invocations — and
        every MPI operation becomes a span, with matched sends/recvs and
        collectives linked as causal cross-rank edges) plus a metrics
        registry.  Collect results from ``ScmdResult.world.obs`` via
        :func:`repro.obs.collect`.  None (default) traces nothing.
    sanitize:
        A :class:`~repro.analysis.sanitize.SanitizerConfig` enabling the
        runtime MPI sanitizers (collective ordering, p2p hygiene, deadlock
        and ghost-race detection); findings land on
        ``ScmdResult.world.sanitizer.findings``.  None (default) checks
        nothing.
    backend:
        Communicator backend name (:mod:`repro.mpi.backend`): ``"thread"``
        (default) runs ranks as threads, ``"mp-shm"`` as real processes
        over shared-memory rings — same modeled results, real parallelism.
    collectives:
        Collective-algorithm family: None keeps the legacy rendezvous cost
        model, ``"flat"`` charges its honest linear-in-P cost, ``"hier"``
        uses tree algorithms (binomial/recursive-doubling/ring) in both
        data movement and modeled cost.
    """
    injector = None
    if fault_plan is not None:
        from repro.faults.injector import FaultInjector
        injector = FaultInjector(fault_plan, nranks)
    runner = ParallelRunner(nranks, network=network, seed=seed,
                            timeout_s=timeout_s, injector=injector,
                            policy=resilience, obs_config=observe,
                            sanitize=sanitize, backend=backend,
                            collectives=collectives)

    def rank_main(comm) -> tuple[Any, dict, dict, dict, Any]:
        obs = comm.obs
        profiler = Profiler(rank=comm.rank, cache=cache,
                            span_tracer=obs.tracer if obs is not None else None)
        fw = Framework(rank=comm.rank, comm=comm, profiler=profiler,
                       repository=repository, obs=obs)
        with profiler.timer(MAIN_TIMER):
            composed = compose(fw)
            if go_instance is not None:
                result = fw.go(go_instance)
            else:
                result = composed
        extra = extract(fw) if extract is not None else None
        return (
            result,
            profiler.timers_snapshot(),
            profiler.events.summaries(),
            profiler.counters.read(),
            extra,
        )

    outs = runner.run(rank_main)
    return ScmdResult(
        nranks=nranks,
        results=[o[0] for o in outs],
        timer_snapshots=[o[1] for o in outs],
        event_summaries=[o[2] for o in outs],
        counter_values=[o[3] for o in outs],
        world=runner.last_world,
        extras=[o[4] for o in outs],
    )
