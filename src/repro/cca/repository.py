"""Component repository: the shared-object palette.

In CCAFFEINE every component is compiled into a shared library loaded at
run time; here the repository maps component class names to Python classes
so applications can be assembled from names in a script, and so the
assembly optimizer can enumerate "multiple implementations of a component"
(classes sharing a FUNCTIONALITY tag).
"""

from __future__ import annotations

from repro.cca.component import Component


class ComponentRepository:
    """Name -> component class registry with functionality indexing."""

    def __init__(self) -> None:
        self._classes: dict[str, type[Component]] = {}

    def register(self, cls: type[Component], name: str | None = None) -> type[Component]:
        """Register ``cls`` under ``name`` (default: the class name)."""
        if not (isinstance(cls, type) and issubclass(cls, Component)):
            raise TypeError(f"{cls!r} is not a Component subclass")
        key = name or cls.__name__
        existing = self._classes.get(key)
        if existing is not None and existing is not cls:
            raise ValueError(f"component name {key!r} already registered to {existing!r}")
        self._classes[key] = cls
        return cls

    def get(self, name: str) -> type[Component]:
        """Look up a component class by registered name."""
        try:
            return self._classes[name]
        except KeyError:
            raise KeyError(
                f"component {name!r} not in repository; known: {sorted(self._classes)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._classes)

    def implementations_of(self, functionality: str) -> dict[str, type[Component]]:
        """All registered classes whose FUNCTIONALITY matches.

        This is the optimizer's search space: with n components each having
        C_i implementations there are prod(C_i) assemblies to choose from.
        """
        return {
            name: cls
            for name, cls in self._classes.items()
            if cls.FUNCTIONALITY == functionality
        }


#: Process-wide default repository; `@register_component` targets it.
default_repository = ComponentRepository()


def register_component(name: str | None = None, repository: ComponentRepository | None = None):
    """Class decorator: register a component class in a repository.

    >>> @register_component()
    ... class MyComp(Component): ...
    """
    repo = repository or default_repository

    def deco(cls: type[Component]) -> type[Component]:
        return repo.register(cls, name)

    return deco
