"""Per-component Services handle.

The framework hands each component a :class:`Services` object in
``set_services``; the component uses it to declare ProvidesPorts (export an
implementation object under a port name) and UsesPorts (declare a
dependency to be satisfied by a framework ``connect``), and later to fetch
connected ports with :meth:`get_port`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cca.ports import Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.cca.framework import Framework


class PortNotConnectedError(RuntimeError):
    """Raised when a component fetches a uses port that is not connected."""


@dataclass
class ProvidedPort:
    """A port implementation exported by a component."""

    name: str
    port_type: type[Port]
    impl: Port


@dataclass
class UsedPort:
    """A declared dependency, satisfied (or not) by a connection."""

    name: str
    port_type: type[Port]
    impl: Port | None = None
    provider_instance: str | None = None


class Services:
    """The registration/lookup surface a component sees."""

    def __init__(self, instance_name: str, framework: "Framework") -> None:
        self.instance_name = instance_name
        self.framework = framework
        self.provided: dict[str, ProvidedPort] = {}
        self.used: dict[str, UsedPort] = {}

    # ---------------------------------------------------------- provides
    def add_provides_port(self, impl: Port, name: str, port_type: type[Port]) -> None:
        """Export ``impl`` (an object implementing ``port_type``) as ``name``."""
        if name in self.provided:
            raise ValueError(f"{self.instance_name}: provides port {name!r} already registered")
        if not isinstance(impl, port_type):
            raise TypeError(
                f"{self.instance_name}: provides port {name!r} implementation "
                f"{type(impl).__name__} does not implement {port_type.__name__}"
            )
        self.provided[name] = ProvidedPort(name=name, port_type=port_type, impl=impl)

    # -------------------------------------------------------------- uses
    def register_uses_port(self, name: str, port_type: type[Port]) -> None:
        """Declare that this component will call through port ``name``."""
        if name in self.used:
            raise ValueError(f"{self.instance_name}: uses port {name!r} already registered")
        if not (isinstance(port_type, type) and issubclass(port_type, Port)):
            raise TypeError(f"uses port type must be a Port subclass, got {port_type!r}")
        self.used[name] = UsedPort(name=name, port_type=port_type)

    def get_port(self, name: str) -> Port:
        """Fetch the connected implementation behind uses port ``name``.

        This is the "virtual function call overhead before the actual
        implemented method" boundary — and where proxies interpose.
        """
        # Framework-builtin ports (AbstractFramework, MPI) short-circuit.
        builtin = self.framework.builtin_port(name)
        if builtin is not None:
            return builtin
        try:
            up = self.used[name]
        except KeyError:
            raise PortNotConnectedError(
                f"{self.instance_name}: uses port {name!r} was never registered"
            ) from None
        if up.impl is None:
            raise PortNotConnectedError(
                f"{self.instance_name}: uses port {name!r} is not connected"
            )
        return up.impl

    # ------------------------------------------------- framework plumbing
    def _bind(self, name: str, impl: Port, provider_instance: str) -> None:
        up = self.used[name]
        if not isinstance(impl, up.port_type):
            raise TypeError(
                f"cannot connect {provider_instance} to {self.instance_name}.{name}: "
                f"{type(impl).__name__} does not implement {up.port_type.__name__}"
            )
        up.impl = impl
        up.provider_instance = provider_instance

    def _unbind(self, name: str) -> None:
        up = self.used[name]
        up.impl = None
        up.provider_instance = None
