"""Measurement snapshots for before/after differencing.

Paper Section 4.3: "TAU measurements are made cumulatively, so in order to
obtain the measurements for a single invocation, measurements must be made
prior to the invocation and again after the invocation.  ...  The
measurements for the single invocation are determined by the difference."

:class:`MeasurementSnapshot` captures the three cumulative quantities the
Mastermind differences: wall time, MPI time (summation of all MPI routine
timers) and the hardware counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tau.profiler import MPI_GROUP, Profiler
from repro.util.timebase import now_us


@dataclass(frozen=True)
class MeasurementSnapshot:
    """Point-in-time cumulative readings from a rank's profiler."""

    wall_us: float
    mpi_us: float
    counters: dict[str, int] = field(default_factory=dict)

    @classmethod
    def capture(cls, profiler: Profiler) -> "MeasurementSnapshot":
        """Read the current cumulative values (the TAU query interface)."""
        return cls(
            wall_us=now_us(),
            mpi_us=profiler.group_total_us(MPI_GROUP),
            counters=profiler.counters.read(),
        )

    def delta(self, later: "MeasurementSnapshot") -> "InvocationMeasurement":
        """Difference two snapshots into a single-invocation measurement."""
        wall = later.wall_us - self.wall_us
        mpi = later.mpi_us - self.mpi_us
        if wall < 0 or mpi < 0:
            raise ValueError("snapshot delta is negative; snapshots out of order")
        dctr = {
            k: later.counters.get(k, 0) - self.counters.get(k, 0)
            for k in set(self.counters) | set(later.counters)
        }
        return InvocationMeasurement(wall_us=wall, mpi_us=mpi, counters=dctr)


@dataclass(frozen=True)
class InvocationMeasurement:
    """Per-invocation measurement (paper Section 3.2's minimal data set).

    ``compute_us`` is "the difference between the above" — total execution
    time minus message-passing time, the cache-sensitive quantity.
    """

    wall_us: float
    mpi_us: float
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def compute_us(self) -> float:
        """Computation time: wall minus MPI (floored at 0 — the modeled MPI
        cost can exceed the physical wall time in the simulator)."""
        return max(0.0, self.wall_us - self.mpi_us)
