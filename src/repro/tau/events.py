"""Atomic (user-defined) events.

Paper Section 4.1: "The event interface helps track application and runtime
system level atomic events.  For each event of a given name, the minimum,
maximum, mean, standard deviation and number of entries are recorded."

Streaming mean/variance use Welford's algorithm for numerical stability.
"""

from __future__ import annotations

import math


class AtomicEvent:
    """Streaming statistics for one named event."""

    __slots__ = ("name", "count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value: float) -> None:
        """Record one occurrence of the event with ``value``."""
        v = float(value)
        self.count += 1
        delta = v - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (v - self._mean)
        self.minimum = min(self.minimum, v)
        self.maximum = max(self.maximum, v)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation (0 for fewer than 2 entries)."""
        return math.sqrt(self._m2 / self.count) if self.count >= 2 else 0.0

    def summary(self) -> dict[str, float]:
        """The paper's five statistics as a dict."""
        return {
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "std": self.std,
            "count": float(self.count),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AtomicEvent({self.name!r}, n={self.count}, mean={self.mean:.3g}, "
            f"std={self.std:.3g}, min={self.minimum:.3g}, max={self.maximum:.3g})"
        )


class EventRegistry:
    """Named collection of atomic events."""

    def __init__(self) -> None:
        self._events: dict[str, AtomicEvent] = {}

    def event(self, name: str) -> AtomicEvent:
        """Get or create the event called ``name``."""
        ev = self._events.get(name)
        if ev is None:
            ev = self._events[name] = AtomicEvent(name)
        return ev

    def record(self, name: str, value: float) -> None:
        self.event(name).record(value)

    def names(self) -> list[str]:
        return sorted(self._events)

    def summaries(self) -> dict[str, dict[str, float]]:
        return {n: e.summary() for n, e in self._events.items()}
