"""PAPI/PCL-analog hardware counters backed by an explicit cache model.

The paper's TAU component reads "hardware performance metrics such as data
cache misses and floating point instructions executed" through PAPI.  We
have no MSR access from portable Python, so counters are *fed by the
kernels themselves*: each computational kernel reports the arrays it
touched (size, element width, access pattern) and the floating-point
operations it executed, and :class:`CacheModel` converts accesses into
estimated hit/miss counts for a direct-mapped-like cache of configurable
capacity.

The model captures exactly the effects the paper leans on:

* a **sequential** pass over ``n`` elements misses once per cache line;
* a **strided** pass (stride >= one line) misses on every access once the
  working set exceeds capacity, but hits on re-traversal while the array is
  cache-resident — producing the strided/sequential cost ratio of ~1 for
  small arrays rising toward line_bytes/elem_bytes for large ones
  (Figures 4-5).

DESIGN.md's ablation halves the capacity to show model-coefficient shifts
with stable functional form (paper Section 6).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.util.validation import check_positive

# Canonical PAPI-style counter names used throughout the package.
PAPI_FP_OPS = "PAPI_FP_OPS"
PAPI_L2_DCM = "PAPI_L2_DCM"  # data cache misses
PAPI_L2_DCH = "PAPI_L2_DCH"  # data cache hits
PAPI_LD_INS = "PAPI_LD_INS"  # load instructions (array element reads)


class AccessPattern(enum.Enum):
    """How a kernel walks an array."""

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    RANDOM = "random"


@dataclass(frozen=True)
class CacheModel:
    """Analytic cache hit/miss estimator.

    Parameters mirror the paper's testbed L2 (512 kB, 64-byte lines).
    """

    capacity_bytes: int = 512 * 1024
    line_bytes: int = 64

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("line_bytes", self.line_bytes)
        if self.line_bytes > self.capacity_bytes:
            raise ValueError("cache line larger than cache capacity")

    # ------------------------------------------------------------------ #
    def lines_for(self, nbytes: int) -> int:
        """Number of cache lines spanned by ``nbytes`` of contiguous data."""
        return max(1, math.ceil(nbytes / self.line_bytes)) if nbytes > 0 else 0

    def resident(self, nbytes: int) -> bool:
        """Does a working set of ``nbytes`` fit in the cache?"""
        return nbytes <= self.capacity_bytes

    def access_counts(
        self,
        n_elements: int,
        elem_bytes: int = 8,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        stride_elements: int = 1,
        passes: int = 1,
    ) -> tuple[int, int]:
        """Estimate ``(hits, misses)`` for walking an array.

        ``passes`` counts complete traversals of the same array (a stencil
        kernel typically reads its input a few times).
        """
        if n_elements < 0:
            raise ValueError(f"n_elements must be >= 0, got {n_elements}")
        check_positive("elem_bytes", elem_bytes)
        check_positive("passes", passes)
        check_positive("stride_elements", stride_elements)
        if n_elements == 0:
            return (0, 0)

        total_bytes = n_elements * elem_bytes
        accesses_per_pass = n_elements
        total_accesses = accesses_per_pass * passes

        if pattern is AccessPattern.SEQUENTIAL or (
            pattern is AccessPattern.STRIDED
            and stride_elements * elem_bytes < self.line_bytes
        ):
            # One (compulsory) miss per line on the first pass; later passes
            # hit if resident, miss once per line again otherwise.
            lines = self.lines_for(total_bytes)
            if self.resident(total_bytes):
                misses = lines
            else:
                misses = lines * passes
        elif pattern is AccessPattern.STRIDED:
            # Every access touches a new line.  Re-traversals hit only if
            # the whole footprint is resident.
            if self.resident(total_bytes):
                misses = accesses_per_pass
            else:
                misses = total_accesses
        else:  # RANDOM
            if self.resident(total_bytes):
                misses = self.lines_for(total_bytes)
            else:
                # Probability an access hits ~ capacity fraction resident.
                p_hit = self.capacity_bytes / total_bytes
                misses = int(round(total_accesses * (1.0 - p_hit)))
        misses = min(misses, total_accesses)
        return (total_accesses - misses, misses)

    def miss_ratio(self, n_elements: int, **kwargs) -> float:
        """Convenience: fraction of accesses that miss."""
        hits, misses = self.access_counts(n_elements, **kwargs)
        total = hits + misses
        return misses / total if total else 0.0


class HardwareCounters:
    """Cumulative PAPI-style counter set for one rank.

    Kernels report their work through :meth:`record_array_walk` and
    :meth:`record_flops`; the Mastermind differences :meth:`read` snapshots
    around a method invocation to get per-invocation metrics.
    """

    def __init__(self, cache: CacheModel | None = None) -> None:
        self.cache = cache or CacheModel()
        self._counters: dict[str, int] = {}

    def increment(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero on first use)."""
        if value < 0:
            raise ValueError(f"counter increment must be >= 0, got {value}")
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def record_flops(self, n: int) -> None:
        """Report ``n`` floating point operations executed."""
        self.increment(PAPI_FP_OPS, n)

    def record_array_walk(
        self,
        n_elements: int,
        elem_bytes: int = 8,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        stride_elements: int = 1,
        passes: int = 1,
    ) -> None:
        """Report an array traversal; cache model converts it to hits/misses."""
        hits, misses = self.cache.access_counts(
            n_elements, elem_bytes, pattern, stride_elements, passes
        )
        self.increment(PAPI_L2_DCH, hits)
        self.increment(PAPI_L2_DCM, misses)
        self.increment(PAPI_LD_INS, hits + misses)

    def read(self) -> dict[str, int]:
        """Snapshot of all cumulative counter values."""
        return dict(self._counters)

    def value(self, name: str) -> int:
        """Current value of one counter (0 if never incremented)."""
        return self._counters.get(name, 0)
