"""FUNCTION SUMMARY rendering (paper Figure 3).

Averages per-rank timer snapshots ("Timings have been averaged over all the
processors") and renders the TAU-style mean summary table with the same
columns: %Time, exclusive msec, inclusive total msec, #Call, inclusive
usec/call, name.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.tau.timer import TimerStats
from repro.util.tabular import format_table


def merge_snapshots(snapshots: Sequence[Mapping[str, TimerStats]]) -> dict[str, TimerStats]:
    """Mean-over-ranks merge of per-rank timer snapshots.

    Timers absent on a rank contribute zero (divisor is always the number
    of ranks, as TAU's mean profile does).
    """
    if not snapshots:
        raise ValueError("no snapshots to merge")
    n = len(snapshots)
    merged: dict[str, TimerStats] = {}
    for snap in snapshots:
        for name, stats in snap.items():
            acc = merged.get(name)
            if acc is None:
                merged[name] = acc = TimerStats(name=name, group=stats.group)
            acc.add(stats)
    for stats in merged.values():
        stats.inclusive_us /= n
        stats.exclusive_us /= n
        # Keep calls an int: mean calls rounded like TAU's fractional
        # "#Call" column would show; we preserve the fractional value in
        # usec/call by dividing inclusive first.
        stats.calls = stats.calls  # total calls across ranks
    return merged


def summary_rows(
    merged: Mapping[str, TimerStats],
    nranks: int = 1,
    total_name: str | None = None,
) -> list[tuple[float, float, float, float, float, str]]:
    """Figure 3 rows sorted by inclusive time, descending.

    Returns ``(pct_time, excl_msec, incl_msec, mean_calls, usec_per_call,
    name)`` tuples.  ``total_name`` selects the 100% reference timer; by
    default the largest inclusive time is used (the ``main`` timer in the
    paper's profile).
    """
    if not merged:
        return []
    if total_name is not None:
        if total_name not in merged:
            raise KeyError(f"total timer {total_name!r} not present in profile")
        total_us = merged[total_name].inclusive_us
    else:
        total_us = max(t.inclusive_us for t in merged.values())
    rows = []
    for t in sorted(merged.values(), key=lambda s: -s.inclusive_us):
        mean_calls = t.calls / nranks
        usec_per_call = t.inclusive_us / mean_calls if mean_calls else 0.0
        pct = 100.0 * t.inclusive_us / total_us if total_us > 0 else 0.0
        rows.append((pct, t.exclusive_us / 1000.0, t.inclusive_us / 1000.0,
                     mean_calls, usec_per_call, t.name))
    return rows


def function_summary(
    snapshots: Sequence[Mapping[str, TimerStats]],
    total_name: str | None = None,
) -> str:
    """Render the mean FUNCTION SUMMARY table across ranks."""
    merged = merge_snapshots(snapshots)
    rows = summary_rows(merged, nranks=len(snapshots), total_name=total_name)
    table_rows = [
        (f"{pct:5.1f}", f"{excl:,.0f}", f"{incl:,.0f}", f"{calls:g}", f"{upc:,.0f}", name)
        for pct, excl, incl, calls, upc, name in rows
    ]
    return format_table(
        ["%Time", "Exclusive msec", "Inclusive total msec", "#Call", "usec/call", "Name"],
        table_rows,
        title="FUNCTION SUMMARY (mean):",
    )
