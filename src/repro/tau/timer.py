"""Timer statistics records.

TAU profiling semantics (paper Section 4.1 / Figure 3):

* **inclusive** time — total time spent in a region including all nested
  instrumented regions and charged (MPI) costs;
* **exclusive** time — inclusive minus time attributed to nested regions;
* **calls** — number of start/stop bracketings (or direct charges).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TimerStats:
    """Cumulative statistics for one named timer."""

    name: str
    group: str = "default"
    inclusive_us: float = 0.0
    exclusive_us: float = 0.0
    calls: int = 0

    @property
    def usec_per_call(self) -> float:
        """Mean inclusive microseconds per call (0 when never called)."""
        return self.inclusive_us / self.calls if self.calls else 0.0

    def copy(self) -> "TimerStats":
        return TimerStats(self.name, self.group, self.inclusive_us, self.exclusive_us, self.calls)

    def add(self, other: "TimerStats") -> None:
        """Accumulate another timer's stats (used for cross-rank merging)."""
        if other.name != self.name:
            raise ValueError(f"cannot merge timer {other.name!r} into {self.name!r}")
        self.inclusive_us += other.inclusive_us
        self.exclusive_us += other.exclusive_us
        self.calls += other.calls


@dataclass
class _Frame:
    """Live stack frame for a started timer."""

    name: str
    start_us: float
    child_us: float = 0.0
    reentrant: bool = False
    #: the observability span opened for this frame (None when tracing is
    #: off or the span was sampled out)
    span: object | None = None
