"""TAU-analog measurement library (paper Section 4.1).

Provides the four interfaces the paper's TAU component exposes through its
MeasurementPort:

* **timing** — create/name/start/stop/group timers with inclusive and
  exclusive wall-clock accumulation (:class:`Profiler`);
* **events** — atomic events tracking min/max/mean/std/count
  (:class:`AtomicEvent`);
* **control** — enable/disable all timers of a group at runtime
  (e.g. every MPI timer via the ``"MPI"`` group);
* **query** — read current cumulative metric values so the Mastermind can
  difference before/after snapshots (:class:`MeasurementSnapshot`).

Hardware metrics come from :mod:`repro.tau.hardware`, a PAPI-like layer
backed by an explicit cache model (see DESIGN.md substitutions).  Profiles
dump to TAU-style ``profile.<rank>`` files, and
:func:`repro.tau.summary.function_summary` renders the paper's Figure 3
"FUNCTION SUMMARY (mean)" table.
"""

from repro.tau.timer import TimerStats
from repro.tau.trace import Tracer, TraceRecord, TraceKind, merge_traces, region_durations
from repro.tau.events import AtomicEvent, EventRegistry
from repro.tau.hardware import CacheModel, HardwareCounters, AccessPattern
from repro.tau.profiler import Profiler
from repro.tau.query import MeasurementSnapshot
from repro.tau.summary import function_summary, merge_snapshots

__all__ = [
    "TimerStats",
    "Tracer",
    "TraceRecord",
    "TraceKind",
    "merge_traces",
    "region_durations",
    "AtomicEvent",
    "EventRegistry",
    "CacheModel",
    "HardwareCounters",
    "AccessPattern",
    "Profiler",
    "MeasurementSnapshot",
    "function_summary",
    "merge_snapshots",
]
