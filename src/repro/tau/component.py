"""The TAU component (paper Section 4.1).

Wraps the rank's :class:`~repro.tau.profiler.Profiler` as a CCA component
"accessed via a MeasurementPort, which defines interfaces for timing, event
management, timer control and measurement query".
"""

from __future__ import annotations

from repro.cca.component import Component
from repro.cca.ports import Port
from repro.cca.services import Services
from repro.tau.profiler import Profiler
from repro.tau.query import MeasurementSnapshot


class MeasurementPort(Port):
    """Timing + event + control + query interface of the TAU component."""

    # -- timing interface
    def start_timer(self, name: str, group: str = "default") -> None:
        raise NotImplementedError

    def stop_timer(self, name: str) -> None:
        raise NotImplementedError

    # -- event interface
    def record_event(self, name: str, value: float) -> None:
        raise NotImplementedError

    # -- control interface
    def enable_group(self, group: str) -> None:
        raise NotImplementedError

    def disable_group(self, group: str) -> None:
        raise NotImplementedError

    # -- query interface
    def query(self) -> MeasurementSnapshot:
        raise NotImplementedError

    def dump(self, path: str) -> None:
        raise NotImplementedError


class _MeasurementImpl(MeasurementPort):
    """MeasurementPort implementation over a Profiler."""

    def __init__(self, profiler: Profiler) -> None:
        self._profiler = profiler

    @property
    def profiler(self) -> Profiler:
        return self._profiler

    def start_timer(self, name: str, group: str = "default") -> None:
        self._profiler.start(name, group)

    def stop_timer(self, name: str) -> None:
        self._profiler.stop(name)

    def record_event(self, name: str, value: float) -> None:
        self._profiler.events.record(name, value)

    def enable_group(self, group: str) -> None:
        self._profiler.enable_group(group)

    def disable_group(self, group: str) -> None:
        self._profiler.disable_group(group)

    def query(self) -> MeasurementSnapshot:
        """Current cumulative wall/MPI/counter values (Section 4.3's reads)."""
        return MeasurementSnapshot.capture(self._profiler)

    def dump(self, path: str) -> None:
        self._profiler.dump(path)


class TauMeasurementComponent(Component):
    """CCA component exporting the rank profiler as ``"measurement"``.

    By default it adopts the framework's per-rank profiler (so MPI charges
    routed by the framework are visible through the query interface); a
    dedicated profiler may be injected for isolation in tests.
    """

    #: name under which the MeasurementPort is provided
    PORT_NAME = "measurement"

    def __init__(self, profiler: Profiler | None = None) -> None:
        self._own_profiler = profiler
        self._impl: _MeasurementImpl | None = None

    def set_services(self, services: Services) -> None:
        profiler = self._own_profiler or services.framework.profiler
        self._impl = _MeasurementImpl(profiler)
        services.add_provides_port(self._impl, self.PORT_NAME, MeasurementPort)

    @property
    def measurement(self) -> _MeasurementImpl:
        if self._impl is None:
            raise RuntimeError("TauMeasurementComponent not yet initialized by a framework")
        return self._impl
