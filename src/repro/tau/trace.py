"""Event tracing (the TAU component's second measurement option).

Paper Section 4.1: "The TAU implementation of this generic performance
component interface supports both profiling and tracing measurement
options."  Profiling (cumulative aggregates) lives in
:mod:`repro.tau.profiler`; this module adds the tracing option: a
timestamped stream of ENTER/EXIT/EVENT records per rank, dumpable to a
simple text format and mergeable across ranks for timeline analysis.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.util.atomicio import atomic_write_text
from repro.util.timebase import now_us

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.span import FlowPoint, Span


class TraceKind(enum.Enum):
    ENTER = "ENTER"
    EXIT = "EXIT"
    EVENT = "EVENT"


@dataclass(frozen=True)
class TraceRecord:
    """One timeline record."""

    t_us: float
    rank: int
    kind: TraceKind
    name: str
    value: float = 0.0

    def format(self) -> str:
        return f"{self.t_us:.3f}\t{self.rank}\t{self.kind.value}\t{self.name}\t{self.value:.6g}"


class Tracer:
    """Per-rank trace recorder with a bounded buffer.

    When the buffer fills, the oldest records are dropped and
    ``dropped_count`` reflects it — a tracer must never grow unboundedly
    inside a long simulation.
    """

    def __init__(self, rank: int = 0, max_records: int = 100_000,
                 clock: Callable[[], float] = now_us) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.rank = int(rank)
        self.max_records = int(max_records)
        self._clock = clock
        self._records: list[TraceRecord] = []
        self.dropped_count = 0

    # ------------------------------------------------------------------ #
    def _append(self, record: TraceRecord) -> None:
        if len(self._records) >= self.max_records:
            # Drop the oldest half in one go (amortized O(1) per record).
            keep = self.max_records // 2
            self.dropped_count += len(self._records) - keep
            self._records = self._records[-keep:]
        self._records.append(record)

    def enter(self, name: str) -> None:
        """Record region entry."""
        self._append(TraceRecord(self._clock(), self.rank, TraceKind.ENTER, name))

    def exit(self, name: str) -> None:
        """Record region exit."""
        self._append(TraceRecord(self._clock(), self.rank, TraceKind.EXIT, name))

    def event(self, name: str, value: float = 0.0) -> None:
        """Record an instantaneous event with an optional value."""
        self._append(TraceRecord(self._clock(), self.rank, TraceKind.EVENT, name, value))

    # ------------------------------------------------------------------ #
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def dump(self, path: str) -> None:
        """Write the trace as tab-separated text (t, rank, kind, name, value).

        The write is atomic (temp file + ``os.replace``): a crash mid-dump
        leaves any previous trace file intact.
        """
        lines = ["# t_us\trank\tkind\tname\tvalue"]
        lines += [rec.format() for rec in self._records]
        if self.dropped_count:
            # A truncated trace must say so loudly, not render as a
            # deceptively short timeline.
            lines.append(f"# TRUNCATED: {self.dropped_count} oldest record(s) dropped")
        atomic_write_text(path, "\n".join(lines) + "\n")


def merge_traces(traces: Iterable[Tracer]) -> list[TraceRecord]:
    """Merge per-rank traces into one time-ordered stream."""
    merged: list[TraceRecord] = []
    for tr in traces:
        merged.extend(tr.records())
    merged.sort(key=lambda r: (r.t_us, r.rank))
    return merged


def _truncation_events(dropped_counts: Mapping[int, int] | None) -> list[dict]:
    """Loud per-rank instant events announcing dropped history."""
    events: list[dict] = []
    for rank, n in sorted((dropped_counts or {}).items()):
        if n:
            events.append({
                "name": f"TRACE TRUNCATED: rank {rank} dropped {n} record(s)",
                "ph": "i", "s": "g", "pid": 0, "tid": rank, "ts": 0.0,
                "args": {"dropped": n},
            })
    return events


def chrome_trace_events(records: Iterable[TraceRecord],
                        process_name: str = "repro",
                        dropped_counts: Mapping[int, int] | None = None) -> list[dict]:
    """Render trace records as Chrome Trace Event Format objects.

    The produced JSON loads directly into ``chrome://tracing`` or Perfetto
    (https://ui.perfetto.dev).  Mapping: ranks become threads (``tid``),
    ENTER/EXIT become duration-begin/end phases (``"B"``/``"E"``) and EVENT
    records — including injected faults, retries, recoveries and
    checkpoints — become instant events (``"i"``) with their value in
    ``args``.  Timestamps are microseconds, which is also Chrome's native
    trace unit.
    """
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": process_name},
    }]
    events.extend(_truncation_events(dropped_counts))
    seen_ranks: set[int] = set()
    for rec in records:
        if rec.rank not in seen_ranks:
            seen_ranks.add(rec.rank)
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rec.rank,
                "args": {"name": f"rank {rec.rank}"},
            })
        base = {"name": rec.name, "pid": 0, "tid": rec.rank, "ts": rec.t_us}
        if rec.kind is TraceKind.ENTER:
            events.append({**base, "ph": "B"})
        elif rec.kind is TraceKind.EXIT:
            events.append({**base, "ph": "E"})
        else:
            events.append({**base, "ph": "i", "s": "t",
                           "args": {"value": rec.value}})
    return events


def dump_chrome_trace(records: Iterable[TraceRecord], path: str,
                      process_name: str = "repro",
                      dropped_counts: Mapping[int, int] | None = None) -> str:
    """Atomically write records as a Chrome/Perfetto trace JSON file."""
    payload = {
        "traceEvents": chrome_trace_events(records, process_name=process_name,
                                           dropped_counts=dropped_counts),
        "displayTimeUnit": "ms",
    }
    if dropped_counts and any(dropped_counts.values()):
        payload["otherData"] = {"dropped_records": {
            str(r): n for r, n in sorted(dropped_counts.items()) if n}}
    return atomic_write_text(path, json.dumps(payload, indent=1))


# ------------------------------------------------------------------ spans
def _span_depth(span: "Span", by_id: Mapping[int, "Span"]) -> int:
    depth, pid = 0, span.parent_id
    while pid is not None and depth < 64:
        anc = by_id.get(pid)
        if anc is None:
            break
        depth, pid = depth + 1, anc.parent_id
    return depth


def chrome_trace_from_spans(spans: Sequence["Span"],
                            flows: Sequence["FlowPoint"] = (),
                            process_name: str = "repro",
                            dropped_counts: Mapping[int, int] | None = None,
                            ) -> list[dict]:
    """Render spans + causal flow edges as Chrome/Perfetto trace events.

    Spans become balanced ``"B"``/``"E"`` duration pairs on their rank's
    thread track.  Flow points become Perfetto flow events: each matched
    p2p pair is an ``"s"``(send span) → ``"f"``(recv span) arrow, and
    each collective draws arrows from the last-arriving participant (the
    rank whose arrival unblocked the rendezvous) to every other
    participant — the cross-rank causal edges the flat exporter above
    cannot express.  Events are sorted so timestamps are globally
    monotone and same-timestamp events close inner-before-outer and open
    outer-before-inner, keeping every track's B/E stream balanced.
    """
    from repro.obs.critical_path import flow_edges

    by_id = {s.span_id: s for s in spans}
    meta: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    meta.extend(_truncation_events(dropped_counts))
    for rank in sorted({s.rank for s in spans}):
        meta.append({"name": "thread_name", "ph": "M", "pid": 0, "tid": rank,
                     "args": {"name": f"rank {rank}"}})

    # Sort keys: (ts, kind) with kind ordering E(0) < s/f flows(1) < B(2);
    # among E's, deeper spans close first; among B's, shallower open first.
    keyed: list[tuple[float, int, int, dict]] = []
    for s in spans:
        depth = _span_depth(s, by_id)
        t_end = s.t_end_us if s.t_end_us > s.t_start_us else s.t_start_us + 1e-3
        args = {"span_id": s.span_id, "category": s.category}
        if s.attrs:
            args.update(s.attrs)
        base = {"name": s.name, "cat": s.category, "pid": 0, "tid": s.rank}
        keyed.append((s.t_start_us, 2, depth, {**base, "ph": "B",
                                               "ts": s.t_start_us, "args": args}))
        keyed.append((t_end, 0, -depth, {**base, "ph": "E", "ts": t_end}))

    # Causal edges, derived exactly as the critical-path analyzer sees them.
    edge_seq = 0
    for sink_id, srcs in sorted(flow_edges(flows).items()):
        sink = by_id.get(sink_id)
        if sink is None:
            continue
        for src_id in srcs:
            src = by_id.get(src_id)
            if src is None:
                continue  # dropped by the bounded buffer
            edge_seq += 1
            fid = f"flow{edge_seq}"
            ts_out = max(src.t_start_us,
                         (src.t_end_us or src.t_start_us + 1e-3) - 1e-3)
            ts_in = max(sink.t_start_us,
                        (sink.t_end_us or sink.t_start_us + 1e-3) - 1e-3)
            keyed.append((ts_out, 1, 0, {
                "name": "dep", "cat": "flow", "ph": "s", "id": fid,
                "pid": 0, "tid": src.rank, "ts": ts_out}))
            keyed.append((ts_in, 1, 1, {
                "name": "dep", "cat": "flow", "ph": "f", "bp": "e", "id": fid,
                "pid": 0, "tid": sink.rank, "ts": ts_in}))
    keyed.sort(key=lambda kv: (kv[0], kv[1], kv[2]))
    return meta + [ev for _, _, _, ev in keyed]


def dump_chrome_trace_spans(spans: Sequence["Span"],
                            flows: Sequence["FlowPoint"],
                            path: str,
                            process_name: str = "repro",
                            dropped_counts: Mapping[int, int] | None = None,
                            sampled_out: Mapping[int, int] | None = None) -> str:
    """Atomically write a span trace (with flows) as Chrome/Perfetto JSON."""
    payload: dict = {
        "traceEvents": chrome_trace_from_spans(
            spans, flows, process_name=process_name,
            dropped_counts=dropped_counts),
        "displayTimeUnit": "ms",
        "otherData": {},
    }
    if dropped_counts and any(dropped_counts.values()):
        payload["otherData"]["dropped_spans"] = {
            str(r): n for r, n in sorted(dropped_counts.items()) if n}
    if sampled_out and any(sampled_out.values()):
        payload["otherData"]["sampled_out_spans"] = {
            str(r): n for r, n in sorted(sampled_out.items()) if n}
    return atomic_write_text(path, json.dumps(payload, indent=1))


def region_durations(records: Iterable[TraceRecord]) -> dict[tuple[int, str], list[float]]:
    """Pair ENTER/EXIT records into per-(rank, region) duration lists.

    Handles nesting via per-(rank, name) stacks; unmatched EXITs raise.
    """
    stacks: dict[tuple[int, str], list[float]] = {}
    out: dict[tuple[int, str], list[float]] = {}
    for rec in records:
        key = (rec.rank, rec.name)
        if rec.kind is TraceKind.ENTER:
            stacks.setdefault(key, []).append(rec.t_us)
        elif rec.kind is TraceKind.EXIT:
            stack = stacks.get(key)
            if not stack:
                raise ValueError(f"EXIT without ENTER for {rec.name!r} on rank {rec.rank}")
            start = stack.pop()
            out.setdefault(key, []).append(rec.t_us - start)
    return out
