"""Event tracing (the TAU component's second measurement option).

Paper Section 4.1: "The TAU implementation of this generic performance
component interface supports both profiling and tracing measurement
options."  Profiling (cumulative aggregates) lives in
:mod:`repro.tau.profiler`; this module adds the tracing option: a
timestamped stream of ENTER/EXIT/EVENT records per rank, dumpable to a
simple text format and mergeable across ranks for timeline analysis.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.util.atomicio import atomic_write_text
from repro.util.timebase import now_us


class TraceKind(enum.Enum):
    ENTER = "ENTER"
    EXIT = "EXIT"
    EVENT = "EVENT"


@dataclass(frozen=True)
class TraceRecord:
    """One timeline record."""

    t_us: float
    rank: int
    kind: TraceKind
    name: str
    value: float = 0.0

    def format(self) -> str:
        return f"{self.t_us:.3f}\t{self.rank}\t{self.kind.value}\t{self.name}\t{self.value:.6g}"


class Tracer:
    """Per-rank trace recorder with a bounded buffer.

    When the buffer fills, the oldest records are dropped and
    ``dropped_count`` reflects it — a tracer must never grow unboundedly
    inside a long simulation.
    """

    def __init__(self, rank: int = 0, max_records: int = 100_000,
                 clock: Callable[[], float] = now_us) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.rank = int(rank)
        self.max_records = int(max_records)
        self._clock = clock
        self._records: list[TraceRecord] = []
        self.dropped_count = 0

    # ------------------------------------------------------------------ #
    def _append(self, record: TraceRecord) -> None:
        if len(self._records) >= self.max_records:
            # Drop the oldest half in one go (amortized O(1) per record).
            keep = self.max_records // 2
            self.dropped_count += len(self._records) - keep
            self._records = self._records[-keep:]
        self._records.append(record)

    def enter(self, name: str) -> None:
        """Record region entry."""
        self._append(TraceRecord(self._clock(), self.rank, TraceKind.ENTER, name))

    def exit(self, name: str) -> None:
        """Record region exit."""
        self._append(TraceRecord(self._clock(), self.rank, TraceKind.EXIT, name))

    def event(self, name: str, value: float = 0.0) -> None:
        """Record an instantaneous event with an optional value."""
        self._append(TraceRecord(self._clock(), self.rank, TraceKind.EVENT, name, value))

    # ------------------------------------------------------------------ #
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def dump(self, path: str) -> None:
        """Write the trace as tab-separated text (t, rank, kind, name, value).

        The write is atomic (temp file + ``os.replace``): a crash mid-dump
        leaves any previous trace file intact.
        """
        lines = ["# t_us\trank\tkind\tname\tvalue"]
        lines += [rec.format() for rec in self._records]
        atomic_write_text(path, "\n".join(lines) + "\n")


def merge_traces(traces: Iterable[Tracer]) -> list[TraceRecord]:
    """Merge per-rank traces into one time-ordered stream."""
    merged: list[TraceRecord] = []
    for tr in traces:
        merged.extend(tr.records())
    merged.sort(key=lambda r: (r.t_us, r.rank))
    return merged


def chrome_trace_events(records: Iterable[TraceRecord],
                        process_name: str = "repro") -> list[dict]:
    """Render trace records as Chrome Trace Event Format objects.

    The produced JSON loads directly into ``chrome://tracing`` or Perfetto
    (https://ui.perfetto.dev).  Mapping: ranks become threads (``tid``),
    ENTER/EXIT become duration-begin/end phases (``"B"``/``"E"``) and EVENT
    records — including injected faults, retries, recoveries and
    checkpoints — become instant events (``"i"``) with their value in
    ``args``.  Timestamps are microseconds, which is also Chrome's native
    trace unit.
    """
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": process_name},
    }]
    seen_ranks: set[int] = set()
    for rec in records:
        if rec.rank not in seen_ranks:
            seen_ranks.add(rec.rank)
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rec.rank,
                "args": {"name": f"rank {rec.rank}"},
            })
        base = {"name": rec.name, "pid": 0, "tid": rec.rank, "ts": rec.t_us}
        if rec.kind is TraceKind.ENTER:
            events.append({**base, "ph": "B"})
        elif rec.kind is TraceKind.EXIT:
            events.append({**base, "ph": "E"})
        else:
            events.append({**base, "ph": "i", "s": "t",
                           "args": {"value": rec.value}})
    return events


def dump_chrome_trace(records: Iterable[TraceRecord], path: str,
                      process_name: str = "repro") -> str:
    """Atomically write records as a Chrome/Perfetto trace JSON file."""
    payload = {
        "traceEvents": chrome_trace_events(records, process_name=process_name),
        "displayTimeUnit": "ms",
    }
    return atomic_write_text(path, json.dumps(payload, indent=1))


def region_durations(records: Iterable[TraceRecord]) -> dict[tuple[int, str], list[float]]:
    """Pair ENTER/EXIT records into per-(rank, region) duration lists.

    Handles nesting via per-(rank, name) stacks; unmatched EXITs raise.
    """
    stacks: dict[tuple[int, str], list[float]] = {}
    out: dict[tuple[int, str], list[float]] = {}
    for rec in records:
        key = (rec.rank, rec.name)
        if rec.kind is TraceKind.ENTER:
            stacks.setdefault(key, []).append(rec.t_us)
        elif rec.kind is TraceKind.EXIT:
            stack = stacks.get(key)
            if not stack:
                raise ValueError(f"EXIT without ENTER for {rec.name!r} on rank {rec.rank}")
            start = stack.pop()
            out.setdefault(key, []).append(rec.t_us - start)
    return out
