"""The per-rank profiler: timers, groups, control, charging, dumping.

One :class:`Profiler` instance lives on each simulated rank (ranks are
threads; the profiler is used only from its own rank thread, plus the MPI
accounting listener which also fires on the rank thread, so no locking is
required on the hot path).

Two ways time enters a timer:

* ``start``/``stop`` (or the :meth:`timer` context manager) bracket a code
  region and measure **wall-clock** time, as TAU does;
* :meth:`charge` adds an externally modeled duration (the simulated MPI
  layer's virtual cost) — it both accumulates under the routine's own timer
  and counts as *child* time of the enclosing region so exclusive times
  stay consistent (Figure 3 semantics).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

from repro.obs.span import CAT_COMPUTE
from repro.tau.events import EventRegistry
from repro.tau.hardware import CacheModel, HardwareCounters
from repro.tau.timer import TimerStats, _Frame
from repro.tau.trace import Tracer
from repro.util.timebase import now_us

MPI_GROUP = "MPI"


class Profiler:
    """Timing + events + hardware counters for one rank.

    Pass a :class:`~repro.tau.trace.Tracer` to additionally record the
    timestamped ENTER/EXIT/EVENT timeline (TAU's tracing option); profiling
    aggregates are always collected.
    """

    def __init__(
        self,
        rank: int = 0,
        cache: CacheModel | None = None,
        clock: Callable[[], float] = now_us,
        tracer: Tracer | None = None,
        span_tracer=None,
    ) -> None:
        self.rank = int(rank)
        self._clock = clock
        self._timers: dict[str, TimerStats] = {}
        self._stack: list[_Frame] = []
        self._disabled_groups: set[str] = set()
        self.events = EventRegistry()
        self.counters = HardwareCounters(cache)
        self.tracer = tracer
        #: optional repro.obs.span.SpanTracer: every start/stop bracketing
        #: also opens/closes a compute-category span (subject to the
        #: tracer's 1-in-N sampling), so proxied component invocations are
        #: traced for free via the Mastermind's existing timer path.
        self.span_tracer = span_tracer

    # ------------------------------------------------------------ timers
    def _get_timer(self, name: str, group: str) -> TimerStats:
        t = self._timers.get(name)
        if t is None:
            t = self._timers[name] = TimerStats(name=name, group=group)
        return t

    def group_enabled(self, group: str) -> bool:
        return group not in self._disabled_groups

    def enable_group(self, group: str) -> None:
        """Control interface: re-enable all timers of ``group``."""
        self._disabled_groups.discard(group)

    def disable_group(self, group: str) -> None:
        """Control interface: suppress all timers of ``group`` at runtime."""
        self._disabled_groups.add(group)

    def start(self, name: str, group: str = "default") -> None:
        """Start (push) the named timer; no-op if its group is disabled.

        The timer is registered (at zero) even when disabled so the
        matching ``stop`` can recognize it and no-op too.
        """
        self._get_timer(name, group)
        if not self.group_enabled(group):
            return
        if self.tracer is not None:
            self.tracer.enter(name)
        span = None
        if self.span_tracer is not None:
            span = self.span_tracer.start(name, CAT_COMPUTE, sampled=True)
        reentrant = any(f.name == name for f in self._stack)
        self._stack.append(_Frame(name=name, start_us=self._clock(),
                                  reentrant=reentrant, span=span))

    def stop(self, name: str) -> float:
        """Stop the named timer (must be the innermost started one).

        Returns the elapsed inclusive microseconds for this bracketing.
        """
        timer = self._timers.get(name)
        if timer is not None and not self.group_enabled(timer.group):
            return 0.0
        if not self._stack:
            raise RuntimeError(f"stop({name!r}) with no timer running")
        frame = self._stack[-1]
        if frame.name != name:
            raise RuntimeError(
                f"stop({name!r}) does not match innermost running timer {frame.name!r}"
            )
        self._stack.pop()
        if self.tracer is not None:
            self.tracer.exit(name)
        if self.span_tracer is not None:
            self.span_tracer.end(frame.span)
        elapsed = self._clock() - frame.start_us
        assert timer is not None  # created at start()
        timer.calls += 1
        timer.exclusive_us += elapsed - frame.child_us
        if not frame.reentrant:
            # Recursive re-entries would double-count inclusive time.
            timer.inclusive_us += elapsed
        if self._stack:
            self._stack[-1].child_us += elapsed
        return elapsed

    @contextlib.contextmanager
    def timer(self, name: str, group: str = "default") -> Iterator[None]:
        """Context manager bracketing a region with start/stop."""
        self.start(name, group)
        try:
            yield
        finally:
            self.stop(name)

    def charge(self, name: str, duration_us: float, group: str = MPI_GROUP) -> None:
        """Record an externally modeled duration under timer ``name``.

        The duration is attributed as child time of the currently running
        region (so the region's *exclusive* time excludes it), and the
        region's *inclusive* time is extended to cover it — modeled costs
        have no wall-clock footprint of their own.
        """
        if duration_us < 0:
            raise ValueError(f"negative charge {duration_us} for {name!r}")
        if not self.group_enabled(group):
            return
        if self.tracer is not None:
            self.tracer.event(name, duration_us)
        t = self._get_timer(name, group)
        t.calls += 1
        t.inclusive_us += duration_us
        t.exclusive_us += duration_us
        if self._stack:
            self._stack[-1].child_us += duration_us
            # Extend enclosing start times backwards so the enclosing
            # inclusive time covers the charged duration.  Mirror the
            # modeled time onto the frames' spans as ``virtual_us`` —
            # span timestamps stay real wall clock (cross-rank ordering
            # depends on it); the attribute makes the modeled MPI cost
            # visible per region in the exported trace.
            for f in self._stack:
                f.start_us -= duration_us
                if f.span is not None:
                    f.span.attrs["virtual_us"] = (
                        f.span.attrs.get("virtual_us", 0.0) + duration_us)

    # ----------------------------------------------------------- queries
    def running(self) -> list[str]:
        """Names of currently running timers, outermost first."""
        return [f.name for f in self._stack]

    def timer_names(self) -> list[str]:
        return sorted(self._timers)

    def get(self, name: str) -> TimerStats:
        """Cumulative stats for one timer (KeyError if unknown)."""
        return self._timers[name].copy()

    def timers_snapshot(self) -> dict[str, TimerStats]:
        """Copies of all cumulative timer stats."""
        return {n: t.copy() for n, t in self._timers.items()}

    def group_total_us(self, group: str) -> float:
        """Sum of inclusive time over all timers in ``group``.

        With ``group="MPI"`` this is the paper's "MPI time ... determined by
        the summation of the times of all the MPI routines".
        """
        return sum(t.inclusive_us for t in self._timers.values() if t.group == group)

    # -------------------------------------------------------------- dump
    def dump(self, path: str) -> None:
        """Write a TAU-style text profile (one file per rank)."""
        lines = [f"# TAU-style profile, rank {self.rank}", "# name group calls incl_us excl_us"]
        for name in sorted(self._timers):
            t = self._timers[name]
            lines.append(
                f"{name!r} {t.group} {t.calls} {t.inclusive_us:.3f} {t.exclusive_us:.3f}"
            )
        lines.append("# atomic events: name min max mean std count")
        for name, s in sorted(self.events.summaries().items()):
            lines.append(
                f"{name!r} {s['min']:.6g} {s['max']:.6g} {s['mean']:.6g} "
                f"{s['std']:.6g} {int(s['count'])}"
            )
        lines.append("# hardware counters")
        for name, v in sorted(self.counters.read().items()):
            lines.append(f"{name} {v}")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
