"""Performance-model construction (paper Section 5, Eqs. 1-2).

* :mod:`repro.models.fits` — regression families used in the paper:
  linear, polynomial (the quartic sigma_EFM), power law
  ``T = exp(b log Q + a)`` (T_states), and exponential ``T = exp(a + bQ)``
  (sigma_states), with R^2/AIC model selection.
* :mod:`repro.models.performance` — :class:`PerformanceModel`: a mean and a
  standard-deviation predictor for one component method as a function of
  the workload parameter Q, built from Mastermind measurements.
* :mod:`repro.models.composite` — the composite model over a call graph
  with per-slot implementation variables, evaluated by substituting a
  concrete implementation's model into each variable (the Imperial College
  scheme summarized in paper Section 2, realized through the Mastermind's
  dual in Section 6).
"""

from repro.models.fits import (
    ModelFit,
    fit_linear,
    fit_polynomial,
    fit_power_law,
    fit_exponential,
    fit_constant,
    fit_family,
    select_best,
    FIT_FAMILIES,
)
from repro.models.performance import PerformanceModel, build_model
from repro.models.composite import CompositeModel, Workload, SlotCost
from repro.models.parametric import CacheScaledModel, fit_miss_penalty
from repro.models.serialize import ModelRepository, model_to_dict, model_from_dict
from repro.models.permode import (ModalPerformanceModel, build_modal_model,
                                  variance_explained)

__all__ = [
    "ModelFit",
    "fit_linear",
    "fit_polynomial",
    "fit_power_law",
    "fit_exponential",
    "fit_constant",
    "fit_family",
    "select_best",
    "FIT_FAMILIES",
    "PerformanceModel",
    "build_model",
    "CompositeModel",
    "Workload",
    "SlotCost",
    "CacheScaledModel",
    "fit_miss_penalty",
    "ModelRepository",
    "model_to_dict",
    "model_from_dict",
    "ModalPerformanceModel",
    "build_modal_model",
    "variance_explained",
]
