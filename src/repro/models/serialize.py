"""Performance-model persistence: the model repository.

Paper Section 2 (the Imperial College scheme the Mastermind builds on):
"The performance characteristics and a performance model for each
component is constructed by the component developer and stored in the
component repository."

:class:`ModelRepository` is that store: performance models serialize to
JSON (functional family + coefficients + fit quality + QoS + calibration
context) and reconstruct into fully usable predictors, so models measured
on one run can drive assembly optimization in another.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any

import numpy as np

from repro.models.fits import ModelFit
from repro.models.performance import PerformanceModel
from repro.util.atomicio import atomic_write_text

__all__ = ["fit_to_dict", "fit_from_dict", "model_to_dict",
           "model_from_dict", "ModelRepository"]


def _predictor(family: str, coeffs: tuple[float, ...]):
    """Rebuild a family's predictor from its coefficients."""
    if family == "constant":
        (a,) = coeffs
        return lambda x: np.full_like(np.asarray(x, float), a)
    if family == "linear":
        a, b = coeffs
        return lambda x: a + b * np.asarray(x, float)
    if family.startswith("poly"):
        poly = np.polynomial.Polynomial(coeffs)
        return lambda x: poly(np.asarray(x, float))
    if family == "power":
        a, b = coeffs
        return lambda x: np.exp(a + b * np.log(np.asarray(x, float)))
    if family == "exponential":
        a, b = coeffs
        return lambda x: np.exp(a + b * np.asarray(x, float))
    raise ValueError(f"unknown model family {family!r}")


def fit_to_dict(fit: ModelFit) -> dict[str, Any]:
    """JSON-safe representation of a ModelFit."""
    return {
        "family": fit.family,
        "coeffs": list(fit.coeffs),
        "formula": fit.formula,
        "r2": fit.r2,
        "aic": fit.aic if math.isfinite(fit.aic) else None,
        "n": fit.n,
    }


def fit_from_dict(data: dict[str, Any]) -> ModelFit:
    """Reconstruct a ModelFit (including its predictor) from JSON data."""
    family = data["family"]
    coeffs = tuple(float(c) for c in data["coeffs"])
    aic = data.get("aic")
    return ModelFit(
        family=family,
        coeffs=coeffs,
        formula=data.get("formula", family),
        r2=float(data.get("r2", float("nan"))),
        aic=float(aic) if aic is not None else float("-inf"),
        n=int(data.get("n", 0)),
        _predict=_predictor(family, coeffs),
    )


def model_to_dict(model: PerformanceModel) -> dict[str, Any]:
    """JSON-safe representation of a PerformanceModel."""
    return {
        "name": model.name,
        "mean_fit": fit_to_dict(model.mean_fit),
        "std_fit": fit_to_dict(model.std_fit) if model.std_fit is not None else None,
        "quality": model.quality,
        "context": dict(model.context),
    }


def model_from_dict(data: dict[str, Any]) -> PerformanceModel:
    """Reconstruct a PerformanceModel from JSON data."""
    std = data.get("std_fit")
    return PerformanceModel(
        name=data["name"],
        mean_fit=fit_from_dict(data["mean_fit"]),
        std_fit=fit_from_dict(std) if std is not None else None,
        quality=float(data.get("quality", 1.0)),
        context=dict(data.get("context", {})),
    )


class ModelRepository:
    """Directory-backed store of performance models.

    Models are keyed by (functionality, implementation name), the
    organization the assembly optimizer consumes: ``candidates("flux")``
    returns every stored flux implementation's model.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, functionality: str, impl_name: str) -> str:
        safe = f"{functionality}__{impl_name}".replace(os.sep, "_")
        return os.path.join(self.directory, f"{safe}.json")

    def store(self, functionality: str, model: PerformanceModel) -> str:
        """Persist a model under its implementation name; returns the path.

        The write is atomic (temp file + ``os.replace``), so a crash
        mid-store cannot corrupt a previously saved model.
        """
        path = self._path(functionality, model.name)
        payload = {"functionality": functionality, "model": model_to_dict(model)}
        return atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))

    def load(self, functionality: str, impl_name: str) -> PerformanceModel:
        """Load one stored model (FileNotFoundError if absent)."""
        with open(self._path(functionality, impl_name), encoding="utf-8") as fh:
            payload = json.load(fh)
        return model_from_dict(payload["model"])

    def candidates(self, functionality: str) -> list[PerformanceModel]:
        """All stored models for a functionality (optimizer input)."""
        out = []
        prefix = f"{functionality}__"
        for fname in sorted(os.listdir(self.directory)):
            if not (fname.startswith(prefix) and fname.endswith(".json")):
                continue
            with open(os.path.join(self.directory, fname), encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("functionality") == functionality:
                out.append(model_from_dict(payload["model"]))
        return out

    def functionalities(self) -> list[str]:
        """Distinct functionality keys present in the repository."""
        keys = set()
        for fname in os.listdir(self.directory):
            if fname.endswith(".json") and "__" in fname:
                keys.add(fname.split("__", 1)[0])
        return sorted(keys)
