"""Regression families for component performance models.

The paper fits "simple polynomial and power laws" by regression analysis
(Section 5).  Every family reduces to linear least squares, possibly in a
transformed space:

* ``linear``      T = a + b Q                    (T_Godunov, T_EFM)
* ``poly<k>``     T = c0 + c1 Q + ... + ck Q^k   (sigma_EFM, quartic)
* ``power``       T = exp(a) * Q^b               (T_States: exp(1.19 log Q - 3.68))
* ``exponential`` T = exp(a + b Q)               (sigma_States)
* ``constant``    T = a

Goodness of fit is summarized with R^2 and AIC (Gaussian-residual form);
:func:`select_best` picks the family with the lowest AIC, which the
ablation bench uses to confirm the paper's chosen forms win on their data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "ModelFit",
    "fit_linear",
    "fit_polynomial",
    "fit_power_law",
    "fit_exponential",
    "fit_constant",
    "fit_family",
    "select_best",
    "FIT_FAMILIES",
]


@dataclass(frozen=True)
class ModelFit:
    """A fitted functional form ``T(Q)``.

    ``coeffs`` are family-specific (documented per fit function);
    ``formula`` is a human-readable rendering like the paper's Eq. 1.
    """

    family: str
    coeffs: tuple[float, ...]
    formula: str
    r2: float
    aic: float
    n: int
    _predict: Callable[[np.ndarray], np.ndarray] = field(repr=False, compare=False)

    def predict(self, q: float | Sequence[float] | np.ndarray) -> np.ndarray | float:
        """Evaluate the fitted model at Q (scalar in -> scalar out)."""
        arr = np.asarray(q, dtype=float)
        out = self._predict(np.atleast_1d(arr))
        return float(out[0]) if arr.ndim == 0 else out

    def __str__(self) -> str:
        return f"{self.formula}  [R^2={self.r2:.4f}, AIC={self.aic:.1f}, n={self.n}]"


def _as_xy(q: Sequence[float], t: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    qa = np.asarray(q, dtype=float)
    ta = np.asarray(t, dtype=float)
    if qa.ndim != 1 or ta.ndim != 1 or qa.size != ta.size:
        raise ValueError(f"Q and T must be equal-length 1-D, got {qa.shape} vs {ta.shape}")
    if qa.size < 2:
        raise ValueError("need at least 2 points to fit")
    return qa, ta


def _gof(t: np.ndarray, pred: np.ndarray, k: int) -> tuple[float, float]:
    """(R^2, AIC) for predictions with k fitted parameters."""
    resid = t - pred
    ss_res = float(resid @ resid)
    ss_tot = float(((t - t.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else (1.0 if ss_res == 0 else 0.0)
    n = t.size
    # Gaussian log-likelihood AIC; guard zero residuals.
    sigma2 = max(ss_res / n, 1e-300)
    aic = n * math.log(sigma2) + 2 * (k + 1)
    return r2, aic


def fit_constant(q: Sequence[float], t: Sequence[float]) -> ModelFit:
    """``T = a`` — baseline family. coeffs = (a,)."""
    qa, ta = _as_xy(q, t)
    a = float(ta.mean())
    pred = np.full_like(ta, a)
    r2, aic = _gof(ta, pred, 1)
    return ModelFit("constant", (a,), f"T = {a:.4g}", r2, aic, ta.size,
                    lambda x, a=a: np.full_like(np.asarray(x, float), a))


def fit_linear(q: Sequence[float], t: Sequence[float]) -> ModelFit:
    """``T = a + b Q`` (paper's T_Godunov, T_EFM). coeffs = (a, b)."""
    qa, ta = _as_xy(q, t)
    b, a = np.polyfit(qa, ta, 1)
    pred = a + b * qa
    r2, aic = _gof(ta, pred, 2)
    return ModelFit("linear", (float(a), float(b)),
                    f"T = {a:.4g} + {b:.4g} Q", r2, aic, ta.size,
                    lambda x, a=a, b=b: a + b * np.asarray(x, float))


def fit_polynomial(q: Sequence[float], t: Sequence[float], degree: int) -> ModelFit:
    """``T = sum c_i Q^i`` up to ``degree`` (sigma_EFM is quartic).

    coeffs = (c0, c1, ..., c_degree), ascending powers.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    qa, ta = _as_xy(q, t)
    if qa.size <= degree:
        raise ValueError(f"need more than {degree} points for degree-{degree} fit")
    # Scale Q to avoid ill-conditioning at Q ~ 1e5 and degree 4.
    scale = float(np.abs(qa).max()) or 1.0
    c_desc = np.polyfit(qa / scale, ta, degree)
    c_asc = tuple(float(c / scale**i) for i, c in enumerate(reversed(c_desc)))
    poly = np.polynomial.Polynomial(c_asc)
    pred = poly(qa)
    r2, aic = _gof(ta, pred, degree + 1)
    terms = " + ".join(f"{c:.4g} Q^{i}" if i else f"{c:.4g}" for i, c in enumerate(c_asc))
    return ModelFit(f"poly{degree}", c_asc, f"T = {terms}", r2, aic, ta.size,
                    lambda x, p=poly: p(np.asarray(x, float)))


def fit_power_law(q: Sequence[float], t: Sequence[float]) -> ModelFit:
    """``T = exp(a) Q^b``, fitted as ``log T = a + b log Q``.

    The paper's States model: ``T = exp(1.19 log(Q) - 3.68)``.
    coeffs = (a, b) with b the exponent.  Requires Q, T > 0.
    """
    qa, ta = _as_xy(q, t)
    if (qa <= 0).any() or (ta <= 0).any():
        raise ValueError("power-law fit requires strictly positive Q and T")
    b, a = np.polyfit(np.log(qa), np.log(ta), 1)
    pred = np.exp(a + b * np.log(qa))
    r2, aic = _gof(ta, pred, 2)
    return ModelFit("power", (float(a), float(b)),
                    f"T = exp({b:.4g} log(Q) {a:+.4g})", r2, aic, ta.size,
                    lambda x, a=a, b=b: np.exp(a + b * np.log(np.asarray(x, float))))


def fit_exponential(q: Sequence[float], t: Sequence[float]) -> ModelFit:
    """``T = exp(a + b Q)``, fitted as ``log T = a + b Q`` (sigma_States).

    coeffs = (a, b).  Requires T > 0.
    """
    qa, ta = _as_xy(q, t)
    if (ta <= 0).any():
        raise ValueError("exponential fit requires strictly positive T")
    b, a = np.polyfit(qa, np.log(ta), 1)
    pred = np.exp(a + b * qa)
    r2, aic = _gof(ta, pred, 2)
    return ModelFit("exponential", (float(a), float(b)),
                    f"T = exp({a:.4g} {b:+.4g} Q)", r2, aic, ta.size,
                    lambda x, a=a, b=b: np.exp(a + b * np.asarray(x, float)))


#: name -> fitting callable taking (Q, T); poly uses fixed representative degrees
FIT_FAMILIES: dict[str, Callable[[Sequence[float], Sequence[float]], ModelFit]] = {
    "constant": fit_constant,
    "linear": fit_linear,
    "poly2": lambda q, t: fit_polynomial(q, t, 2),
    "poly3": lambda q, t: fit_polynomial(q, t, 3),
    "poly4": lambda q, t: fit_polynomial(q, t, 4),
    "power": fit_power_law,
    "exponential": fit_exponential,
}


def fit_family(name: str, q: Sequence[float], t: Sequence[float]) -> ModelFit:
    """Fit one named family from :data:`FIT_FAMILIES`."""
    try:
        fn = FIT_FAMILIES[name]
    except KeyError:
        raise KeyError(f"unknown fit family {name!r}; known: {sorted(FIT_FAMILIES)}") from None
    return fn(q, t)


def select_best(
    q: Sequence[float],
    t: Sequence[float],
    families: Sequence[str] = ("linear", "poly2", "power", "exponential"),
) -> ModelFit:
    """Fit several families and return the lowest-AIC one.

    Families that fail on this data (e.g. power law with nonpositive
    values) are skipped; at least one family must succeed.
    """
    fits: list[ModelFit] = []
    errors: list[str] = []
    for fam in families:
        try:
            fits.append(fit_family(fam, q, t))
        except (ValueError, KeyError) as exc:
            errors.append(f"{fam}: {exc}")
    if not fits:
        raise ValueError("no fit family succeeded: " + "; ".join(errors))
    return min(fits, key=lambda f: f.aic)
