"""Composite performance model over a component assembly.

"The wiring diagram (available from the framework) along with the call
trace (detected and recorded by the performance infrastructure) can be used
by the Mastermind to create a composite performance model where the
variables are the individual performance models of the components
themselves" (paper Section 6).

A :class:`CompositeModel` is implementation-independent: each node of the
call graph is either *bound* to a concrete :class:`PerformanceModel` or is
a free *slot* (variable) keyed by functionality.  Evaluating the composite
requires a binding of every slot; the evaluation sums, over nodes, the
invocation-weighted model predictions for the node's recorded workload.
This is the "cost function" the assembly optimizer minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.models.performance import PerformanceModel


@dataclass(frozen=True)
class Workload:
    """The workload one node saw: parameter values and invocation counts.

    ``q_values[i]`` was presented ``counts[i]`` times.  The Mastermind
    derives this from the per-invocation parameter records.
    """

    q_values: tuple[float, ...]
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.q_values) != len(self.counts):
            raise ValueError("q_values and counts must have equal length")
        if any(c < 0 for c in self.counts):
            raise ValueError("invocation counts must be non-negative")

    @classmethod
    def from_samples(cls, samples) -> "Workload":
        """Build from a flat iterable of observed Q values."""
        vals, counts = np.unique(np.asarray(list(samples), dtype=float), return_counts=True)
        return cls(tuple(float(v) for v in vals), tuple(int(c) for c in counts))

    @property
    def total_invocations(self) -> int:
        return sum(self.counts)

    def expected_cost(self, model: PerformanceModel) -> float:
        """Sum over the workload of the model's predicted mean time."""
        if not self.q_values:
            return 0.0
        preds = np.atleast_1d(model.predict_mean(np.asarray(self.q_values)))
        return float(np.sum(preds * np.asarray(self.counts)))

    def cost_std(self, model: PerformanceModel) -> float:
        """Predicted standard deviation of the total cost.

        Invocations are treated as independent, so variances add.
        """
        if not self.q_values:
            return 0.0
        stds = np.atleast_1d(model.predict_std(np.asarray(self.q_values)))
        var = float(np.sum(np.asarray(self.counts) * stds**2))
        return float(np.sqrt(var))


@dataclass
class SlotCost:
    """Per-node cost breakdown returned by :meth:`CompositeModel.evaluate`."""

    node: str
    model_name: str
    compute_us: float
    comm_us: float
    invocations: int

    @property
    def total_us(self) -> float:
        return self.compute_us + self.comm_us


@dataclass
class _Node:
    workload: Workload
    model: PerformanceModel | None
    slot: str | None
    comm_us: float


class CompositeModel:
    """Implementation-independent cost model of an application.

    Nodes are added either bound (a concrete model) or as free slots; edges
    are informational (they mirror the dual graph's caller/callee edges and
    invocation counts) and do not affect the additive cost evaluation.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, _Node] = {}
        self._edges: list[tuple[str, str, int]] = []

    # ------------------------------------------------------------ build
    def add_node(
        self,
        name: str,
        workload: Workload,
        model: PerformanceModel | None = None,
        slot: str | None = None,
        comm_us: float = 0.0,
    ) -> None:
        """Add a component node.

        Exactly one of ``model`` (bound) or ``slot`` (variable) must be
        given.  ``comm_us`` is the node's measured/modeled message-passing
        time, carried separately per Figure 10's vertex weights.
        """
        if name in self._nodes:
            raise ValueError(f"node {name!r} already present")
        if (model is None) == (slot is None):
            raise ValueError(f"node {name!r}: give exactly one of model= or slot=")
        if comm_us < 0:
            raise ValueError(f"node {name!r}: negative comm time {comm_us}")
        self._nodes[name] = _Node(workload=workload, model=model, slot=slot, comm_us=comm_us)

    def add_edge(self, caller: str, callee: str, invocations: int) -> None:
        """Record a caller->callee edge with its invocation count."""
        for n in (caller, callee):
            if n not in self._nodes:
                raise KeyError(f"edge endpoint {n!r} is not a node")
        if invocations < 0:
            raise ValueError("invocation count must be non-negative")
        self._edges.append((caller, callee, int(invocations)))

    # ----------------------------------------------------------- queries
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def edges(self) -> list[tuple[str, str, int]]:
        return list(self._edges)

    def free_slots(self) -> dict[str, list[str]]:
        """Map slot key -> node names still requiring a binding."""
        out: dict[str, list[str]] = {}
        for name, node in self._nodes.items():
            if node.slot is not None:
                out.setdefault(node.slot, []).append(name)
        return out

    # -------------------------------------------------------- evaluation
    def evaluate(
        self, bindings: Mapping[str, PerformanceModel] | None = None
    ) -> tuple[float, list[SlotCost]]:
        """Total predicted time (us) and the per-node breakdown.

        ``bindings`` maps slot keys to concrete models; every free slot
        must be bound or ``KeyError`` is raised (the model stays
        implementation-independent until evaluation, as in the Imperial
        College scheme).
        """
        bindings = bindings or {}
        breakdown: list[SlotCost] = []
        total = 0.0
        for name in sorted(self._nodes):
            node = self._nodes[name]
            if node.model is not None:
                model = node.model
            else:
                assert node.slot is not None
                try:
                    model = bindings[node.slot]
                except KeyError:
                    raise KeyError(
                        f"composite evaluation requires a binding for slot "
                        f"{node.slot!r} (node {name!r})"
                    ) from None
            compute = node.workload.expected_cost(model)
            breakdown.append(SlotCost(
                node=name,
                model_name=model.name,
                compute_us=compute,
                comm_us=node.comm_us,
                invocations=node.workload.total_invocations,
            ))
            total += compute + node.comm_us
        return total, breakdown

    def insignificant_nodes(self, bindings=None, fraction: float = 0.01) -> list[str]:
        """Nodes contributing less than ``fraction`` of total predicted time.

        Figure 10: "the caller-callee relationship is preserved to identify
        subgraphs that are insignificant from the performance point of view"
        and can be neglected during assembly optimization.
        """
        total, breakdown = self.evaluate(bindings)
        if total <= 0:
            return []
        return [sc.node for sc in breakdown if sc.total_us < fraction * total]
