"""Cache-parameterized performance models (paper Section 6).

"The models derived here are valid only on a similar cluster.  Any
significant change, such as halving of the cache size, will have a large
effect on the coefficients in the models (though the functional form is
expected to remain unchanged).  Ideally, the coefficients should be
parameterized by processor speed and a cache model.  We will address this
in future work, where the cache information collected during these tests
will be employed."

This module implements that future work.  A :class:`CacheScaledModel`
carries the calibration context (cache capacity, measured miss penalty)
and retargets predictions to a different cache by an analytic correction:

    T'(Q) = T(Q) * (1 + penalty * (m'(Q) - m(Q)))

where m(Q)/m'(Q) are the miss ratios of the calibration/target caches for
the component's dominant access pattern (from
:class:`repro.tau.hardware.CacheModel`), and ``penalty`` is the relative
slowdown per unit miss-ratio increase, fitted from the hardware counters
TAU collected during calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.performance import PerformanceModel
from repro.tau.hardware import AccessPattern, CacheModel
from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class CacheScaledModel:
    """A performance model retargetable across cache configurations.

    Parameters
    ----------
    base:
        The model fitted on the calibration host.
    calibration_cache:
        Cache model describing the calibration host's hierarchy.
    pattern / stride_elements / passes:
        The component's dominant access pattern (what its kernels report
        through the PAPI-analog counters).
    miss_penalty:
        Relative execution-time increase per unit increase in miss ratio
        (dimensionless; ~0 for compute-bound kernels, >1 for memory-bound).
    """

    base: PerformanceModel
    calibration_cache: CacheModel
    pattern: AccessPattern = AccessPattern.SEQUENTIAL
    stride_elements: int = 1
    passes: int = 2
    miss_penalty: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("miss_penalty", self.miss_penalty)

    def _miss_ratio(self, cache: CacheModel, q: np.ndarray) -> np.ndarray:
        return np.asarray([
            cache.miss_ratio(
                int(x), pattern=self.pattern,
                stride_elements=self.stride_elements, passes=self.passes,
            )
            for x in np.atleast_1d(q)
        ])

    def scale_factor(self, target_cache: CacheModel, q) -> np.ndarray | float:
        """Multiplicative retargeting factor at workload ``q``.

        > 1 when the target cache misses more than the calibration cache
        (e.g. halved capacity), < 1 when it misses less.
        """
        qa = np.asarray(q, dtype=float)
        m_cal = self._miss_ratio(self.calibration_cache, qa)
        m_tgt = self._miss_ratio(target_cache, qa)
        factor = 1.0 + self.miss_penalty * (m_tgt - m_cal)
        factor = np.maximum(factor, 0.0)
        return float(factor[0]) if qa.ndim == 0 else factor

    def predict_mean(self, q, target_cache: CacheModel | None = None):
        """Predicted mean time, optionally retargeted to another cache."""
        base = self.base.predict_mean(q)
        if target_cache is None:
            return base
        return base * self.scale_factor(target_cache, q)

    def predict_std(self, q, target_cache: CacheModel | None = None):
        """Predicted sigma; cache variability scales with the same factor."""
        base = self.base.predict_std(q)
        if target_cache is None:
            return base
        return base * self.scale_factor(target_cache, q)


def fit_miss_penalty(
    q: np.ndarray,
    t_sequential: np.ndarray,
    t_strided: np.ndarray,
    cache: CacheModel,
    stride_elements: int,
    passes: int = 2,
) -> float:
    """Estimate the miss penalty from dual-mode measurements.

    Uses the paper's own data layout: the same component measured in
    sequential and strided modes.  For each Q the observed slowdown
    ``t_strided/t_sequential - 1`` is regressed (through the origin)
    against the modeled miss-ratio difference between the two patterns.
    Returns 0 when the cache model predicts no difference.
    """
    qa = np.asarray(q, dtype=float)
    ts = np.asarray(t_sequential, dtype=float)
    ty = np.asarray(t_strided, dtype=float)
    if not (qa.shape == ts.shape == ty.shape):
        raise ValueError("q, t_sequential, t_strided must have equal shapes")
    if np.any(ts <= 0):
        raise ValueError("sequential times must be positive")
    dm = np.array([
        cache.miss_ratio(int(x), pattern=AccessPattern.STRIDED,
                         stride_elements=stride_elements, passes=passes)
        - cache.miss_ratio(int(x), pattern=AccessPattern.SEQUENTIAL, passes=passes)
        for x in qa
    ])
    slowdown = ty / ts - 1.0
    denom = float(dm @ dm)
    if denom == 0.0:
        return 0.0
    return max(0.0, float(dm @ slowdown) / denom)
