"""Per-access-mode performance models.

The paper averages the two operation modes into one model: "both the X-
and Y-derivatives are calculated and the two modes of operation ... are
invoked in an alternating fashion.  Thus, for performance modeling
purposes, we consider an average.  However, we also include a standard
deviation ... to track the variability introduced by the cache."

Averaging is what *makes* the sigma large.  This module implements the
refinement the paper's data begs for: one model per mode, composed into a
:class:`ModalPerformanceModel` whose mode-aware predictions carry far less
variance than the pooled model — quantified by :func:`variance_explained`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.models.performance import PerformanceModel, build_model
from repro.perf.records import MethodRecord


@dataclass(frozen=True)
class ModalPerformanceModel:
    """A per-mode family of models sharing one interface.

    ``predict_mean(q, mode)`` dispatches to the mode's model;
    ``predict_mean(q)`` (no mode) returns the average over modes, matching
    the paper's pooled model semantics for callers that don't know the
    mode mix.
    """

    name: str
    per_mode: Mapping[str, PerformanceModel]
    quality: float = 1.0

    def __post_init__(self) -> None:
        if not self.per_mode:
            raise ValueError("at least one mode model is required")

    @property
    def modes(self) -> list[str]:
        return sorted(self.per_mode)

    def model_for(self, mode: str) -> PerformanceModel:
        try:
            return self.per_mode[mode]
        except KeyError:
            raise KeyError(
                f"{self.name}: no model for mode {mode!r}; have {self.modes}"
            ) from None

    def predict_mean(self, q, mode: str | None = None):
        if mode is not None:
            return self.model_for(mode).predict_mean(q)
        preds = [m.predict_mean(q) for m in self.per_mode.values()]
        return sum(preds) / len(preds)

    def predict_std(self, q, mode: str | None = None):
        if mode is not None:
            return self.model_for(mode).predict_std(q)
        stds = [np.asarray(m.predict_std(q), dtype=float)
                for m in self.per_mode.values()]
        out = np.sqrt(sum(s**2 for s in stds) / len(stds))
        return float(out) if np.ndim(q) == 0 else out

    def mode_ratio(self, q, a: str = "y", b: str = "x"):
        """Predicted cost ratio between two modes (the Figure-5 curve)."""
        return np.asarray(self.model_for(a).predict_mean(q)) / \
            np.asarray(self.model_for(b).predict_mean(q))


def build_modal_model(
    record: MethodRecord,
    param: str = "Q",
    mode_param: str = "mode",
    quality: float = 1.0,
    **model_kwargs,
) -> ModalPerformanceModel:
    """Fit one model per observed mode from a Mastermind method record."""
    modes = sorted({inv.params.get(mode_param) for inv in record.invocations})
    if modes == [None]:
        raise ValueError(
            f"{record.timer_name}: no {mode_param!r} parameter recorded; "
            "did the proxy's extractor capture it?"
        )
    per_mode: dict[str, PerformanceModel] = {}
    for mode in modes:
        invs = [inv for inv in record.invocations
                if inv.params.get(mode_param) == mode]
        q = np.asarray([inv.params[param] for inv in invs], dtype=float)
        t = np.asarray([inv.wall_us for inv in invs])
        per_mode[str(mode)] = build_model(
            f"{record.timer_name}[{mode}]", q, t, quality=quality, **model_kwargs
        )
    return ModalPerformanceModel(name=record.timer_name, per_mode=per_mode,
                                 quality=quality)


def variance_explained(
    record: MethodRecord,
    modal: ModalPerformanceModel,
    pooled: PerformanceModel,
    param: str = "Q",
    mode_param: str = "mode",
) -> tuple[float, float]:
    """Residual RMS of the pooled vs the mode-aware model on the record.

    Returns ``(rms_pooled, rms_modal)``; a smaller modal RMS quantifies how
    much of the paper's 'large standard deviation' was really mode mixing.
    """
    q = record.param_series(param)
    t = record.wall_series()
    modes = [inv.params.get(mode_param) for inv in record.invocations]
    pooled_pred = np.atleast_1d(pooled.predict_mean(q))
    modal_pred = np.asarray([
        float(modal.predict_mean(qi, str(m))) for qi, m in zip(q, modes)
    ])
    rms_pooled = float(np.sqrt(np.mean((t - pooled_pred) ** 2)))
    rms_modal = float(np.sqrt(np.mean((t - modal_pred) ** 2)))
    return rms_pooled, rms_modal
