"""Per-component performance models.

A :class:`PerformanceModel` predicts, for one component method, the mean
execution time and its standard deviation as functions of the workload
parameter Q (the input array size in the paper's case study).  Section 5's
procedure is followed exactly: invocations are *binned by Q*, the per-bin
mean and standard deviation are computed (averaging over the two — sequential
and strided — modes of operation, which is what produces the large sigma), and
a functional form is regressed to each.

The model also records the measurement context (cache capacity, processor
tag) because "the models derived here are valid only on a similar cluster"
(Section 6); :meth:`PerformanceModel.context_matches` lets callers detect
when a model is being applied outside its calibration context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.models.fits import ModelFit, select_best


def bin_by_q(
    q: Sequence[float], t: Sequence[float], min_count: int = 1
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group samples by exact Q value.

    Returns ``(q_unique, mean, std, count)`` with bins having fewer than
    ``min_count`` samples dropped.  Std is the population value (ddof=0),
    0 for singleton bins.
    """
    qa = np.asarray(q, dtype=float)
    ta = np.asarray(t, dtype=float)
    if qa.shape != ta.shape or qa.ndim != 1:
        raise ValueError(f"Q/T shape mismatch: {qa.shape} vs {ta.shape}")
    uq = np.unique(qa)
    means, stds, counts, keep = [], [], [], []
    for v in uq:
        sel = ta[qa == v]
        if sel.size < min_count:
            continue
        keep.append(v)
        means.append(float(sel.mean()))
        stds.append(float(sel.std()))
        counts.append(sel.size)
    return (np.asarray(keep), np.asarray(means), np.asarray(stds),
            np.asarray(counts, dtype=int))


@dataclass(frozen=True)
class PerformanceModel:
    """Mean + standard-deviation predictors for one method.

    ``quality`` carries the implementation's QoS figure (accuracy etc.) for
    the QoS-aware optimizer of Section 5's discussion.
    """

    name: str
    mean_fit: ModelFit
    std_fit: ModelFit | None = None
    quality: float = 1.0
    context: Mapping[str, object] = field(default_factory=dict)

    def predict_mean(self, q: float | np.ndarray) -> float | np.ndarray:
        """Predicted mean execution time at workload Q (microseconds)."""
        return self.mean_fit.predict(q)

    def predict_std(self, q: float | np.ndarray) -> float | np.ndarray:
        """Predicted standard deviation at Q (0 if no sigma model)."""
        if self.std_fit is None:
            arr = np.asarray(q, dtype=float)
            return 0.0 if arr.ndim == 0 else np.zeros_like(arr)
        pred = self.std_fit.predict(q)
        # A fitted sigma can go negative outside the calibration range;
        # clamp, a standard deviation cannot be negative.
        return float(max(pred, 0.0)) if np.ndim(pred) == 0 else np.maximum(pred, 0.0)

    def context_matches(self, other: Mapping[str, object]) -> bool:
        """True when every shared context key agrees (Section 6 caveat)."""
        return all(other.get(k) == v for k, v in self.context.items() if k in other)

    def describe(self) -> str:
        lines = [f"PerformanceModel[{self.name}]", f"  mean: {self.mean_fit}"]
        if self.std_fit is not None:
            lines.append(f"  std:  {self.std_fit}")
        if self.context:
            lines.append(f"  context: {dict(self.context)}")
        return "\n".join(lines)


def build_model(
    name: str,
    q: Sequence[float],
    t: Sequence[float],
    *,
    mean_families: Sequence[str] = ("linear", "poly2", "power"),
    std_families: Sequence[str] = ("linear", "poly2", "poly4", "exponential"),
    quality: float = 1.0,
    context: Mapping[str, object] | None = None,
    min_bin_count: int = 2,
) -> PerformanceModel:
    """Construct a model from raw per-invocation measurements.

    Follows the paper: bin by Q, fit the binned means with one family set
    and the binned standard deviations with another (the sigma families
    include quartic polynomials and exponentials per Eq. 2).
    """
    qb, mean, std, _count = bin_by_q(q, t, min_count=min_bin_count)
    if qb.size < 2:
        raise ValueError(
            f"{name}: need >= 2 populated Q bins (min {min_bin_count} samples each), "
            f"got {qb.size}"
        )
    mean_fit = select_best(qb, mean, mean_families)
    std_fit = None
    if np.any(std > 0):
        positive = std > 0
        if positive.sum() >= 2:
            try:
                std_fit = select_best(qb[positive], std[positive], std_families)
            except ValueError:
                std_fit = None
    return PerformanceModel(
        name=name,
        mean_fit=mean_fit,
        std_fit=std_fit,
        quality=quality,
        context=dict(context or {}),
    )
