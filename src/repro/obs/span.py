"""Distributed span tracing: nested spans with causal cross-rank links.

The flat ENTER/EXIT streams of :mod:`repro.tau.trace` answer "what ran
when on rank r" but not "what *unblocked* what": a send on rank 0 and the
receive it satisfies on rank 3 are unrelated records.  This module adds
the span model (ScALPEL-style always-on monitoring over Cactus-style
hierarchical timer trees):

* a :class:`Span` is a named interval with a unique id, a parent id (the
  enclosing span on the same rank) and a category used by the
  critical-path analyzer (compute / mpi / mpi_wait / retry / ...);
* a :class:`FlowPoint` is one endpoint of a causal cross-rank edge —
  a matched send/recv pair shares a flow id (the envelope's send sequence
  number), collective participants share a ``c:<context>:<seq>`` id;
* the :class:`SpanTracer` opens/closes spans per rank, records flow
  points, samples 1-in-N invocations when asked to, bounds its buffer
  (``dropped_count`` says how much history was lost) and measures its own
  cost (``self_overhead_us``) so a full case-study run can report the
  tracing tax it paid.

All timestamps are wall-clock microseconds from
:func:`repro.util.timebase.now_us`, which is one monotonic clock shared
by every rank thread of the process — cross-rank comparisons are valid.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.util.timebase import now_us

# Span categories consumed by the critical-path analyzer.
CAT_COMPUTE = "compute"
CAT_MPI = "mpi"          # cheap posting ops (send/isend/irecv/iprobe)
CAT_MPI_WAIT = "mpi_wait"  # blocking ops (recv/wait*/collectives)
CAT_RETRY = "retry"
CAT_CHECKPOINT = "checkpoint"
CAT_STEP = "step"
CAT_OTHER = "other"

#: flow-point kinds
FLOW_OUT = "out"    # source endpoint of a p2p edge (the send span)
FLOW_IN = "in"      # sink endpoint of a p2p edge (the receive span)
FLOW_COLL = "coll"  # one participant of a collective rendezvous

#: span-id space per rank (rank << _RANK_SHIFT | local counter): unique
#: across ranks and deterministic per rank regardless of interleaving.
_RANK_SHIFT = 40


@dataclass
class Span:
    """One traced interval on one rank."""

    span_id: int
    parent_id: int | None
    rank: int
    name: str
    category: str
    t_start_us: float
    t_end_us: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return max(0.0, self.t_end_us - self.t_start_us)

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "rank": self.rank,
            "name": self.name,
            "category": self.category,
            "t_start_us": self.t_start_us,
            "t_end_us": self.t_end_us,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Span":
        return cls(
            span_id=int(d["span_id"]),
            parent_id=None if d.get("parent_id") is None else int(d["parent_id"]),
            rank=int(d["rank"]), name=str(d["name"]),
            category=str(d["category"]),
            t_start_us=float(d["t_start_us"]),
            t_end_us=float(d.get("t_end_us", 0.0)),
            attrs=dict(d.get("attrs") or {}),
        )


@dataclass(frozen=True)
class FlowPoint:
    """One endpoint of a causal edge between spans (possibly cross-rank)."""

    flow_id: str
    kind: str  # FLOW_OUT / FLOW_IN / FLOW_COLL
    rank: int
    span_id: int
    t_us: float


class SpanTracer:
    """Per-rank span recorder with sampling, bounding and self-accounting.

    ``sample_every=N`` keeps 1-in-N of the spans opened with
    ``sampled=True`` (per span name, first occurrence always kept, so
    every routine appears at least once).  Spans opened with
    ``sampled=False`` — the MPI ops — are always recorded, because a
    sampled-out send would orphan the receive edge on another rank.

    The buffer is bounded like :class:`repro.tau.trace.Tracer`: overflow
    drops the oldest half of the *closed* spans and ``dropped_count``
    says so; exporters must surface it loudly.

    Self-accounting: every ``_OVERHEAD_STRIDE``-th begin/end measures its
    own duration with two extra clock reads and scales by the stride, so
    ``self_overhead_us`` estimates the total tracing tax without paying
    two clock reads on every operation.
    """

    _OVERHEAD_STRIDE = 16

    def __init__(self, rank: int = 0, max_spans: int = 200_000,
                 sample_every: int = 1,
                 clock: Callable[[], float] = now_us) -> None:
        if max_spans < 2:
            raise ValueError(f"max_spans must be >= 2, got {max_spans}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.rank = int(rank)
        self.max_spans = int(max_spans)
        self.sample_every = int(sample_every)
        self._clock = clock
        self._next_local = 0
        self._spans: list[Span] = []          # closed spans
        self._open: list[Span] = []           # stack of open spans
        self._flows: list[FlowPoint] = []
        self._sample_counters: dict[str, int] = {}
        self.dropped_count = 0
        self.sampled_out = 0
        self.self_overhead_us = 0.0
        self._ops = 0
        #: optional adaptive controller (repro.obs.adaptive.AdaptiveSampler);
        #: when attached it owns the per-category sampling rate and
        #: ``sample_every`` becomes the fallback for unknown categories.
        self.controller: Any = None
        #: optional flight recorder (repro.obs.flightrec.FlightRecorder);
        #: sees every closed span for its crash ring.
        self.recorder: Any = None

    @property
    def ops(self) -> int:
        """Begin/end operations performed (the controller's clock)."""
        return self._ops

    def attach_controller(self, controller: Any) -> None:
        """Hand sampling-rate control to an adaptive controller."""
        self.controller = controller

    def attach_recorder(self, recorder: Any) -> None:
        """Mirror every closed span into a flight recorder's ring."""
        self.recorder = recorder

    # ---------------------------------------------------------- identity
    def _new_id(self) -> int:
        sid = (self.rank << _RANK_SHIFT) | self._next_local
        self._next_local += 1
        return sid

    def current(self) -> Span | None:
        """The innermost open span (None outside any span)."""
        return self._open[-1] if self._open else None

    def context(self) -> tuple[int, int] | None:
        """(rank, span_id) of the innermost open span, for envelope stamping."""
        cur = self.current()
        return (self.rank, cur.span_id) if cur is not None else None

    # ------------------------------------------------------------- spans
    def start(self, name: str, category: str = CAT_OTHER, *,
              sampled: bool = False, **attrs: Any) -> Span | None:
        """Open a span; returns None when sampled out (pass it to :meth:`end`)."""
        self._ops += 1
        t_probe = self._clock() if self._ops % self._OVERHEAD_STRIDE == 0 else None
        if sampled:
            rate = (self.controller.rate_for(category)
                    if self.controller is not None else self.sample_every)
            if rate > 1:
                k = self._sample_counters.get(name, 0)
                self._sample_counters[name] = k + 1
                if k % rate != 0:
                    self.sampled_out += 1
                    if t_probe is not None:
                        self.self_overhead_us += (
                            (self._clock() - t_probe) * self._OVERHEAD_STRIDE)
                    self._control_step()
                    return None
        parent = self._open[-1].span_id if self._open else None
        span = Span(
            span_id=self._new_id(), parent_id=parent, rank=self.rank,
            name=name, category=category, t_start_us=self._clock(),
            attrs=dict(attrs) if attrs else {},
        )
        self._open.append(span)
        if t_probe is not None:
            self.self_overhead_us += (self._clock() - t_probe) * self._OVERHEAD_STRIDE
        self._control_step()
        return span

    def end(self, span: Span | None) -> None:
        """Close a span returned by :meth:`start` (no-op for sampled-out None)."""
        if span is None:
            return
        self._ops += 1
        t_probe = self._clock() if self._ops % self._OVERHEAD_STRIDE == 0 else None
        span.t_end_us = self._clock()
        # The span model permits out-of-order closes only for the innermost
        # stack discipline the profiler already enforces; tolerate a missing
        # frame (e.g. the tracer was swapped mid-run) rather than corrupting
        # the stack.
        if self._open and self._open[-1] is span:
            self._open.pop()
        elif span in self._open:  # pragma: no cover - defensive
            self._open.remove(span)
        self._append(span)
        if t_probe is not None:
            self.self_overhead_us += (self._clock() - t_probe) * self._OVERHEAD_STRIDE
        self._control_step()

    def _control_step(self) -> None:
        """Run the adaptive controller at its op stride.

        Called *after* the overhead probe closes: the control step lands
        on ops divisible by ``interval`` (a multiple of the probe stride),
        so timing it inside the probe would scale its rare cost by the
        stride and poison the very tax estimate it reads.
        """
        ctl = self.controller
        if ctl is not None and self._ops % ctl.interval == 0:
            ctl.maybe_adjust(self)

    def _append(self, span: Span) -> None:
        if len(self._spans) >= self.max_spans:
            keep = self.max_spans // 2
            self.dropped_count += len(self._spans) - keep
            self._spans = self._spans[-keep:]
        self._spans.append(span)
        if self.recorder is not None:
            self.recorder.on_span(span)

    @contextlib.contextmanager
    def span(self, name: str, category: str = CAT_OTHER, *,
             sampled: bool = False, **attrs: Any) -> Iterator[Span | None]:
        """Context manager bracketing a region with start/end."""
        sp = self.start(name, category, sampled=sampled, **attrs)
        try:
            yield sp
        finally:
            self.end(sp)

    def instant(self, name: str, category: str = CAT_OTHER, **attrs: Any) -> Span:
        """Record a zero-duration marker span (always kept)."""
        t = self._clock()
        span = Span(
            span_id=self._new_id(),
            parent_id=self._open[-1].span_id if self._open else None,
            rank=self.rank, name=name, category=category,
            t_start_us=t, t_end_us=t, attrs=dict(attrs) if attrs else {},
        )
        self._append(span)
        return span

    # ------------------------------------------------------------- flows
    def flow_out(self, flow_id: str, span: Span | None) -> None:
        """Mark ``span`` as the source of causal edge ``flow_id``."""
        if span is None:
            span = self.instant("flow_out", CAT_MPI)
        self._flows.append(FlowPoint(str(flow_id), FLOW_OUT, self.rank,
                                     span.span_id, self._clock()))

    def flow_in(self, flow_id: str, span: Span | None) -> None:
        """Mark ``span`` as the sink of causal edge ``flow_id``.

        With no span (a bare ``Request.test`` outside any wait), an
        instant marker span anchors the edge so it is never lost.
        """
        if span is None:
            span = self.instant("recv_complete", CAT_MPI)
        self._flows.append(FlowPoint(str(flow_id), FLOW_IN, self.rank,
                                     span.span_id, self._clock()))

    def flow_collective(self, flow_id: str, span: Span | None) -> None:
        """Mark ``span`` as one participant of collective ``flow_id``.

        The analyzer/exporter derive edges from the last-arriving
        participant (the rank that unblocked everyone) to all others.
        ``t_us`` is therefore the span's *start* (arrival) time.
        """
        if span is None:
            return
        self._flows.append(FlowPoint(str(flow_id), FLOW_COLL, self.rank,
                                     span.span_id, span.t_start_us))

    # ----------------------------------------------------------- queries
    def spans(self) -> list[Span]:
        """Closed spans, oldest first (open spans are not included)."""
        return list(self._spans)

    def recent_spans(self, n: int = 100) -> list[Span]:
        """The last ``n`` closed spans (cheap slice; live-endpoint feed)."""
        if n < 1:
            return []
        return self._spans[-n:]

    def flows(self) -> list[FlowPoint]:
        return list(self._flows)

    def open_depth(self) -> int:
        return len(self._open)

    def __len__(self) -> int:
        return len(self._spans)

    def overhead_report(self) -> dict[str, float]:
        """The tracer's own measured cost (the observability tax).

        ``self_overhead_us`` is a sampled estimate (every
        ``_OVERHEAD_STRIDE``-th operation is timed and scaled); ``ops``
        counts every begin/end/instant operation performed.
        """
        return {
            "ops": float(self._ops),
            "spans": float(len(self._spans)),
            "flows": float(len(self._flows)),
            "sampled_out": float(self.sampled_out),
            "dropped": float(self.dropped_count),
            "self_overhead_us": self.self_overhead_us,
        }
