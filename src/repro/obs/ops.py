"""Live ops sidecar: the serving stack's endpoints for case-study runs.

The PR-7 model server exposes ``/metrics`` / ``/healthz`` / ``/live``
because it is a long-running service; a case-study *simulation* is just
as long-running at scale, but had no runtime surface at all — every
artifact appeared after the run.  :class:`ObsSidecar` closes that gap:
point it at a world's live ``obs`` list and it serves

* ``GET /metrics`` — cross-rank merged Prometheus exposition, including
  the tracer accounting (drops, sampling tax) and adaptive-sampler rates;
* ``GET /metrics.json`` — the same registry as JSON;
* ``GET /healthz`` — rank count, span totals, last completed step per
  rank, drop status;
* ``GET /debug/spans`` — the most recent closed spans across all ranks;
* ``GET /live`` — an SSE stream of per-step aggregates.

The HTTP front is the same stdlib-asyncio plumbing as the model server
(:mod:`repro.util.httpd`), run on a private event loop inside a daemon
thread so the simulation's rank threads never share a scheduler with the
scrape traffic.  Reads are lock-free snapshots of per-rank state (list
slices and registry merges are atomic enough under the GIL; the merge
retries if a registry grows mid-scrape).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Sequence

from repro.obs.export import live_metrics
from repro.obs.runtime import RankObs
from repro.util.httpd import (Response, read_request, render_response,
                              sse_event, sse_preamble)
from repro.util.timebase import now_us


class ObsSidecar:
    """Serve live observability endpoints over a run's rank-obs list."""

    def __init__(self, obs: Sequence[RankObs], host: str = "127.0.0.1",
                 port: int = 0, *, live_interval_s: float = 0.25,
                 debug_spans: int = 100,
                 max_body_bytes: int = 64 * 1024) -> None:
        if not obs:
            raise ValueError("sidecar needs at least one RankObs to serve")
        self.obs = list(obs)
        self.host = host
        self.port = int(port)  # 0 = ephemeral; replaced once bound
        self.live_interval_s = float(live_interval_s)
        self.debug_spans = int(debug_spans)
        self.max_body_bytes = int(max_body_bytes)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._clients: set[asyncio.Task] = set()

    # ------------------------------------------------------------ handlers
    async def handle(self, method: str, path: str) -> Response:
        """Dispatch one request; never raises (the test/driving surface)."""
        if method != "GET":
            return Response.error(405, f"method {method} not allowed")
        if path == "/metrics":
            return Response(status=200,
                            body=live_metrics(self.obs).to_prometheus().encode(),
                            content_type="text/plain; version=0.0.4")
        if path == "/metrics.json":
            return Response(status=200,
                            body=live_metrics(self.obs).to_json().encode())
        if path == "/healthz":
            return Response.json(200, self._health())
        if path == "/debug/spans":
            return Response.json(200, self._recent_spans())
        return Response.error(404, f"no route for GET {path}")

    def _health(self) -> dict[str, Any]:
        dropped = {ro.rank: ro.tracer.dropped_count
                   for ro in self.obs if ro.tracer.dropped_count}
        return {
            "status": "ok" if not dropped else "degraded",
            "ranks": len(self.obs),
            "spans_total": sum(len(ro.tracer) for ro in self.obs),
            "last_step": self._last_steps(),
            "dropped_total": sum(dropped.values()),
            "dropped_by_rank": {str(r): n for r, n in sorted(dropped.items())},
        }

    def _last_steps(self) -> dict[str, Any]:
        """Last completed step per rank (from the flight-recorder rings)."""
        out: dict[str, Any] = {}
        for ro in self.obs:
            rec = getattr(ro, "recorder", None)
            step = None
            if rec is not None and rec.step_deltas:
                step = rec.step_deltas[-1].get("step")
            out[str(ro.rank)] = step
        return out

    def _recent_spans(self) -> dict[str, Any]:
        spans: list[dict[str, Any]] = []
        for ro in self.obs:
            spans.extend(s.to_dict()
                         for s in ro.tracer.recent_spans(self.debug_spans))
        spans.sort(key=lambda d: d["t_start_us"])
        return {
            "spans": spans[-self.debug_spans:],
            "dropped": sum(ro.tracer.dropped_count for ro in self.obs),
            "sampled_out": sum(ro.tracer.sampled_out for ro in self.obs),
        }

    def live_snapshot(self) -> dict[str, Any]:
        """One frame of the SSE ``/live`` stream: per-step aggregates."""
        return {
            "t_us": now_us(),
            "spans_total": sum(len(ro.tracer) for ro in self.obs),
            "ops_total": sum(ro.tracer.ops for ro in self.obs),
            "dropped_total": sum(ro.tracer.dropped_count for ro in self.obs),
            "last_step": self._last_steps(),
        }

    # ---------------------------------------------------------- HTTP front
    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        # Register so _main can drain us instead of cancelling mid-close
        # (a cancelled client task makes asyncio's stream machinery log a
        # spurious CancelledError at loop shutdown).
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
            task.add_done_callback(self._clients.discard)
        try:
            while True:
                request = await read_request(reader, self.max_body_bytes)
                if request is None:
                    break
                method, path, _body, keep_alive, too_large = request
                if too_large:
                    resp = Response.error(413, "request body too large")
                    keep_alive = False
                elif method == "GET" and path == "/live":
                    await self._stream_live(writer)
                    break
                else:
                    resp = await self.handle(method, path)
                writer.write(render_response(resp, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _stream_live(self, writer: asyncio.StreamWriter) -> None:
        assert self._stop_event is not None
        writer.write(sse_preamble())
        await writer.drain()
        while not self._stop_event.is_set():
            writer.write(sse_event(self.live_snapshot()))
            await writer.drain()
            try:
                await asyncio.wait_for(self._stop_event.wait(),
                                       self.live_interval_s)
            except asyncio.TimeoutError:
                pass

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "ObsSidecar":
        """Bind and serve on a daemon thread; returns self once listening."""
        if self._thread is not None:
            raise RuntimeError("sidecar already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="obs-sidecar")
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"sidecar failed to bind {self.host}:{self.port}"
            ) from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("sidecar did not start within 10 s")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # ra: noqa[RA005] — surfaced to start()
            self._startup_error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._client, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._stop_event.wait()
            # Open connections see the stop event (SSE loops exit on it);
            # give them a moment to finish their close handshake so none
            # is cancelled inside wait_closed().
            if self._clients:
                await asyncio.wait(set(self._clients), timeout=2.0)

    def stop(self) -> None:
        """Stop serving and join the thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "ObsSidecar":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


def fetch(url: str, timeout: float = 5.0) -> tuple[int, bytes]:
    """Tiny HTTP GET for tests/examples (stdlib only; no new deps)."""
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as resp:  # noqa: S310 (loopback)
        return resp.status, resp.read()


def parse_sse(stream: bytes) -> list[Any]:
    """Decode ``data:`` frames from a captured SSE byte stream."""
    events: list[Any] = []
    for frame in stream.split(b"\n\n"):
        if frame.startswith(b"data: "):
            events.append(json.loads(frame[len(b"data: "):]))
    return events
