"""Per-rank crash flight recorder and cross-rank post-mortem merger.

Exascale in-situ diagnostics (PAPERS.md) argue the most valuable trace is
the one covering the seconds *before* a failure — exactly the data a
bounded tracer has usually already evicted by the time anything goes
wrong.  The :class:`FlightRecorder` is the black box for that moment:
a set of small rings (recent closed spans, MPI ledger charges, structured
log records, sampler decisions, per-step metric deltas) that every rank
keeps regardless of what the exporter later throws away.  When a crash
fault fires, the deadlock detector raises, or a fatal sanitizer finding
aborts the job, the backend dumps each rank's rings to
``out/flightrec/rank<k>.json``; :func:`merge_flight_recordings` then
reassembles the last-N-steps cross-rank timeline as a Perfetto-compatible
trace for triage.

Timestamps come exclusively from :func:`repro.util.timebase.now_us` —
one monotonic clock per machine, so merged cross-rank (and, on Linux,
cross-process) orderings are valid.
"""

from __future__ import annotations

import glob
import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.span import CAT_STEP, Span
from repro.util.atomicio import atomic_write_text
from repro.util.timebase import now_us

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

#: file-name pattern of one rank's dump inside the flightrec directory
RANK_FILE = "rank{rank}.json"

#: merged Perfetto-compatible timeline written by the merger
MERGED_TRACE = "postmortem_trace.json"

#: merged machine-readable summary written next to the trace
MERGED_SUMMARY = "postmortem.json"


class FlightRecorder:
    """One rank's bounded black-box rings (always-on, constant memory).

    Attach to a :class:`~repro.obs.span.SpanTracer` with
    ``tracer.attach_recorder(recorder)`` (every closed span lands in the
    span ring, even ones the exporter later drops) and to the rank's
    :class:`~repro.mpi.accounting.MPIAccounting` via
    ``accounting.add_listener(recorder.on_mpi)``.  The recorder never
    references the tracer or the world back, so a worker process can
    pickle it home inside its :class:`~repro.obs.runtime.RankObs`.
    """

    __slots__ = ("rank", "depth", "directory", "spans", "ledger", "logs",
                 "decisions", "step_deltas", "metrics", "_counter_base",
                 "dumped_to")

    def __init__(self, rank: int, *, depth: int = 512,
                 directory: str = os.path.join("out", "flightrec"),
                 metrics: "MetricsRegistry | None" = None) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.rank = int(rank)
        self.depth = int(depth)
        self.directory = directory
        self.spans: deque[Span] = deque(maxlen=depth)
        self.ledger: deque[tuple[float, str, float]] = deque(maxlen=depth)
        self.logs: deque[dict[str, Any]] = deque(maxlen=depth)
        self.decisions: deque[dict[str, Any]] = deque(maxlen=depth)
        self.step_deltas: deque[dict[str, Any]] = deque(maxlen=depth)
        self.metrics = metrics
        self._counter_base: dict[str, float] = {}
        #: path of the dump file once written (dump-once guard: the first
        #: cause wins; a cascade of abort-induced failures must not
        #: overwrite the recording of the primary fault)
        self.dumped_to: str | None = None

    # ------------------------------------------------------------- feeds
    def on_span(self, span: Span) -> None:
        """Tracer hook: every closed span enters the ring."""
        self.spans.append(span)
        if span.category == CAT_STEP and self.metrics is not None:
            self._capture_step_delta(span)

    def on_mpi(self, routine: str, cost_us: float) -> None:
        """Accounting listener: one modeled MPI charge."""
        self.ledger.append((now_us(), routine, float(cost_us)))

    def on_decision(self, decision: dict[str, Any]) -> None:
        """Adaptive-sampler hook: one rate-change decision."""
        self.decisions.append(decision)

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Structured log record (timestamped via util.timebase)."""
        rec = {"t_us": now_us(), "level": str(level), "event": str(event),
               "rank": self.rank}
        if fields:
            rec["fields"] = fields
        self.logs.append(rec)

    def _capture_step_delta(self, span: Span) -> None:
        """Counter deltas over the step that just closed."""
        totals: dict[str, float] = {}
        for name, lk, inst in self.metrics.series():  # type: ignore[union-attr]
            if type(inst).__name__ != "Counter":
                continue
            key = name + json.dumps(dict(lk), sort_keys=True)
            totals[key] = totals.get(key, 0.0) + inst.value
        deltas = {k: v - self._counter_base.get(k, 0.0)
                  for k, v in totals.items()
                  if v != self._counter_base.get(k, 0.0)}
        self._counter_base = totals
        self.step_deltas.append({
            "step": span.attrs.get("step"),
            "t_end_us": span.t_end_us,
            "duration_us": span.duration_us,
            "counter_deltas": deltas,
        })

    # ------------------------------------------------------------- dumps
    def snapshot(self) -> dict[str, Any]:
        """JSON-able view of every ring."""
        return {
            "rank": self.rank,
            "depth": self.depth,
            "spans": [s.to_dict() for s in self.spans],
            "ledger": [{"t_us": t, "routine": r, "cost_us": c}
                       for t, r, c in self.ledger],
            "logs": list(self.logs),
            "decisions": list(self.decisions),
            "step_deltas": list(self.step_deltas),
        }

    def dump(self, reason: str, directory: str | None = None) -> str:
        """Write this rank's black box (first cause wins; idempotent)."""
        if self.dumped_to is not None:
            return self.dumped_to
        outdir = directory or self.directory
        os.makedirs(outdir, exist_ok=True)
        payload = self.snapshot()
        payload["reason"] = reason
        payload["t_dump_us"] = now_us()
        path = os.path.join(outdir, RANK_FILE.format(rank=self.rank))
        atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True))
        self.dumped_to = path
        return path


def dump_flight_recorders(obs: list | None, reason: str,
                          directory: str | None = None) -> list[str]:
    """Dump every attached recorder of a world's obs bundle (crash path).

    Safe to call with observability off or recorders absent; returns the
    paths written.  Backends call this on the failure path *before*
    raising :class:`~repro.mpi.runner.RankFailure`, so the black boxes
    exist even though the exception unwinds the whole launcher.
    """
    paths: list[str] = []
    for ro in obs or []:
        rec = getattr(ro, "recorder", None)
        if rec is not None:
            paths.append(rec.dump(reason, directory))
    return paths


# ------------------------------------------------------------------ merge
@dataclass
class PostMortem:
    """Cross-rank reconstruction of the moments before a failure."""

    directory: str
    ranks: list[int]
    reasons: dict[int, str]
    spans: list[Span]
    steps: list[int] = field(default_factory=list)
    trace_path: str = ""
    summary_path: str = ""
    problems: list[str] = field(default_factory=list)

    @property
    def window_us(self) -> float:
        if not self.spans:
            return 0.0
        return (max(s.t_end_us for s in self.spans)
                - min(s.t_start_us for s in self.spans))

    def format(self) -> str:
        lines = [f"post-mortem over ranks {self.ranks} "
                 f"({len(self.spans)} spans, {self.window_us / 1e3:.2f} ms)"]
        for r in self.ranks:
            lines.append(f"  rank {r}: {self.reasons.get(r, '?')}")
        if self.steps:
            lines.append(f"  steps covered: {self.steps[0]}..{self.steps[-1]}")
        lines.append(f"  timeline: {self.trace_path}"
                     + (" [VALID]" if not self.problems else
                        f" [{len(self.problems)} validation problems]"))
        return "\n".join(lines)


def merge_flight_recordings(directory: str = os.path.join("out", "flightrec"),
                            ) -> PostMortem:
    """Merge ``rank*.json`` dumps into one Perfetto-compatible timeline.

    Spans from all ranks sort onto the shared monotonic clock; the merged
    trace carries spans only (a black-box window necessarily truncates
    flow edges at its boundary, and a half-edge would fail Perfetto's
    flow validation).  The trace is validated before the summary is
    written, so a "timeline exists" check in CI really means "loads in
    ui.perfetto.dev".
    """
    from repro.obs.export import validate_chrome_payload
    from repro.tau.trace import dump_chrome_trace_spans

    files = sorted(glob.glob(os.path.join(directory, "rank*.json")))
    if not files:
        raise FileNotFoundError(
            f"no flight-recorder dumps (rank*.json) under {directory!r}")
    ranks: list[int] = []
    reasons: dict[int, str] = {}
    spans: list[Span] = []
    steps: set[int] = set()
    for path in files:
        with open(path) as fh:
            payload = json.load(fh)
        rank = int(payload["rank"])
        ranks.append(rank)
        reasons[rank] = str(payload.get("reason", "?"))
        for d in payload.get("spans", []):
            spans.append(Span.from_dict(d))
        for sd in payload.get("step_deltas", []):
            if sd.get("step") is not None:
                steps.add(int(sd["step"]))
    spans.sort(key=lambda s: (s.t_start_us, s.rank, s.span_id))
    trace_path = os.path.join(directory, MERGED_TRACE)
    dump_chrome_trace_spans(spans, [], trace_path,
                            process_name="flight recorder")
    with open(trace_path) as fh:
        problems = validate_chrome_payload(json.load(fh))
    pm = PostMortem(directory=directory, ranks=ranks, reasons=reasons,
                    spans=spans, steps=sorted(steps),
                    trace_path=trace_path, problems=list(problems))
    summary = {
        "ranks": ranks,
        "reasons": {str(r): reasons[r] for r in ranks},
        "n_spans": len(spans),
        "window_us": pm.window_us,
        "steps": pm.steps,
        "trace": os.path.basename(trace_path),
        "valid": not pm.problems,
        "problems": pm.problems,
    }
    pm.summary_path = os.path.join(directory, MERGED_SUMMARY)
    atomic_write_text(pm.summary_path,
                      json.dumps(summary, indent=1, sort_keys=True))
    return pm
