"""Adaptive span sampling under a tracing-overhead budget.

The fixed 1-in-N sampling of PR 3 has the ScALPEL problem backwards: the
user picks a rate and *hopes* the overhead lands somewhere acceptable.
This module inverts it — the user states an overhead budget (the tracing
tax as a fraction of wall clock, default ≤ 2%) and the sampler chooses
rates online to stay under it:

* the tracer's existing 1-in-16 self-timed accounting
  (:attr:`~repro.obs.span.SpanTracer.self_overhead_us`) is the measured
  cost signal, the wall clock since attach the denominator;
* every ``interval`` tracer operations the controller compares the
  cumulative tax against the budget and **tightens** (doubles) the
  sampling rate of every adaptive category while over budget, or
  **loosens** (halves) it while comfortably under (a quarter of the
  budget — hysteresis so the rate does not flap at the boundary);
* rates apply *per category*: compute spans (and any other category the
  caller registers) sample adaptively, MPI spans are never sampled out —
  a sampled-out send would orphan its receive edge on another rank.

Every rate change is a :class:`SamplerDecision`, recorded in a bounded
history, mirrored into the rank's metrics registry
(``obs_sample_every`` gauge, ``obs_sampler_adjust_total`` counter) and —
when a flight recorder is attached — into the crash ring, so a
post-mortem shows not just *what* was sampled but *why*.

All timestamps come from :func:`repro.util.timebase.now_us`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.util.timebase import now_us

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.span import SpanTracer

#: categories whose sampling rate the controller adjusts by default
DEFAULT_ADAPTIVE_CATEGORIES = ("compute", "other", "serve")

#: sampling rate ceiling: beyond 1-in-4096 the tax of the always-on MPI
#: spans dominates and further tightening buys nothing
MAX_RATE = 4096


@dataclass(frozen=True)
class SamplerDecision:
    """One online rate change and the evidence it was based on."""

    t_us: float
    category: str
    rate_from: int
    rate_to: int
    tax_pct: float
    ops: int

    def to_dict(self) -> dict[str, Any]:
        return {"t_us": self.t_us, "category": self.category,
                "rate_from": self.rate_from, "rate_to": self.rate_to,
                "tax_pct": self.tax_pct, "ops": self.ops}


class AdaptiveSampler:
    """Per-rank overhead-budget controller for a :class:`SpanTracer`.

    Attach with :meth:`SpanTracer.attach_controller`; the tracer then
    asks :meth:`rate_for` on every sampled span open and calls
    :meth:`maybe_adjust` every ``interval`` operations (a modulo check on
    the hot path, the control step only at the stride).
    """

    __slots__ = ("budget_pct", "interval", "rates", "decisions", "metrics",
                 "_clock", "_t0_us", "_min_elapsed_us", "_last_adjust_ops")

    def __init__(self, budget_pct: float = 2.0, *, interval: int = 64,
                 start_rate: int = 1,
                 categories: tuple[str, ...] = DEFAULT_ADAPTIVE_CATEGORIES,
                 metrics: "MetricsRegistry | None" = None,
                 max_decisions: int = 256,
                 clock: "Callable[[], float]" = now_us) -> None:
        if budget_pct <= 0.0:
            raise ValueError(f"budget_pct must be positive, got {budget_pct}")
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if not (1 <= start_rate <= MAX_RATE):
            raise ValueError(f"start_rate must be in [1, {MAX_RATE}], "
                             f"got {start_rate}")
        self.budget_pct = float(budget_pct)
        self.interval = int(interval)
        #: live per-category 1-in-N rates (categories not listed here are
        #: never sampled out; the tracer falls back to rate 1)
        self.rates: dict[str, int] = {c: int(start_rate) for c in categories}
        self.decisions: deque[SamplerDecision] = deque(maxlen=max_decisions)
        self.metrics = metrics
        self._clock = clock
        self._t0_us = clock()
        #: do not judge the tax before any signal accumulated: the first
        #: few ops divide a stride-sampled estimate by ~zero elapsed time
        self._min_elapsed_us = 5_000.0
        self._last_adjust_ops = 0

    # ----------------------------------------------------------- queries
    def rate_for(self, category: str) -> int:
        """Current 1-in-N rate for ``category`` (1 = keep everything)."""
        return self.rates.get(category, 1)

    def tax_pct(self, tracer: "SpanTracer") -> float:
        """Cumulative self-reported tracing tax in percent of wall clock."""
        elapsed = self._clock() - self._t0_us
        if elapsed <= 0.0:
            return 0.0
        return 100.0 * tracer.self_overhead_us / elapsed

    # ------------------------------------------------------------ control
    def maybe_adjust(self, tracer: "SpanTracer") -> None:
        """One control step: tighten/loosen rates against the budget.

        Called by the tracer at the op stride; cheap no-op until enough
        wall clock elapsed for the tax estimate to mean something.
        """
        t = self._clock()
        elapsed = t - self._t0_us
        if elapsed < self._min_elapsed_us:
            return
        tax = 100.0 * tracer.self_overhead_us / elapsed
        if tax > self.budget_pct:
            self._retune(tracer, t, tax, tighten=True)
        elif tax < 0.25 * self.budget_pct:
            self._retune(tracer, t, tax, tighten=False)
        self._last_adjust_ops = tracer.ops

    def _retune(self, tracer: "SpanTracer", t_us: float, tax: float,
                *, tighten: bool) -> None:
        direction = "tighten" if tighten else "loosen"
        for category, rate in self.rates.items():
            new = min(MAX_RATE, rate * 2) if tighten else max(1, rate // 2)
            if new == rate:
                continue
            self.rates[category] = new
            decision = SamplerDecision(t_us=t_us, category=category,
                                       rate_from=rate, rate_to=new,
                                       tax_pct=tax, ops=tracer.ops)
            self.decisions.append(decision)
            recorder = tracer.recorder
            if recorder is not None:
                recorder.on_decision(decision.to_dict())
            if self.metrics is not None:
                self.metrics.gauge(
                    "obs_sample_every",
                    "live 1-in-N sampling rate chosen by the adaptive "
                    "controller", category=category).set(new)
                self.metrics.counter(
                    "obs_sampler_adjust_total",
                    "adaptive sampling rate changes",
                    category=category, direction=direction).inc()

    # -------------------------------------------------------- exposition
    def report(self) -> dict[str, Any]:
        """JSON-able summary: budget, live rates, recent decisions."""
        return {
            "budget_pct": self.budget_pct,
            "rates": dict(self.rates),
            "decisions": [d.to_dict() for d in self.decisions],
        }
