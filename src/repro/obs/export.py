"""Collecting, validating and writing observability output.

:func:`collect` pulls every rank's spans/flows/metrics out of a finished
run (a :class:`~repro.cca.scmd.ScmdResult`'s world, or a bare list of
:class:`~repro.obs.runtime.RankObs`) into one :class:`ObsDump`;
:func:`write_trace` / :func:`write_metrics` produce the CI artifacts
(Perfetto JSON, metrics JSON + Prometheus text); and
:func:`validate_chrome_payload` is the schema gate CI fails on — it
round-trips the JSON and checks the invariants a viewer relies on
(monotone timestamps, balanced B/E per track, resolvable flow ids).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.metrics import MetricsRegistry, merge_registries
from repro.obs.runtime import RankObs
from repro.obs.span import FlowPoint, Span
from repro.tau.trace import dump_chrome_trace_spans
from repro.util.atomicio import atomic_write_text


class SpanDropWarning(Warning):
    """The bounded tracer buffer overflowed and history was lost.

    A dedicated category (not RuntimeWarning — CI escalates those to
    errors) so callers can filter it; emitted at most once per process
    per :func:`collect` call site via the standard warning dedup.
    """


@dataclass
class ObsDump:
    """Everything the per-rank tracers and registries accumulated."""

    spans: list[Span] = field(default_factory=list)
    flows: list[FlowPoint] = field(default_factory=list)
    dropped_by_rank: dict[int, int] = field(default_factory=dict)
    sampled_out_by_rank: dict[int, int] = field(default_factory=dict)
    overhead_by_rank: dict[int, dict[str, float]] = field(default_factory=dict)
    sampler_by_rank: dict[int, dict[str, Any]] = field(default_factory=dict)
    registries: list[MetricsRegistry] = field(default_factory=list)

    @property
    def dropped_total(self) -> int:
        return sum(self.dropped_by_rank.values())

    def merged_metrics(self) -> MetricsRegistry:
        return merge_registries(self.registries)


def _rank_obs_of(source: Any) -> Sequence[RankObs]:
    """Accept a ScmdResult, a SimWorld or a plain RankObs sequence."""
    world = getattr(source, "world", source)
    obs = getattr(world, "obs", world)
    if obs is None:
        raise ValueError(
            "run has no observability state; pass observe=ObsConfig() when "
            "launching it")
    return obs


#: process-level once-per-run latch for the drop alert
_drop_warned = False


def reset_drop_warning() -> None:
    """Re-arm the once-per-run span-drop alert (tests and long daemons)."""
    global _drop_warned
    _drop_warned = False


def _warn_drops_once(dropped_by_rank: dict[int, int]) -> None:
    global _drop_warned
    if _drop_warned or not dropped_by_rank:
        return
    _drop_warned = True
    total = sum(dropped_by_rank.values())
    warnings.warn(
        f"span tracer dropped {total} span(s) "
        f"(by rank: {dict(sorted(dropped_by_rank.items()))}); trace history "
        f"is truncated — raise ObsConfig.max_spans or enable adaptive "
        f"sampling", SpanDropWarning, stacklevel=3)


def collect(source: Any) -> ObsDump:
    """Merge all ranks' observability state, time-ordering the spans.

    Warns (once per run, :class:`SpanDropWarning`) when any rank's
    bounded buffer dropped history — truncation must be loud, not a
    field the caller may forget to check.
    """
    dump = ObsDump()
    for ro in _rank_obs_of(source):
        tracer = ro.tracer
        dump.spans.extend(tracer.spans())
        dump.flows.extend(tracer.flows())
        if tracer.dropped_count:
            dump.dropped_by_rank[ro.rank] = tracer.dropped_count
        if tracer.sampled_out:
            dump.sampled_out_by_rank[ro.rank] = tracer.sampled_out
        dump.overhead_by_rank[ro.rank] = tracer.overhead_report()
        controller = getattr(ro, "controller", None)
        if controller is not None:
            dump.sampler_by_rank[ro.rank] = controller.report()
        dump.registries.append(ro.metrics)
    dump.spans.sort(key=lambda s: (s.t_start_us, s.rank, s.span_id))
    _warn_drops_once(dump.dropped_by_rank)
    return dump


# ------------------------------------------------------------------ writers
def write_trace(source: Any, path: str, process_name: str = "repro") -> ObsDump:
    """Write the merged Perfetto trace; returns the dump it came from."""
    dump = source if isinstance(source, ObsDump) else collect(source)
    dump_chrome_trace_spans(
        dump.spans, dump.flows, path, process_name=process_name,
        dropped_counts=dump.dropped_by_rank,
        sampled_out=dump.sampled_out_by_rank)
    return dump


def write_metrics(source: Any, json_path: str | None = None,
                  prometheus_path: str | None = None) -> MetricsRegistry:
    """Write the cross-rank merged metrics snapshot(s); returns the merge."""
    dump = source if isinstance(source, ObsDump) else collect(source)
    merged = dump.merged_metrics()
    # The tracers' own accounting rides along as metrics so a snapshot is
    # self-describing about truncation and tracing cost.
    for rank, rep in sorted(dump.overhead_by_rank.items()):
        merged.counter("tracer_spans_total",
                       "spans recorded by the tracer").inc(rep["spans"])
        merged.counter("tracer_dropped_total",
                       "spans dropped by the bounded buffer").inc(rep["dropped"])
        merged.counter("tracer_sampled_out_total",
                       "spans skipped by 1-in-N sampling").inc(rep["sampled_out"])
        merged.counter("tracer_self_overhead_us_total",
                       "tracer-measured cost of tracing itself").inc(
                           rep["self_overhead_us"])
    for rank, rep in sorted(dump.dropped_by_rank.items()):
        merged.gauge("tracer_dropped_spans",
                     "spans lost to buffer overflow on one rank",
                     dropped_rank=str(rank)).set(rep)
    for rank, sampler in sorted(dump.sampler_by_rank.items()):
        for category, rate in sorted(sampler.get("rates", {}).items()):
            g = merged.gauge(
                "obs_sample_every",
                "live 1-in-N sampling rate chosen by the adaptive "
                "controller", category=category)
            # Merged gauges answer "largest per-rank value"; keep that
            # contract when folding in the controllers' live rates.
            g.set(max(g.value, rate))
        merged.counter(
            "obs_sampler_decisions_total",
            "adaptive sampling rate changes recorded").inc(
                len(sampler.get("decisions", [])))
    if json_path is not None:
        atomic_write_text(json_path, merged.to_json())
    if prometheus_path is not None:
        atomic_write_text(prometheus_path, merged.to_prometheus())
    return merged


def live_metrics(obs: Sequence[RankObs]) -> MetricsRegistry:
    """Merged registry + tracer/sampler accounting from *live* rank state.

    Unlike :func:`write_metrics` this never copies span buffers, so a
    scrape endpoint can call it on every request while ranks are still
    running.  Rank threads may create instruments concurrently; the
    merge retries a few times if a registry dict grows mid-iteration.
    """
    for attempt in range(3):
        try:
            merged = merge_registries([ro.metrics for ro in obs])
            break
        except RuntimeError:  # dict grew during iteration; scrape again
            if attempt == 2:
                raise
    for ro in obs:
        rep = ro.tracer.overhead_report()
        merged.counter("tracer_spans_total",
                       "spans recorded by the tracer").inc(rep["spans"])
        merged.counter("tracer_dropped_total",
                       "spans dropped by the bounded buffer").inc(rep["dropped"])
        merged.counter("tracer_sampled_out_total",
                       "spans skipped by 1-in-N sampling").inc(rep["sampled_out"])
        merged.counter("tracer_self_overhead_us_total",
                       "tracer-measured cost of tracing itself").inc(
                           rep["self_overhead_us"])
        if rep["dropped"]:
            merged.gauge("tracer_dropped_spans",
                         "spans lost to buffer overflow on one rank",
                         dropped_rank=str(ro.rank)).set(rep["dropped"])
        controller = getattr(ro, "controller", None)
        if controller is not None:
            for category, rate in sorted(controller.rates.items()):
                g = merged.gauge(
                    "obs_sample_every",
                    "live 1-in-N sampling rate chosen by the adaptive "
                    "controller", category=category)
                g.set(max(g.value, rate))
    return merged


# --------------------------------------------------------------- validation
def validate_chrome_payload(payload: Any) -> list[str]:
    """Invariant check for an exported trace; returns human-readable problems.

    Checks: top-level shape, globally monotone timestamps, balanced
    B/E per (pid, tid) track, and that every flow id has exactly one
    ``s`` and one ``f`` endpoint, each landing inside a slice on its
    track.  An empty list means the trace is well-formed.
    """
    problems: list[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not a dict with a 'traceEvents' key"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    last_ts: float | None = None
    stacks: dict[tuple[int, int], list[str]] = {}
    slices: dict[tuple[int, int], list[tuple[float, float]]] = {}
    open_at: dict[tuple[int, int], list[float]] = {}
    flow_points: dict[str, dict[str, tuple[int, int, float]]] = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {i}: timestamp {ts} < previous {last_ts}")
        last_ts = float(ts)
        track = (ev.get("pid", 0), ev.get("tid", 0))
        if ph == "B":
            stacks.setdefault(track, []).append(ev.get("name", ""))
            open_at.setdefault(track, []).append(ts)
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                problems.append(f"event {i}: E with empty stack on track {track}")
            else:
                stack.pop()
                start = open_at[track].pop()
                slices.setdefault(track, []).append((start, ts))
        elif ph in ("s", "f"):
            fid = str(ev.get("id"))
            pts = flow_points.setdefault(fid, {})
            if ph in pts:
                problems.append(f"flow {fid}: duplicate {ph!r} endpoint")
            pts[ph] = (*track, ts)
    for track, stack in stacks.items():
        if stack:
            problems.append(f"track {track}: {len(stack)} unclosed B event(s): {stack[:3]}")
    for fid, pts in flow_points.items():
        for endpoint in ("s", "f"):
            if endpoint not in pts:
                problems.append(f"flow {fid}: missing {endpoint!r} endpoint")
                continue
            pid, tid, ts = pts[endpoint]
            track_slices = slices.get((pid, tid), [])
            if not any(lo <= ts <= hi for lo, hi in track_slices):
                problems.append(
                    f"flow {fid}: {endpoint!r} endpoint at ts={ts} is outside "
                    f"every slice on track {(pid, tid)}")
    return problems


def validate_trace_file(path: str) -> list[str]:
    """Round-trip a trace file through ``json.loads`` and validate it."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable trace file {path!r}: {exc}"]
    return validate_chrome_payload(payload)
