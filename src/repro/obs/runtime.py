"""Per-rank observability state and its configuration.

One :class:`RankObs` (a span tracer + a metrics registry, optionally an
adaptive sampling controller and a crash flight recorder) is attached to
each rank of a :class:`~repro.mpi.world.SimWorld` when an
:class:`ObsConfig` is passed to the runner; the MPI layer, the TAU
profiler, the proxies/Mastermind, the fault paths and the checkpoint
writer all find it there and record into it.  ``None`` everywhere means
observability is off and every hook is a cheap attribute check.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanTracer


@dataclass
class ObsConfig:
    """Knobs for the observability layer.

    ``sample_every=N`` traces 1-in-N proxied component invocations (MPI
    spans are always traced — a sampled-out send would orphan its
    receive edge); metrics are always on, they are constant-memory.

    ``adaptive=True`` replaces the fixed rate with the overhead-budget
    controller of :mod:`repro.obs.adaptive`: per-category sampling rates
    tighten/loosen online so the self-reported tracing tax stays under
    ``tax_budget_pct`` percent of wall clock.  Off by default: fixed
    1-in-1 sampling is what the deterministic crosscheck tests assume.

    ``flight_recorder=True`` keeps per-rank black-box rings of the last
    ``flightrec_depth`` spans / ledger charges / log records
    (:mod:`repro.obs.flightrec`), auto-dumped to ``flightrec_dir`` when
    the job dies.
    """

    sample_every: int = 1
    max_spans: int = 200_000
    adaptive: bool = False
    tax_budget_pct: float = 2.0
    adaptive_interval: int = 64
    flight_recorder: bool = False
    flightrec_depth: int = 512
    flightrec_dir: str = os.path.join("out", "flightrec")

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {self.sample_every}")
        if self.max_spans < 2:
            raise ValueError(f"max_spans must be >= 2, got {self.max_spans}")
        if self.tax_budget_pct <= 0.0:
            raise ValueError(
                f"tax_budget_pct must be positive, got {self.tax_budget_pct}")
        if self.adaptive_interval < 1:
            raise ValueError(
                f"adaptive_interval must be >= 1, got {self.adaptive_interval}")
        if self.flightrec_depth < 1:
            raise ValueError(
                f"flightrec_depth must be >= 1, got {self.flightrec_depth}")


class RankObs:
    """One rank's observability state (used only from that rank's thread)."""

    __slots__ = ("rank", "tracer", "metrics", "controller", "recorder")

    def __init__(self, rank: int, config: ObsConfig) -> None:
        self.rank = int(rank)
        self.tracer = SpanTracer(rank=rank, max_spans=config.max_spans,
                                 sample_every=config.sample_every)
        self.metrics = MetricsRegistry(rank=rank)
        self.controller: Any = None
        self.recorder: Any = None
        if config.flight_recorder:
            from repro.obs.flightrec import FlightRecorder

            self.recorder = FlightRecorder(rank, depth=config.flightrec_depth,
                                           directory=config.flightrec_dir,
                                           metrics=self.metrics)
            self.tracer.attach_recorder(self.recorder)
        if config.adaptive:
            from repro.obs.adaptive import AdaptiveSampler

            self.controller = AdaptiveSampler(
                config.tax_budget_pct, interval=config.adaptive_interval,
                metrics=self.metrics)
            self.tracer.attach_controller(self.controller)

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Structured log into the flight recorder (no-op without one)."""
        if self.recorder is not None:
            self.recorder.log(level, event, **fields)


def build_obs(nranks: int, config: ObsConfig | None) -> list[RankObs] | None:
    """Per-rank observability states, or None when tracing is off."""
    if config is None:
        return None
    return [RankObs(r, config) for r in range(nranks)]
