"""Per-rank observability state and its configuration.

One :class:`RankObs` (a span tracer + a metrics registry) is attached to
each rank of a :class:`~repro.mpi.world.SimWorld` when an
:class:`ObsConfig` is passed to the runner; the MPI layer, the TAU
profiler, the proxies/Mastermind, the fault paths and the checkpoint
writer all find it there and record into it.  ``None`` everywhere means
observability is off and every hook is a cheap attribute check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanTracer


@dataclass
class ObsConfig:
    """Knobs for the observability layer.

    ``sample_every=N`` traces 1-in-N proxied component invocations (MPI
    spans are always traced — a sampled-out send would orphan its
    receive edge); metrics are always on, they are constant-memory.
    """

    sample_every: int = 1
    max_spans: int = 200_000

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {self.sample_every}")
        if self.max_spans < 2:
            raise ValueError(f"max_spans must be >= 2, got {self.max_spans}")


class RankObs:
    """One rank's observability state (used only from that rank's thread)."""

    __slots__ = ("rank", "tracer", "metrics")

    def __init__(self, rank: int, config: ObsConfig) -> None:
        self.rank = int(rank)
        self.tracer = SpanTracer(rank=rank, max_spans=config.max_spans,
                                 sample_every=config.sample_every)
        self.metrics = MetricsRegistry(rank=rank)


def build_obs(nranks: int, config: ObsConfig | None) -> list[RankObs] | None:
    """Per-rank observability states, or None when tracing is off."""
    if config is None:
        return None
    return [RankObs(r, config) for r in range(nranks)]
