"""Critical-path analysis over the merged cross-rank span DAG.

The question the paper's flat profiles cannot answer — *what sequence of
dependent work determined the wall time of this run (or this
timestep)?* — becomes a longest-dependency-chain walk once spans carry
causal edges:

* **nodes** are leaf spans (spans with no recorded children: proxied
  kernel invocations, MPI operations, checkpoint writes);
* **intra-rank edges** follow program order (a rank is one thread, so
  its leaf spans are totally ordered);
* **cross-rank edges** come from flow points: a matched send/recv pair,
  or a collective whose last-arriving rank unblocked everyone else.

The walk starts at the last-finishing leaf and repeatedly jumps to the
*binding* predecessor — the dependency that finished latest, i.e. the
one that actually gated progress.  Each hop contributes the time slice
it was critical for, so the path's length can never exceed the run's
wall-clock window, and its decomposition (compute / mpi / mpi_wait /
retry / checkpoint / untraced gaps) says where a faster component would
actually shorten the run.

:func:`crosscheck_records` and :func:`crosscheck_ledger` tie the span
view back to the paper's measurement stack: span durations must agree
with the Mastermind's per-invocation wall times, and span counts with
the MPI ledger's call counts — if they drift, one of the two
instruments is lying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.obs.span import (CAT_RETRY, CAT_STEP, FLOW_COLL, FLOW_IN,
                            FLOW_OUT, FlowPoint, Span)

#: breakdown bucket for time not inside any categorized leaf span
UNTRACED = "untraced"


@dataclass(frozen=True)
class PathSegment:
    """One hop of the critical path: ``take_us`` of span were critical."""

    span_id: int
    rank: int
    name: str
    category: str
    take_us: float


@dataclass
class CriticalPathReport:
    """Longest dependency chain over one window (a run or a timestep)."""

    t0_us: float
    t1_us: float
    #: chain segments, latest first (the walk is backwards)
    segments: list[PathSegment] = field(default_factory=list)
    #: time per category along the path (includes gap attribution)
    breakdown: dict[str, float] = field(default_factory=dict)
    #: number of cross-rank hops the chain took
    cross_rank_hops: int = 0

    @property
    def total_wall_us(self) -> float:
        return max(0.0, self.t1_us - self.t0_us)

    @property
    def path_us(self) -> float:
        return sum(self.breakdown.values())

    def format(self, title: str = "Critical path") -> str:
        from repro.util.tabular import format_table

        rows = [(seg.rank, seg.name, seg.category, f"{seg.take_us:,.1f}")
                for seg in reversed(self.segments) if seg.take_us > 0.0]
        head = (f"{title}: {self.path_us:,.1f} us of {self.total_wall_us:,.1f} us "
                f"wall ({self.cross_rank_hops} cross-rank hop(s))\n"
                + "  breakdown: "
                + ", ".join(f"{k}={v:,.1f}us" for k, v in sorted(self.breakdown.items())))
        return head + "\n" + format_table(
            ["rank", "span", "category", "critical us"], rows)


# ----------------------------------------------------------------- DAG build
def leaf_spans(spans: Iterable[Span]) -> list[Span]:
    """Spans with no recorded children (the schedulable units of work)."""
    spans = list(spans)
    parents = {s.parent_id for s in spans if s.parent_id is not None}
    return [s for s in spans if s.span_id not in parents]


def flow_edges(flows: Iterable[FlowPoint]) -> dict[int, list[int]]:
    """Causal predecessor span ids per span id, derived from flow points.

    p2p: the ``out`` endpoint precedes every ``in`` endpoint of the same
    flow id (duplicates deliver once, but a probe+recv may record two
    sinks; all are causally after the send).  Collectives: the last
    *arriving* participant (max ``t_us``, which flow_collective sets to
    the span's start) precedes every other participant.
    """
    p2p_out: dict[str, int] = {}
    p2p_in: dict[str, list[int]] = {}
    coll: dict[str, list[FlowPoint]] = {}
    for fp in flows:
        if fp.kind == FLOW_OUT:
            p2p_out[fp.flow_id] = fp.span_id
        elif fp.kind == FLOW_IN:
            p2p_in.setdefault(fp.flow_id, []).append(fp.span_id)
        elif fp.kind == FLOW_COLL:
            coll.setdefault(fp.flow_id, []).append(fp)
    preds: dict[int, list[int]] = {}
    for fid, sinks in p2p_in.items():
        src = p2p_out.get(fid)
        if src is None:
            continue  # sender traced with observability off
        for sink in sinks:
            preds.setdefault(sink, []).append(src)
    for fid, points in coll.items():
        if len(points) < 2:
            continue
        last = max(points, key=lambda fp: (fp.t_us, fp.rank))
        for fp in points:
            if fp.span_id != last.span_id:
                preds.setdefault(fp.span_id, []).append(last.span_id)
    return preds


def _clip(span: Span, t0: float, t1: float) -> tuple[float, float] | None:
    lo, hi = max(span.t_start_us, t0), min(span.t_end_us, t1)
    return (lo, hi) if hi > lo or (hi == lo and span.duration_us == 0.0) else None


def _enclosing_category(span: Span, by_id: Mapping[int, Span], t: float) -> str:
    """Category of the innermost ancestor span covering time ``t``."""
    seen = 0
    pid = span.parent_id
    while pid is not None and seen < 64:
        anc = by_id.get(pid)
        if anc is None:
            break
        if anc.t_start_us <= t <= anc.t_end_us:
            return anc.category
        pid = anc.parent_id
        seen += 1
    return UNTRACED


def _segment_breakdown(breakdown: dict[str, float], span: Span, take: float) -> None:
    """Attribute one hop's critical time, splitting out recorded retry time."""
    retry = float(span.attrs.get("retry_us", 0.0))
    if retry > 0.0:
        r = min(retry, take)
        breakdown[CAT_RETRY] = breakdown.get(CAT_RETRY, 0.0) + r
        take -= r
    if take > 0.0:
        breakdown[span.category] = breakdown.get(span.category, 0.0) + take


# ------------------------------------------------------------------ the walk
def critical_path(spans: Sequence[Span], flows: Sequence[FlowPoint],
                  window: tuple[float, float] | None = None) -> CriticalPathReport:
    """Longest dependency chain over ``spans`` within ``window``.

    ``window`` defaults to the hull of all spans.  Spans partially
    outside the window are clipped; the chain always ends at the
    last-finishing leaf inside it.
    """
    spans = [s for s in spans if s.t_end_us >= s.t_start_us]
    if not spans:
        return CriticalPathReport(0.0, 0.0)
    if window is None:
        window = (min(s.t_start_us for s in spans),
                  max(s.t_end_us for s in spans))
    t0, t1 = window
    by_id = {s.span_id: s for s in spans}
    leaves = [s for s in leaf_spans(spans)
              if s.category != CAT_STEP and _clip(s, t0, t1) is not None]
    report = CriticalPathReport(t0, t1)
    if not leaves:
        return report
    fpreds = flow_edges(flows)

    # Per-rank program order over leaves (one thread per rank => total order).
    by_rank: dict[int, list[Span]] = {}
    for s in sorted(leaves, key=lambda s: (s.t_start_us, s.span_id)):
        by_rank.setdefault(s.rank, []).append(s)
    rank_index = {s.span_id: (s.rank, i)
                  for lst in by_rank.values() for i, s in enumerate(lst)}

    def binding_pred(s: Span) -> Span | None:
        cands: list[Span] = []
        rank, i = rank_index[s.span_id]
        if i > 0:
            cands.append(by_rank[rank][i - 1])
        for pid in fpreds.get(s.span_id, ()):
            p = by_id.get(pid)
            # A flow predecessor that is not a leaf (e.g. its retry rounds
            # were traced as children) still gates: use it only if a leaf;
            # the chain stays on leaves for well-defined program order.
            if p is not None and p.span_id in rank_index and p is not s:
                cands.append(p)
        if not cands:
            return None
        return max(cands, key=lambda p: (p.t_end_us, p.span_id))

    s = max(leaves, key=lambda sp: (min(sp.t_end_us, t1), sp.span_id))
    cursor = min(s.t_end_us, t1)
    visited: set[int] = set()
    while s is not None and cursor > t0 and len(visited) <= 2 * len(leaves):
        visited.add(s.span_id)
        seg_lo = max(s.t_start_us, t0)
        p = binding_pred(s)
        if p is not None and p.span_id in visited:
            p = None  # clock-race safety: never cycle
        p_end = min(p.t_end_us, t1) if p is not None else None
        if p_end is not None and p_end > seg_lo:
            take = max(0.0, cursor - p_end)
            report.segments.append(PathSegment(
                s.span_id, s.rank, s.name, s.category, take))
            _segment_breakdown(report.breakdown, s, take)
            if p.rank != s.rank:
                report.cross_rank_hops += 1
            cursor = min(cursor, p_end)
            s = p
            continue
        take = max(0.0, cursor - seg_lo)
        report.segments.append(PathSegment(
            s.span_id, s.rank, s.name, s.category, take))
        _segment_breakdown(report.breakdown, s, take)
        if p is None:
            # Leading time before the first reachable leaf: attribute to
            # whatever enclosing span covers it, or "untraced".
            if seg_lo > t0:
                cat = _enclosing_category(s, by_id, seg_lo)
                report.breakdown[cat] = report.breakdown.get(cat, 0.0) + (seg_lo - t0)
            break
        gap = seg_lo - p_end
        if gap > 0.0:
            cat = _enclosing_category(s, by_id, p_end + gap / 2.0)
            report.breakdown[cat] = report.breakdown.get(cat, 0.0) + gap
        if p.rank != s.rank:
            report.cross_rank_hops += 1
        cursor = min(cursor, p_end)
        s = p
    return report


def per_step_critical_paths(spans: Sequence[Span], flows: Sequence[FlowPoint]
                            ) -> dict[int, CriticalPathReport]:
    """One critical path per driver timestep.

    Timestep windows come from the driver's ``category="step"`` spans:
    step ``n``'s window is the hull of every rank's step-``n`` span.
    """
    windows: dict[int, list[Span]] = {}
    for s in spans:
        if s.category == CAT_STEP and "step" in s.attrs:
            windows.setdefault(int(s.attrs["step"]), []).append(s)
    out: dict[int, CriticalPathReport] = {}
    for step in sorted(windows):
        group = windows[step]
        w = (min(s.t_start_us for s in group), max(s.t_end_us for s in group))
        out[step] = critical_path(spans, flows, window=w)
    return out


# ------------------------------------------------------------- cross-checks
def crosscheck_records(spans: Sequence[Span],
                       records_by_rank: Sequence[Mapping] ,
                       ) -> dict[str, tuple[float, float, float]]:
    """Span wall time vs Mastermind record wall time, per routine.

    ``records_by_rank[r]`` maps ``(label, method)`` to a
    :class:`~repro.perf.records.MethodRecord`.  Returns
    ``{timer_name: (span_us, record_us, rel_err)}``.  Only meaningful
    with ``sample_every=1`` (sampled-out invocations have records but no
    spans).

    Both sides are *real* wall clock: record walls are ``now_us()``
    snapshot deltas and span durations are real timestamps.  The modeled
    MPI cost charged inside a region lives separately, in the record's
    ``mpi_us`` and the span's ``virtual_us`` attribute — neither enters
    this comparison.
    """
    span_us: dict[str, float] = {}
    for s in spans:
        span_us[s.name] = span_us.get(s.name, 0.0) + s.duration_us
    out: dict[str, tuple[float, float, float]] = {}
    rec_us: dict[str, float] = {}
    for records in records_by_rank:
        for rec in records.values():
            rec_us[rec.timer_name] = rec_us.get(rec.timer_name, 0.0) + float(
                rec.wall_series().sum())
    for name, r_us in rec_us.items():
        s_us = span_us.get(name, 0.0)
        denom = max(r_us, 1e-9)
        out[name] = (s_us, r_us, abs(s_us - r_us) / denom)
    return out


def crosscheck_ledger(spans: Sequence[Span], ledgers: Sequence,
                      ) -> dict[str, tuple[int, int]]:
    """Span count vs MPI ledger call count, per traced MPI routine.

    Returns ``{routine: (span_calls, ledger_calls)}`` for every routine
    that appears as a span name; on a fault-free run the two must be
    equal (spans and charges are emitted by the same operations).
    """
    span_calls: dict[str, int] = {}
    for s in spans:
        if s.name.startswith("MPI_"):
            span_calls[s.name] = span_calls.get(s.name, 0) + 1
    ledger_calls: dict[str, int] = {}
    for led in ledgers:
        for routine, st in led.routine_totals().items():
            ledger_calls[routine] = ledger_calls.get(routine, 0) + st.calls
    return {r: (n, ledger_calls.get(r, 0)) for r, n in sorted(span_calls.items())}
