"""Observability: span tracing, metrics and critical-path analysis.

The measurement story of the paper (TAU profiling + Mastermind records)
answers "how long did each component take, per rank".  This package
answers the follow-up questions a distributed run raises: *which* chain
of compute and messages actually bounded the run (critical path), *what
happened between ranks* (causally-linked spans rendered as Perfetto flow
arrows) and *how is the system behaving* in aggregate (typed metrics
with cross-rank merge and Prometheus/JSON exposition).
"""

from repro.obs.critical_path import (
    CriticalPathReport,
    PathSegment,
    critical_path,
    crosscheck_ledger,
    crosscheck_records,
    flow_edges,
    per_step_critical_paths,
)
from repro.obs.export import (
    ObsDump,
    collect,
    validate_chrome_payload,
    validate_trace_file,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    merge_registries,
)
from repro.obs.runtime import ObsConfig, RankObs, build_obs
from repro.obs.span import (
    CAT_CHECKPOINT,
    CAT_COMPUTE,
    CAT_MPI,
    CAT_MPI_WAIT,
    CAT_RETRY,
    CAT_STEP,
    FlowPoint,
    Span,
    SpanTracer,
)

__all__ = [
    "CAT_CHECKPOINT",
    "CAT_COMPUTE",
    "CAT_MPI",
    "CAT_MPI_WAIT",
    "CAT_RETRY",
    "CAT_STEP",
    "Counter",
    "CriticalPathReport",
    "FlowPoint",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsConfig",
    "ObsDump",
    "PathSegment",
    "RankObs",
    "Span",
    "SpanTracer",
    "build_obs",
    "collect",
    "critical_path",
    "crosscheck_ledger",
    "crosscheck_records",
    "flow_edges",
    "log_buckets",
    "merge_registries",
    "per_step_critical_paths",
    "validate_chrome_payload",
    "validate_trace_file",
    "write_metrics",
    "write_trace",
]
