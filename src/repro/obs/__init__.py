"""Observability: span tracing, metrics and critical-path analysis.

The measurement story of the paper (TAU profiling + Mastermind records)
answers "how long did each component take, per rank".  This package
answers the follow-up questions a distributed run raises: *which* chain
of compute and messages actually bounded the run (critical path), *what
happened between ranks* (causally-linked spans rendered as Perfetto flow
arrows) and *how is the system behaving* in aggregate (typed metrics
with cross-rank merge and Prometheus/JSON exposition).

PR 8 makes the layer *always-on*: :class:`AdaptiveSampler` holds the
tracing tax under a budget instead of trusting a fixed rate,
:class:`FlightRecorder` keeps a crash black box per rank (dumped and
mergeable into a post-mortem timeline), and :class:`ObsSidecar` serves
live ``/metrics`` / ``/healthz`` / ``/debug/spans`` / ``/live`` over a
running simulation.
"""

from repro.obs.adaptive import AdaptiveSampler, SamplerDecision
from repro.obs.critical_path import (
    CriticalPathReport,
    PathSegment,
    critical_path,
    crosscheck_ledger,
    crosscheck_records,
    flow_edges,
    per_step_critical_paths,
)
from repro.obs.export import (
    ObsDump,
    SpanDropWarning,
    collect,
    live_metrics,
    validate_chrome_payload,
    validate_trace_file,
    write_metrics,
    write_trace,
)
from repro.obs.flightrec import (
    FlightRecorder,
    PostMortem,
    dump_flight_recorders,
    merge_flight_recordings,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    merge_registries,
)
from repro.obs.ops import ObsSidecar
from repro.obs.runtime import ObsConfig, RankObs, build_obs
from repro.obs.span import (
    CAT_CHECKPOINT,
    CAT_COMPUTE,
    CAT_MPI,
    CAT_MPI_WAIT,
    CAT_RETRY,
    CAT_STEP,
    FlowPoint,
    Span,
    SpanTracer,
)

__all__ = [
    "AdaptiveSampler",
    "CAT_CHECKPOINT",
    "CAT_COMPUTE",
    "CAT_MPI",
    "CAT_MPI_WAIT",
    "CAT_RETRY",
    "CAT_STEP",
    "Counter",
    "CriticalPathReport",
    "FlightRecorder",
    "FlowPoint",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsConfig",
    "ObsDump",
    "ObsSidecar",
    "PathSegment",
    "PostMortem",
    "RankObs",
    "SamplerDecision",
    "Span",
    "SpanDropWarning",
    "SpanTracer",
    "build_obs",
    "collect",
    "critical_path",
    "crosscheck_ledger",
    "crosscheck_records",
    "dump_flight_recorders",
    "flow_edges",
    "live_metrics",
    "log_buckets",
    "merge_flight_recordings",
    "merge_registries",
    "per_step_critical_paths",
    "validate_chrome_payload",
    "validate_trace_file",
    "write_metrics",
    "write_trace",
]
