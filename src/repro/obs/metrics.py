"""Typed metrics: counters, gauges and log-bucketed histograms.

A per-rank :class:`MetricsRegistry` is the always-on, constant-memory
side of the observability layer (the ScALPEL argument: aggregates stay
cheap when event streams would not).  Instruments are keyed by
``(name, sorted labels)``; registries from all ranks merge into one
cross-rank view; both JSON and Prometheus text exposition are provided
so snapshots drop straight into CI artifacts or a scrape endpoint.

Histogram buckets are **fixed at creation** (default: log-spaced, three
per decade across 1 us .. 10 s) so merging across ranks is exact — two
histograms merge bucket-by-bucket only because they share bounds.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Mapping

LabelKey = tuple[tuple[str, str], ...]


def log_buckets(lo: float = 1.0, hi: float = 1e7, per_decade: int = 3) -> tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds covering [lo, hi]."""
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    n = int(math.ceil(math.log10(hi / lo) * per_decade))
    return tuple(lo * 10 ** (k / per_decade) for k in range(n + 1))


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (calls, bytes, faults...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, buffer occupancy...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` (non-
    cumulative storage; exposition cumulates); the implicit final bucket
    is +Inf.
    """

    __slots__ = ("bounds", "bucket_counts", "inf_count", "total", "count")

    def __init__(self, bounds: Iterable[float] | None = None) -> None:
        b = tuple(bounds) if bounds is not None else log_buckets()
        if not b or any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError(f"bucket bounds must be strictly increasing, got {b}")
        self.bounds = b
        self.bucket_counts = [0] * len(b)
        self.inf_count = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        # Binary search: bounds are sorted.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(self.bounds):
            self.inf_count += 1
        else:
            self.bucket_counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds (+Inf -> last bound)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for bound, c in zip(self.bounds, self.bucket_counts):
            seen += c
            if seen >= target:
                return bound
        return self.bounds[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All instruments of one rank (or of a cross-rank merge).

    Instruments are created on first use and looked up by
    ``(name, labels)`` afterwards; a name is bound to one kind (asking
    for a counter named like an existing gauge raises).
    """

    def __init__(self, rank: int | None = None) -> None:
        self.rank = rank
        self._instruments: dict[tuple[str, LabelKey], Any] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._bounds: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------ access
    def _get(self, kind: str, name: str, labels: Mapping[str, Any],
             help: str = "", bounds: Iterable[float] | None = None) -> Any:
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
            if help:
                self._help[name] = help
        elif known != kind:
            raise ValueError(f"metric {name!r} already registered as {known}, not {kind}")
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            if kind == "histogram":
                b = tuple(bounds) if bounds is not None else self._bounds.get(name)
                if b is None:
                    b = log_buckets()
                self._bounds.setdefault(name, b)
                inst = Histogram(self._bounds[name])
            else:
                inst = _KINDS[kind]()
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get("counter", name, labels, help)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get("gauge", name, labels, help)

    def histogram(self, name: str, help: str = "",
                  bounds: Iterable[float] | None = None, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels, help, bounds)

    def series(self) -> list[tuple[str, LabelKey, Any]]:
        """All (name, labels, instrument) triples, sorted for stable output."""
        return [(n, lk, inst) for (n, lk), inst in sorted(self._instruments.items())]

    # ------------------------------------------------------- exposition
    def snapshot(self) -> dict[str, Any]:
        """JSON-able snapshot of every instrument."""
        out: dict[str, Any] = {"rank": self.rank, "metrics": []}
        for name, lk, inst in self.series():
            entry: dict[str, Any] = {
                "name": name,
                "kind": self._kinds[name],
                "labels": dict(lk),
            }
            if isinstance(inst, Histogram):
                entry.update(
                    bounds=list(inst.bounds),
                    bucket_counts=list(inst.bucket_counts),
                    inf_count=inst.inf_count,
                    sum=inst.total,
                    count=inst.count,
                )
            else:
                entry["value"] = inst.value
            out["metrics"].append(entry)
        return out

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (v0.0.4)."""
        lines: list[str] = []
        by_name: dict[str, list[tuple[LabelKey, Any]]] = {}
        for name, lk, inst in self.series():
            by_name.setdefault(name, []).append((lk, inst))
        for name in sorted(by_name):
            if name in self._help:
                lines.append(f"# HELP {name} {self._help[name]}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for lk, inst in by_name[name]:
                labels = dict(lk)
                if self.rank is not None:
                    labels.setdefault("rank", str(self.rank))
                if isinstance(inst, Histogram):
                    cum = 0
                    for bound, c in zip(inst.bounds, inst.bucket_counts):
                        cum += c
                        lines.append(
                            f"{name}_bucket{_fmt_labels(labels, le=_fmt_num(bound))} {cum}")
                    cum += inst.inf_count
                    lines.append(f'{name}_bucket{_fmt_labels(labels, le="+Inf")} {cum}')
                    lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_num(inst.total)}")
                    lines.append(f"{name}_count{_fmt_labels(labels)} {inst.count}")
                else:
                    lines.append(f"{name}{_fmt_labels(labels)} {_fmt_num(inst.value)}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------- merge
    def merge_from(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry into this one.

        Counters and histograms add (histograms must share bounds);
        gauges take the maximum — a merged gauge answers "what was the
        largest per-rank value", the only aggregate that is meaningful
        without per-rank context.
        """
        for name, kind in other._kinds.items():
            known = self._kinds.get(name)
            if known is not None and known != kind:
                raise ValueError(
                    f"cannot merge metric {name!r}: kind {kind} vs {known}")
        for (name, lk), inst in other._instruments.items():
            kind = other._kinds[name]
            mine = self._get(kind, name, dict(lk),
                             other._help.get(name, ""),
                             other._bounds.get(name))
            if kind == "counter":
                mine.value += inst.value
            elif kind == "gauge":
                mine.value = max(mine.value, inst.value)
            else:
                if mine.bounds != inst.bounds:
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket bounds differ")
                for i, c in enumerate(inst.bucket_counts):
                    mine.bucket_counts[i] += c
                mine.inf_count += inst.inf_count
                mine.total += inst.total
                mine.count += inst.count


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Cross-rank merge: one registry with summed counters/histograms."""
    merged = MetricsRegistry(rank=None)
    for reg in registries:
        merged.merge_from(reg)
    return merged


def _fmt_num(v: float) -> str:
    return str(int(v)) if float(v).is_integer() and abs(v) < 1e15 else repr(float(v))


def _fmt_labels(labels: Mapping[str, str], **extra: str) -> str:
    all_labels = {**labels, **extra}
    if not all_labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(all_labels.items()))
    return "{" + body + "}"
