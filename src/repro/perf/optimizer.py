"""Component-assembly optimization (paper Sections 1, 2 and 6).

"With n components, each having C_i implementations, there is a total of
prod(C_i) implementations to choose from. ... The implementation with the
lowest execution time or lowest cost is then selected."

:class:`AssemblyOptimizer` evaluates a :class:`CompositeModel` under every
combination of candidate implementation models (exhaustive, with a search-
space guard) or slot-by-slot (greedy — exact here because the composite
cost is additive across slots, but kept separate to mirror the scalable
strategy a non-additive cost would need).

Quality of Service (paper Section 5's GodunovFlux-vs-EFMFlux discussion:
"the performance of a component implementation would be viewed with respect
to the size of the problem as well as the quality of the solution produced
by it") enters two ways:

* a hard constraint: assemblies whose minimum implementation quality falls
  below ``min_quality`` are rejected;
* a soft penalty: effective score = cost * (1 + qos_weight * (1 - quality)),
  so ``qos_weight=0`` reproduces pure lowest-execution-time selection and
  larger weights favour accurate implementations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.models.composite import CompositeModel, SlotCost
from repro.models.performance import PerformanceModel


@dataclass(frozen=True)
class RankedAssembly:
    """One evaluated assembly."""

    binding: Mapping[str, PerformanceModel]
    cost_us: float
    quality: float
    score: float

    def binding_names(self) -> dict[str, str]:
        return {slot: m.name for slot, m in self.binding.items()}


@dataclass
class OptimizationResult:
    """Winner plus the full ranking (ascending score)."""

    best: RankedAssembly
    ranked: list[RankedAssembly] = field(default_factory=list)
    breakdown: list[SlotCost] = field(default_factory=list)

    def summary(self) -> str:
        lines = ["assembly optimization:"]
        for ra in self.ranked:
            mark = "->" if ra is self.best else "  "
            lines.append(
                f"{mark} {ra.binding_names()} cost={ra.cost_us:.1f}us "
                f"quality={ra.quality:.3g} score={ra.score:.1f}"
            )
        return "\n".join(lines)


class AssemblyOptimizer:
    """Search over implementation bindings of a composite model."""

    #: refuse exhaustive searches beyond this many assemblies
    MAX_EXHAUSTIVE = 100_000

    def __init__(
        self,
        composite: CompositeModel,
        candidates: Mapping[str, Sequence[PerformanceModel]],
    ) -> None:
        free = composite.free_slots()
        missing = set(free) - set(candidates)
        if missing:
            raise ValueError(f"no candidates supplied for slot(s) {sorted(missing)}")
        empty = [s for s in free if not candidates[s]]
        if empty:
            raise ValueError(f"empty candidate list for slot(s) {empty}")
        self.composite = composite
        self.slots = sorted(free)
        self.candidates = {s: list(candidates[s]) for s in self.slots}

    # ------------------------------------------------------------------ #
    def search_space_size(self) -> int:
        n = 1
        for s in self.slots:
            n *= len(self.candidates[s])
        return n

    def _evaluate(self, binding: dict[str, PerformanceModel],
                  qos_weight: float) -> RankedAssembly:
        cost, _ = self.composite.evaluate(binding)
        quality = min((m.quality for m in binding.values()), default=1.0)
        score = cost * (1.0 + qos_weight * (1.0 - quality))
        return RankedAssembly(binding=dict(binding), cost_us=cost,
                              quality=quality, score=score)

    def optimize(
        self,
        qos_weight: float = 0.0,
        min_quality: float | None = None,
    ) -> OptimizationResult:
        """Exhaustive prod(C_i) search; returns best + full ranking."""
        if qos_weight < 0:
            raise ValueError(f"qos_weight must be >= 0, got {qos_weight}")
        size = self.search_space_size()
        if size > self.MAX_EXHAUSTIVE:
            raise ValueError(
                f"search space has {size} assemblies (> {self.MAX_EXHAUSTIVE}); "
                "use optimize_greedy()"
            )
        ranked: list[RankedAssembly] = []
        if not self.slots:
            ranked.append(self._evaluate({}, qos_weight))
        else:
            for combo in itertools.product(*(self.candidates[s] for s in self.slots)):
                binding = dict(zip(self.slots, combo))
                ra = self._evaluate(binding, qos_weight)
                if min_quality is not None and ra.quality < min_quality:
                    continue
                ranked.append(ra)
        if not ranked:
            raise ValueError(
                f"no assembly satisfies min_quality={min_quality}; best available "
                f"quality is {max(m.quality for ms in self.candidates.values() for m in ms)}"
            )
        ranked.sort(key=lambda ra: ra.score)
        best = ranked[0]
        _, breakdown = self.composite.evaluate(best.binding)
        return OptimizationResult(best=best, ranked=ranked, breakdown=breakdown)

    def optimize_greedy(
        self,
        qos_weight: float = 0.0,
        min_quality: float | None = None,
    ) -> OptimizationResult:
        """Slot-by-slot selection (exact for additive composites).

        Scales linearly in sum(C_i) instead of prod(C_i).
        """
        binding: dict[str, PerformanceModel] = {}
        for slot in self.slots:
            pool = self.candidates[slot]
            if min_quality is not None:
                pool = [m for m in pool if m.quality >= min_quality] or pool
            best_m, best_score = None, None
            for m in pool:
                trial = dict(binding)
                trial[slot] = m
                # Unbound remaining slots get their first candidate as a
                # placeholder — additivity makes the comparison unaffected.
                for rest in self.slots:
                    trial.setdefault(rest, self.candidates[rest][0])
                ra = self._evaluate(trial, qos_weight)
                if best_score is None or ra.score < best_score:
                    best_m, best_score = m, ra.score
            assert best_m is not None
            binding[slot] = best_m
        ra = self._evaluate(binding, qos_weight)
        _, breakdown = self.composite.evaluate(ra.binding)
        return OptimizationResult(best=ra, ranked=[ra], breakdown=breakdown)
