"""Call-path recording.

The Mastermind needs "a call trace from which the inter-component
interaction may be derived" (paper Section 6).  Because every monitored
invocation flows through ``begin_invocation``/``end_invocation``, a simple
stack suffices: an invocation beginning while another is active is a child
of it.  The resulting caller->callee edge counts become the edge weights of
the application dual (Figure 10).
"""

from __future__ import annotations

import networkx as nx

#: pseudo-caller for invocations arriving with an empty stack
ROOT = "<root>"


class CallPathRecorder:
    """Stack-based caller/callee trace with invocation counting."""

    def __init__(self) -> None:
        self._stack: list[str] = []
        #: (caller label, callee label) -> number of calls
        self.edge_counts: dict[tuple[str, str], int] = {}
        #: label -> number of invocations
        self.node_counts: dict[str, int] = {}

    def push(self, label: str) -> None:
        """Enter a monitored invocation of ``label``."""
        caller = self._stack[-1] if self._stack else ROOT
        self.edge_counts[(caller, label)] = self.edge_counts.get((caller, label), 0) + 1
        self.node_counts[label] = self.node_counts.get(label, 0) + 1
        self._stack.append(label)

    def pop(self, label: str) -> None:
        """Leave the innermost invocation (must match ``label``)."""
        if not self._stack:
            raise RuntimeError(f"call-path pop({label!r}) with empty stack")
        top = self._stack.pop()
        if top != label:
            self._stack.append(top)
            raise RuntimeError(f"call-path pop({label!r}) does not match top {top!r}")

    @property
    def depth(self) -> int:
        return len(self._stack)

    def graph(self, include_root: bool = False) -> nx.DiGraph:
        """Caller->callee digraph with ``count`` edge attributes."""
        g = nx.DiGraph()
        for label, n in self.node_counts.items():
            g.add_node(label, invocations=n)
        for (caller, callee), n in self.edge_counts.items():
            if caller == ROOT and not include_root:
                continue
            if caller == ROOT:
                g.add_node(ROOT, invocations=0)
            g.add_edge(caller, callee, count=n)
        return g

    def calls_between(self, caller: str, callee: str) -> int:
        return self.edge_counts.get((caller, callee), 0)
