"""Automatic proxy generation (paper Sections 4.2 and 6).

"For each component that the user wants to analyze, a proxy component is
created.  The proxy component shares the same interface as the actual
component. ... the proxy is able to snoop the method invocation on the
Provides Port, and then forward the method invocation to the component on
the Uses Port."

The paper created proxies manually "with the help of a few scripts" and
envisioned full automation plus "simple mark-up approaches identifying
arguments/parameters which affect performance".  Both are realized here:

* :func:`make_proxy_port` synthesizes a proxy class for any
  :class:`~repro.cca.ports.Port` interface by introspection;
* :func:`perf_params` is the mark-up — a decorator on interface methods
  naming an extractor that maps call arguments to the performance
  parameters the Mastermind should record.

Parameter extraction runs *before* monitoring starts and the forwarded
call is bracketed tightly, matching the paper's "all the extraction and
recording of parameters is done outside the timers and counters that
actually measure the performance of a component."
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

from repro.cca.component import Component
from repro.cca.framework import Framework
from repro.cca.ports import Port, port_methods
from repro.cca.services import Services
from repro.faults.injector import TransientComponentError
from repro.faults.plan import COMPONENT_DELAY, RAISE
from repro.perf.monitor import MonitorPort

#: attribute set on interface methods by the perf_params mark-up
_EXTRACTOR_ATTR = "_perf_param_extractor"

Extractor = Callable[[tuple, dict], Mapping[str, Any]]


def perf_params(extractor: Extractor):
    """Mark-up decorator for Port interface methods.

    ``extractor(args, kwargs)`` receives the call's positional and keyword
    arguments (excluding ``self``) and returns the parameter dict to record,
    e.g. ``lambda args, kwargs: {"Q": args[0].size}`` for an array routine.
    """

    def deco(fn):
        setattr(fn, _EXTRACTOR_ATTR, extractor)
        return fn

    return deco


def declared_extractors(port_type: type[Port]) -> dict[str, Extractor]:
    """Collect per-method extractors declared with :func:`perf_params`."""
    out: dict[str, Extractor] = {}
    for name in port_methods(port_type):
        fn = getattr(port_type, name)
        ex = getattr(fn, _EXTRACTOR_ATTR, None)
        if ex is not None:
            out[name] = ex
    return out


def _make_forwarder(
    method: str, extractor: Extractor | None, monitored: bool
) -> Callable:
    """Build one proxy method: snoop (optionally) and forward."""

    if monitored:

        def fwd(self, *args: Any, **kwargs: Any) -> Any:
            params = dict(extractor(args, kwargs)) if extractor else {}
            # Injected faults resolve before monitoring starts, like the
            # parameter extraction: a transient raise is retried (each
            # retry re-consults the injector, advancing the fault's
            # occurrence counter) so only the surviving forwarded call is
            # measured.  An injected *delay* instead sleeps inside the
            # monitored region — the latency spike must be visible to the
            # Mastermind's records and the online drift detector.
            action = None
            ctx = self._fault_ctx() if self._fault_ctx is not None else None
            if ctx is not None:
                injector, policy, rank, stats = ctx
                attempt = 0
                while True:
                    action = injector.on_component_call(rank, self._label, method)
                    if action is None or action.kind != RAISE:
                        break
                    if policy is None:
                        raise TransientComponentError(
                            f"{self._label}.{method}: injected failure"
                        )
                    attempt += 1
                    if attempt >= policy.max_attempts:
                        stats.failures += 1
                        raise TransientComponentError(
                            f"{self._label}.{method}: injected failure persisted "
                            f"through {attempt} attempt(s)"
                        )
                    stats.component_retries += 1
                    injector.note(rank, "component.retry")
                    obs = self._obs() if self._obs is not None else None
                    if obs is not None:
                        obs.metrics.counter(
                            "component_retries_total",
                            "transient component failures retried",
                            label=self._label).inc()
                    time.sleep(policy.component_backoff_s * 2 ** (attempt - 1))
            monitor = self._monitor()
            token = monitor.begin_invocation(self._label, method, params)
            try:
                if action is not None and action.kind == COMPONENT_DELAY:
                    time.sleep(action.delay_us / 1e6)
                return getattr(self._target(), method)(*args, **kwargs)
            finally:
                monitor.end_invocation(token)

    else:

        def fwd(self, *args: Any, **kwargs: Any) -> Any:
            return getattr(self._target(), method)(*args, **kwargs)

    fwd.__name__ = method
    fwd.__qualname__ = f"proxy.{method}"
    return fwd


def make_proxy_port(
    port_type: type[Port],
    label: str,
    target_getter: Callable[[], Port],
    monitor_getter: Callable[[], MonitorPort],
    methods: list[str] | None = None,
    extractors: Mapping[str, Extractor] | None = None,
    fault_getter: Callable[[], tuple | None] | None = None,
    obs_getter: Callable[[], Any] | None = None,
) -> Port:
    """Synthesize a proxy implementing ``port_type``.

    ``methods`` restricts monitoring to the named interface methods (all by
    default); unmonitored methods still forward transparently.
    ``extractors`` override/augment the interface's ``perf_params`` mark-up.
    ``target_getter``/``monitor_getter`` defer port resolution until first
    call, since framework connections happen after component creation.
    ``fault_getter``, when provided, returns ``(injector, policy, rank,
    stats)`` for the running world (or None when no faults are attached);
    monitored methods then consult the injector at the call boundary.
    ``obs_getter`` returns the rank's observability state (or None) so
    retry metrics land in the metrics registry.
    """
    iface_methods = port_methods(port_type)
    if not iface_methods:
        raise ValueError(f"{port_type.__name__} declares no methods to proxy")
    monitored = set(iface_methods if methods is None else methods)
    unknown = monitored - set(iface_methods)
    if unknown:
        raise ValueError(
            f"cannot monitor {sorted(unknown)}: not methods of {port_type.__name__} "
            f"(has {iface_methods})"
        )
    all_extractors = declared_extractors(port_type)
    all_extractors.update(extractors or {})

    namespace: dict[str, Any] = {
        "_label": label,
        "__doc__": f"Auto-generated proxy for {port_type.__name__} ({label})",
    }
    for name in iface_methods:
        namespace[name] = _make_forwarder(
            name, all_extractors.get(name), monitored=name in monitored
        )
    proxy_cls = type(f"{port_type.__name__}_{label}_proxy", (port_type,), namespace)
    proxy = proxy_cls()
    # Late-bound accessors live on the instance, not the class, so one
    # interface can be proxied many times with different wiring.
    proxy._target = target_getter
    proxy._monitor = monitor_getter
    proxy._fault_ctx = fault_getter
    proxy._obs = obs_getter
    return proxy


class ProxyComponent(Component):
    """A generated proxy packaged as a CCA component.

    Provides ``port_name`` with the proxied interface; uses ``port_name``
    (the real component, connected by the framework) and ``monitor`` (the
    Mastermind).  Placed "directly in front of" the actual component.
    """

    MONITOR_PORT = "monitor"

    def __init__(
        self,
        port_type: type[Port],
        port_name: str,
        label: str | None = None,
        methods: list[str] | None = None,
        extractors: Mapping[str, Extractor] | None = None,
    ) -> None:
        self.port_type = port_type
        self.port_name = port_name
        self.label = label or f"{port_name}_proxy"
        self.methods = methods
        self.extractors = dict(extractors or {})
        self._services: Services | None = None

    def set_services(self, services: Services) -> None:
        self._services = services
        services.register_uses_port(self.port_name, self.port_type)
        services.register_uses_port(self.MONITOR_PORT, MonitorPort)

        def fault_ctx() -> tuple | None:
            comm = getattr(services.framework, "comm", None)
            if comm is None or comm.world.injector is None:
                return None
            world = comm.world
            return (world.injector, world.policy, comm.rank,
                    world.resilience[comm.rank])

        proxy = make_proxy_port(
            self.port_type,
            self.label,
            target_getter=lambda: services.get_port(self.port_name),
            monitor_getter=lambda: services.get_port(self.MONITOR_PORT),
            methods=self.methods,
            extractors=self.extractors,
            fault_getter=fault_ctx,
            obs_getter=lambda: getattr(services.framework, "obs", None),
        )
        services.add_provides_port(proxy, self.port_name, self.port_type)


def insert_proxy(
    framework: Framework,
    user_instance: str,
    uses_port: str,
    mastermind_instance: str,
    proxy_instance: str | None = None,
    label: str | None = None,
    methods: list[str] | None = None,
    extractors: Mapping[str, Extractor] | None = None,
) -> str:
    """Interpose a proxy on an existing user->provider connection.

    Rewires ``user.uses_port`` so calls flow user -> proxy -> original
    provider, with the proxy's monitor port connected to the Mastermind.
    Returns the proxy's instance name.
    """
    usv = framework.services_of(user_instance)
    if uses_port not in usv.used:
        raise KeyError(f"{user_instance} has no uses port {uses_port!r}")
    up = usv.used[uses_port]
    if up.provider_instance is None:
        raise RuntimeError(
            f"{user_instance}.{uses_port} is not connected; connect it before "
            "inserting a proxy"
        )
    provider = up.provider_instance
    # Identify the provider-side port name backing this connection.
    psv = framework.services_of(provider)
    provides_name = next(
        (p.name for p in psv.provided.values() if p.impl is up.impl), None
    )
    if provides_name is None:
        raise RuntimeError(f"cannot trace provided port behind {user_instance}.{uses_port}")

    proxy_instance = proxy_instance or f"{provider}_proxy"
    framework.create(
        proxy_instance,
        ProxyComponent,
        port_type=up.port_type,
        port_name=uses_port,
        label=label or proxy_instance,
        methods=methods,
        extractors=extractors,
    )
    framework.connect(proxy_instance, uses_port, provider, provides_name)
    framework.connect(proxy_instance, ProxyComponent.MONITOR_PORT,
                      mastermind_instance, "monitor")
    framework.disconnect(user_instance, uses_port)
    framework.connect(user_instance, uses_port, proxy_instance, uses_port)
    return proxy_instance
