"""The Mastermind component (paper Section 4.3).

"The Mastermind component is responsible for gathering, storing and
reporting of the measurement data."  It provides the MonitorPort the
proxies call, holds one :class:`~repro.perf.records.MethodRecord` per
monitored routine, and implements the paper's cumulative-differencing
measurement discipline:

1. ``begin_invocation`` — store the extracted parameters, query the TAU
   component for current wall time / MPI time / hardware counters, start
   the routine's TAU timer;
2. ``end_invocation`` — stop the timer, query again, difference the two
   snapshots, and file the single-invocation measurement in the record.

Beyond measurement it offers the Section 6 machinery: per-method
performance-model construction, the call-path trace, the application dual,
and an online model-drift check ("dynamic performance optimization which
uses online performance monitoring to determine when performance
expectations are not being met").
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.cca.component import Component
from repro.cca.services import PortNotConnectedError, Services
from repro.models.composite import Workload
from repro.models.performance import PerformanceModel, build_model
from repro.perf.callpath import CallPathRecorder
from repro.perf.monitor import MonitorPort
from repro.perf.records import InvocationRecord, MethodRecord
from repro.tau.component import MeasurementPort
from repro.tau.query import MeasurementSnapshot


@dataclass
class _ActiveInvocation:
    key: tuple[str, str]
    params: Mapping[str, Any]
    before: MeasurementSnapshot
    timer_name: str


class Mastermind(Component, MonitorPort):
    """Measurement gatherer/reporter; also the modeling front-end."""

    MONITOR_PROVIDES = "monitor"
    MEASUREMENT_USES = "measurement"

    #: TAU timer group under which proxy-bracketed routines are recorded
    TIMER_GROUP = "proxied"

    def __init__(self) -> None:
        self._services: Services | None = None
        self._records: dict[tuple[str, str], MethodRecord] = {}
        self._active: dict[int, _ActiveInvocation] = {}
        self._next_token = 0
        self.callpath = CallPathRecorder()

    def __getstate__(self) -> dict:
        """Pickle the measurement database without the framework wiring.

        ``_services`` links back into the live framework (ports, comm,
        locks) and is meaningless in another process; a rehydrated
        Mastermind is a read-only record store until ``set_services`` is
        called again.
        """
        state = self.__dict__.copy()
        state["_services"] = None
        return state

    # --------------------------------------------------------------- CCA
    def set_services(self, services: Services) -> None:
        self._services = services
        services.add_provides_port(self, self.MONITOR_PROVIDES, MonitorPort)
        services.register_uses_port(self.MEASUREMENT_USES, MeasurementPort)

    def _measurement(self) -> MeasurementPort:
        if self._services is None:
            raise RuntimeError("Mastermind not initialized by a framework")
        try:
            return self._services.get_port(self.MEASUREMENT_USES)
        except PortNotConnectedError:
            raise PortNotConnectedError(
                "Mastermind requires a connected TAU MeasurementPort "
                "(connect 'measurement' to a TauMeasurementComponent)"
            ) from None

    # ------------------------------------------------------- MonitorPort
    def begin_invocation(self, label: str, method: str, params: Mapping[str, Any]) -> int:
        key = (label, method)
        rec = self._records.get(key)
        if rec is None:
            rec = self._records[key] = MethodRecord(label, method)
        mp = self._measurement()
        self.callpath.push(rec.timer_name)
        # Parameters were extracted by the proxy before this call; from here
        # on we only snapshot and start the timer (outside-the-timers rule).
        before = mp.query()
        mp.start_timer(rec.timer_name, group=self.TIMER_GROUP)
        token = self._next_token
        self._next_token += 1
        self._active[token] = _ActiveInvocation(
            key=key, params=dict(params), before=before, timer_name=rec.timer_name
        )
        return token

    def end_invocation(self, token: int) -> None:
        try:
            act = self._active.pop(token)
        except KeyError:
            raise RuntimeError(f"end_invocation with unknown token {token}") from None
        mp = self._measurement()
        mp.stop_timer(act.timer_name)
        after = mp.query()
        self.callpath.pop(act.timer_name)
        measurement = act.before.delta(after)
        self._records[act.key].add(InvocationRecord(params=act.params, measurement=measurement))
        obs = self._services.framework.obs if self._services is not None else None
        if obs is not None:
            m = obs.metrics
            m.counter("invocations_total", "proxied invocations recorded",
                      routine=act.timer_name).inc()
            m.histogram("invocation_wall_us", "per-invocation wall time",
                        routine=act.timer_name).observe(measurement.wall_us)

    # ----------------------------------------------------------- queries
    def record(self, label: str, method: str) -> MethodRecord:
        """The record object for one monitored routine (KeyError if none)."""
        try:
            return self._records[(label, method)]
        except KeyError:
            raise KeyError(
                f"no record for {label}::{method}; monitored routines: "
                f"{sorted(self._records)}"
            ) from None

    def all_records(self) -> list[MethodRecord]:
        return [self._records[k] for k in sorted(self._records)]

    def labels(self) -> list[str]:
        return sorted({label for (label, _m) in self._records})

    # ---------------------------------------------------------- modeling
    def workload(self, label: str, method: str, param: str = "Q") -> Workload:
        """The observed workload of a routine, for composite evaluation."""
        rec = self.record(label, method)
        return Workload.from_samples(rec.param_series(param))

    def build_performance_model(
        self,
        label: str,
        method: str,
        param: str = "Q",
        use: str = "wall",
        **model_kwargs: Any,
    ) -> PerformanceModel:
        """Fit a PerformanceModel from this routine's record.

        ``use`` selects the measured quantity: ``"wall"`` (total),
        ``"compute"`` (wall minus MPI) or ``"mpi"``.
        """
        rec = self.record(label, method)
        series = {
            "wall": rec.wall_series,
            "compute": rec.compute_series,
            "mpi": rec.mpi_series,
        }
        try:
            t = series[use]()
        except KeyError:
            raise ValueError(f"use must be one of {sorted(series)}, got {use!r}") from None
        return build_model(rec.timer_name, rec.param_series(param), t, **model_kwargs)

    def build_modal_performance_model(
        self,
        label: str,
        method: str,
        param: str = "Q",
        mode_param: str = "mode",
        **model_kwargs: Any,
    ):
        """Fit one model per access mode from this routine's record.

        The mode-resolved refinement of :meth:`build_performance_model`
        (see :mod:`repro.models.permode`); requires the proxy extractor to
        have recorded ``mode_param``.
        """
        from repro.models.permode import build_modal_model

        return build_modal_model(self.record(label, method), param=param,
                                 mode_param=mode_param, **model_kwargs)

    def check_model(
        self,
        label: str,
        method: str,
        model: PerformanceModel,
        param: str = "Q",
        n_sigma: float = 3.0,
        floor_us: float = 0.0,
    ) -> float:
        """Online drift check: fraction of invocations outside mean±n·sigma.

        Returns the violation fraction in [0, 1]; a high value means
        "performance expectations are not being met" and a model-guided
        component replacement should be considered (Section 6).
        """
        rec = self.record(label, method)
        q = rec.param_series(param)
        t = rec.wall_series()
        mean = np.atleast_1d(model.predict_mean(q))
        std = np.atleast_1d(model.predict_std(q))
        band = np.maximum(n_sigma * std, floor_us)
        violations = np.abs(t - mean) > band
        return float(violations.mean()) if t.size else 0.0

    # ------------------------------------------------------------ report
    def report(self) -> str:
        """Human-readable summary of every monitored routine.

        One row per record: invocation count, mean wall time, mean MPI
        time, and the observed workload-parameter range — the "reporting"
        third of the Mastermind's gather/store/report mandate.
        """
        from repro.util.tabular import format_table

        rows = []
        for rec in self.all_records():
            wall = rec.wall_series()
            mpi = rec.mpi_series()
            try:
                q = rec.param_series("Q")
                q_range = f"{int(q.min())}..{int(q.max())}" if q.size else "-"
            except KeyError:
                q_range = "-"
            rows.append((
                rec.timer_name,
                len(rec),
                f"{wall.mean():,.1f}" if len(rec) else "-",
                f"{mpi.mean():,.1f}" if len(rec) else "-",
                q_range,
            ))
        return format_table(
            ["routine", "#invocations", "mean wall us", "mean MPI us", "Q range"],
            rows,
            title="Mastermind measurement report:",
        )

    # -------------------------------------------------------- checkpoint
    def records_state(self) -> list[dict]:
        """Serializable state of every method record (checkpoint payload)."""
        return [rec.to_dict() for rec in self.all_records()]

    def restore_records(self, state: list[dict]) -> None:
        """Reload records from :meth:`records_state` output.

        Replaces any records accumulated so far; used by checkpoint/restart
        so a resumed run's measurement history is identical to an
        uninterrupted one.
        """
        if self._active:
            raise RuntimeError(
                f"cannot restore records with {len(self._active)} open invocation(s)"
            )
        self._records = {}
        for data in state:
            rec = MethodRecord.from_dict(data)
            self._records[rec.key] = rec

    # -------------------------------------------------------------- dump
    def dump_all(self, directory: str) -> list[str]:
        """Write every method record to ``directory``; returns file paths.

        This is the record-destruction output of Section 4.3, invoked
        explicitly (Python object lifetimes make destructor I/O unreliable).
        Each file is written atomically (see
        :meth:`~repro.perf.records.MethodRecord.dump`).
        """
        os.makedirs(directory, exist_ok=True)
        paths = []
        for rec in self.all_records():
            fname = f"{rec.label}.{rec.method}.record".replace(os.sep, "_")
            path = os.path.join(directory, fname)
            rec.dump(path)
            paths.append(path)
        return paths

    def release(self) -> None:
        """Framework destruction hook; active invocations must be closed."""
        if self._active:
            raise RuntimeError(
                f"Mastermind destroyed with {len(self._active)} open invocation(s)"
            )
