"""Record objects (paper Section 4.3).

"For each method that is monitored, a record object is created and stored
by the Mastermind.  The record object stores all the measurement data for
each of the invocations of a single routine. ... When a record object is
destroyed, it outputs to a file all of the measurement data for each
invocation that it stored."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.tau.query import InvocationMeasurement


@dataclass(frozen=True)
class InvocationRecord:
    """One monitored invocation: extracted parameters + measured costs."""

    params: Mapping[str, Any]
    measurement: InvocationMeasurement

    @property
    def wall_us(self) -> float:
        return self.measurement.wall_us

    @property
    def mpi_us(self) -> float:
        return self.measurement.mpi_us

    @property
    def compute_us(self) -> float:
        return self.measurement.compute_us

    def to_dict(self) -> dict[str, Any]:
        """Checkpoint representation (exact float round-trip)."""
        return {
            "params": dict(self.params),
            "wall_us": self.measurement.wall_us,
            "mpi_us": self.measurement.mpi_us,
            "counters": dict(self.measurement.counters),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InvocationRecord":
        return cls(
            params=dict(data["params"]),
            measurement=InvocationMeasurement(
                wall_us=data["wall_us"],
                mpi_us=data["mpi_us"],
                counters=dict(data.get("counters", {})),
            ),
        )


class MethodRecord:
    """All invocations of a single monitored routine."""

    def __init__(self, label: str, method: str) -> None:
        self.label = label
        self.method = method
        self.invocations: list[InvocationRecord] = []

    @property
    def key(self) -> tuple[str, str]:
        return (self.label, self.method)

    @property
    def timer_name(self) -> str:
        """TAU timer name for this routine, e.g. ``sc_proxy::compute()``."""
        return f"{self.label}::{self.method}()"

    def add(self, record: InvocationRecord) -> None:
        self.invocations.append(record)

    def __len__(self) -> int:
        return len(self.invocations)

    # ------------------------------------------------------------ series
    def param_series(self, param: str) -> np.ndarray:
        """The value of one extracted parameter across invocations.

        Invocations missing the parameter raise ``KeyError`` — a missing
        performance parameter means the proxy's extractor is wrong.
        """
        try:
            return np.asarray([inv.params[param] for inv in self.invocations], dtype=float)
        except KeyError:
            raise KeyError(
                f"{self.timer_name}: parameter {param!r} missing from some "
                f"invocation records; recorded params include "
                f"{sorted(self.invocations[0].params) if self.invocations else []}"
            ) from None

    def wall_series(self) -> np.ndarray:
        return np.asarray([inv.wall_us for inv in self.invocations])

    def mpi_series(self) -> np.ndarray:
        return np.asarray([inv.mpi_us for inv in self.invocations])

    def compute_series(self) -> np.ndarray:
        return np.asarray([inv.compute_us for inv in self.invocations])

    def total_mpi_us(self) -> float:
        return float(self.mpi_series().sum()) if self.invocations else 0.0

    def total_wall_us(self) -> float:
        return float(self.wall_series().sum()) if self.invocations else 0.0

    # -------------------------------------------------------- checkpoint
    def to_dict(self) -> dict[str, Any]:
        """Checkpoint representation of the whole record."""
        return {
            "label": self.label,
            "method": self.method,
            "invocations": [inv.to_dict() for inv in self.invocations],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MethodRecord":
        rec = cls(data["label"], data["method"])
        rec.invocations = [InvocationRecord.from_dict(d) for d in data["invocations"]]
        return rec

    # -------------------------------------------------------------- dump
    def to_text(self) -> str:
        """Render every stored invocation (the record's file output)."""
        param_names = sorted({k for inv in self.invocations for k in inv.params})
        header = ["#", *param_names, "wall_us", "mpi_us", "compute_us"]
        lines = [f"# method record: {self.timer_name}", "\t".join(header)]
        for i, inv in enumerate(self.invocations):
            cells = [str(i)]
            cells += [repr(inv.params.get(p, "")) for p in param_names]
            cells += [f"{inv.wall_us:.3f}", f"{inv.mpi_us:.3f}", f"{inv.compute_us:.3f}"]
            lines.append("\t".join(cells))
        return "\n".join(lines) + "\n"

    def dump(self, path: str) -> None:
        """Write all invocation data to ``path`` (record-destruction dump).

        Atomic (temp file + ``os.replace``): a crash mid-dump never leaves
        a truncated record file behind.
        """
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(path, self.to_text())
