"""Online performance monitoring and dynamic re-optimization.

Paper Section 6: "This facilitates dynamic performance optimization which
uses online performance monitoring to determine when performance
expectations are not being met and new model-guided decisions of component
use need to take place.  This is currently underway."

:class:`OnlineMonitor` realizes it: it watches a monitored routine's
recent invocations against that routine's expected
:class:`~repro.models.performance.PerformanceModel`; when the fraction of
out-of-band invocations in a sliding window exceeds a threshold, it
consults the candidate models and — if a better implementation exists —
swaps the component in place through the framework's AbstractFramework
port (Figure 10's "dynamic replacement of sub-optimal components").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cca.component import Component
from repro.cca.framework import Framework
from repro.models.composite import Workload
from repro.models.performance import PerformanceModel
from repro.perf.mastermind import Mastermind
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class Expectation:
    """What a monitored routine is expected to cost."""

    label: str
    method: str
    model: PerformanceModel
    param: str = "Q"
    n_sigma: float = 3.0
    floor_us: float = 50.0


@dataclass
class DriftReport:
    """Outcome of one monitoring check."""

    label: str
    method: str
    window: int
    violation_fraction: float
    drifting: bool
    replaced_with: str | None = None

    def __str__(self) -> str:
        state = "DRIFT" if self.drifting else "ok"
        extra = f" -> replaced with {self.replaced_with}" if self.replaced_with else ""
        return (
            f"[{state}] {self.label}::{self.method}(): "
            f"{self.violation_fraction:.0%} of last {self.window} "
            f"invocation(s) out of band{extra}"
        )


@dataclass(frozen=True)
class Candidate:
    """An alternative implementation for a monitored slot."""

    component_class: type[Component]
    model: PerformanceModel


class OnlineMonitor:
    """Sliding-window drift detector with model-guided replacement."""

    def __init__(
        self,
        mastermind: Mastermind,
        window: int = 20,
        drift_threshold: float = 0.5,
    ) -> None:
        check_positive("window", window)
        check_in_range("drift_threshold", drift_threshold, 0.0, 1.0)
        self.mastermind = mastermind
        self.window = int(window)
        self.drift_threshold = float(drift_threshold)

    # ------------------------------------------------------------------ #
    def violation_fraction(self, exp: Expectation) -> tuple[float, int]:
        """Fraction of the last ``window`` invocations outside the band."""
        rec = self.mastermind.record(exp.label, exp.method)
        invs = rec.invocations[-self.window:]
        if not invs:
            return (0.0, 0)
        q = np.asarray([inv.params[exp.param] for inv in invs], dtype=float)
        t = np.asarray([inv.wall_us for inv in invs])
        mean = np.atleast_1d(exp.model.predict_mean(q))
        std = np.atleast_1d(exp.model.predict_std(q))
        band = np.maximum(exp.n_sigma * std, exp.floor_us)
        violations = np.abs(t - mean) > band
        return (float(violations.mean()), len(invs))

    def check(self, exp: Expectation) -> DriftReport:
        """Evaluate one expectation (no replacement)."""
        frac, n = self.violation_fraction(exp)
        return DriftReport(
            label=exp.label,
            method=exp.method,
            window=n,
            violation_fraction=frac,
            drifting=n > 0 and frac >= self.drift_threshold,
        )

    # ------------------------------------------------------------------ #
    def recommend(
        self,
        exp: Expectation,
        candidates: Sequence[Candidate],
    ) -> Candidate | None:
        """Pick the candidate whose model predicts the lowest cost on the
        routine's *observed* workload; None if no candidate beats the
        currently *measured* behaviour.

        The baseline is the measured total wall time, not the (possibly
        stale) expectation model — when drift fired, the expectation no
        longer describes the running implementation.
        """
        rec = self.mastermind.record(exp.label, exp.method)
        workload = Workload.from_samples(rec.param_series(exp.param))
        measured_cost = rec.total_wall_us()
        best: Candidate | None = None
        best_cost = measured_cost
        for cand in candidates:
            cost = workload.expected_cost(cand.model)
            if cost < best_cost:
                best, best_cost = cand, cost
        return best

    def check_and_reoptimize(
        self,
        exp: Expectation,
        framework: Framework,
        instance_name: str,
        candidates: Sequence[Candidate],
    ) -> DriftReport:
        """Full loop: detect drift and, if drifting, swap in the best
        candidate through the framework (preserving all wiring)."""
        report = self.check(exp)
        if not report.drifting:
            return report
        choice = self.recommend(exp, candidates)
        if choice is None:
            return report
        framework.replace_component(instance_name, choice.component_class)
        report.replaced_with = choice.component_class.__name__
        return report

    # ------------------------------------------------------------------ #
    def check_stragglers(self, totals_us: Sequence[float], detector=None):
        """Scan per-rank MPI totals for stragglers.

        ``totals_us`` is one value per rank (e.g. from
        :func:`repro.faults.straggler.mpi_totals_by_rank` over per-rank
        Mastermind records); returns a
        :class:`~repro.faults.straggler.StragglerReport`.
        """
        from repro.faults.straggler import StragglerDetector

        return (detector or StragglerDetector()).detect(totals_us)

    def reoptimize_on_stragglers(
        self,
        totals_us: Sequence[float],
        exp: Expectation,
        framework: Framework,
        instance_name: str,
        candidates: Sequence[Candidate],
        detector=None,
    ) -> DriftReport:
        """Straggler-driven variant of :meth:`check_and_reoptimize`.

        An injected (or real) stall inflates a rank's modeled MPI time
        without touching its sliding-window wall-time statistics, so the
        per-invocation drift check can stay quiet while the job as a whole
        degrades.  Here the cross-rank straggler signal forces the
        model-guided decision: when any rank is flagged, consult the
        candidate models on the observed workload and swap in a cheaper
        implementation if one exists.
        """
        straggler = self.check_stragglers(totals_us, detector=detector)
        report = self.check(exp)
        if not straggler.detected:
            return report
        report.drifting = True
        choice = self.recommend(exp, candidates)
        if choice is None:
            return report
        framework.replace_component(instance_name, choice.component_class)
        report.replaced_with = choice.component_class.__name__
        return report
