"""MonitorPort: the proxy -> Mastermind notification interface.

Paper Section 4.2: "the proxy also uses a MonitorPort to make measurements.
If the method is one that the user wants to measure, monitoring is started
before the method invocation is forwarded and stopped afterward.  When the
monitoring is started, parameters that influence the method's performance
are sent to the Mastermind."
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.cca.ports import Port


class MonitorPort(Port):
    """Begin/end bracketing for one monitored method invocation."""

    def begin_invocation(
        self, label: str, method: str, params: Mapping[str, Any]
    ) -> int:
        """Start monitoring; returns a token to pass to ``end_invocation``.

        ``label`` identifies the monitored component instance (the proxy's
        name for it), ``method`` the invoked port method, and ``params`` the
        performance-relevant inputs the proxy extracted (e.g. array size).
        """
        raise NotImplementedError

    def end_invocation(self, token: int) -> None:
        """Stop monitoring for the invocation identified by ``token``."""
        raise NotImplementedError
