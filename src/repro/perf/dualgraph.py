"""The application dual (paper Figure 10).

"Below, its dual, constructed as a directed graph in the Mastermind, with
edge weights corresponding to the number of invocations and the vertex
weights being the compute and communication times determined from the
performance models (PM_i) for component i."

:func:`build_dual` combines the Mastermind's call trace and records with
(optionally) per-label performance models: vertex weights are the
model-predicted compute time over the observed workload (falling back to
measured totals when no model is supplied) plus the measured communication
time; edge weights are invocation counts.
"""

from __future__ import annotations

from typing import Mapping

import networkx as nx

from repro.models.composite import CompositeModel, Workload
from repro.models.performance import PerformanceModel
from repro.perf.mastermind import Mastermind


def build_dual(
    mastermind: Mastermind,
    models: Mapping[str, PerformanceModel] | None = None,
    param: str = "Q",
) -> nx.DiGraph:
    """Construct the dual digraph from a Mastermind's recorded run.

    Nodes are monitored routine names (``label::method()``) with
    attributes ``compute_us``, ``comm_us``, ``invocations``,
    ``predicted`` (True when a model supplied the compute weight) and
    ``model`` (the model's name, if any).  Edges carry ``count``.
    """
    models = dict(models or {})
    g = mastermind.callpath.graph()
    for rec in mastermind.all_records():
        name = rec.timer_name
        if name not in g:
            # Routine recorded but never entered the call path — defensive,
            # should not happen since both flow through begin_invocation.
            g.add_node(name, invocations=len(rec))
        model = models.get(name) or models.get(rec.label)
        if model is not None:
            try:
                workload = Workload.from_samples(rec.param_series(param))
                compute = workload.expected_cost(model)
                predicted = True
            except KeyError:
                compute = float(rec.compute_series().sum())
                predicted = False
        else:
            compute = float(rec.compute_series().sum())
            predicted = False
        g.nodes[name].update(
            compute_us=compute,
            comm_us=rec.total_mpi_us(),
            predicted=predicted,
            model=model.name if model is not None else None,
        )
    return g


def node_total_us(g: nx.DiGraph, node: str) -> float:
    """Vertex weight: compute + communication time."""
    data = g.nodes[node]
    return float(data.get("compute_us", 0.0)) + float(data.get("comm_us", 0.0))


def insignificant_subgraph_nodes(g: nx.DiGraph, fraction: float = 0.01) -> set[str]:
    """Nodes whose entire call subtree is performance-insignificant.

    "The parent-child relationship is preserved to identify sub-graphs that
    do not contribute much to the execution time and thus can be neglected
    during component assembly optimization."  A node qualifies when the sum
    of vertex weights over its descendants-and-self is below ``fraction``
    of the whole graph's weight.
    """
    if not (0.0 <= fraction <= 1.0):
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    total = sum(node_total_us(g, n) for n in g.nodes)
    if total <= 0:
        return set()
    out: set[str] = set()
    for n in g.nodes:
        subtree = {n} | nx.descendants(g, n)
        weight = sum(node_total_us(g, m) for m in subtree)
        if weight < fraction * total:
            out.add(n)
    return out


def dual_to_composite(
    mastermind: Mastermind,
    slots: Mapping[str, str],
    models: Mapping[str, PerformanceModel] | None = None,
    param: str = "Q",
) -> CompositeModel:
    """Turn a recorded run into an implementation-independent composite.

    ``slots`` maps routine names (or labels) to slot keys: those nodes
    become free variables to be bound per candidate implementation; all
    other monitored nodes are bound to ``models`` entries or, absent a
    model, to a constant model of their measured mean.
    """
    from repro.models.fits import fit_constant

    models = dict(models or {})
    comp = CompositeModel()
    for rec in mastermind.all_records():
        name = rec.timer_name
        slot = slots.get(name) or slots.get(rec.label)
        try:
            workload = Workload.from_samples(rec.param_series(param))
        except KeyError:
            workload = Workload((0.0,), (len(rec),))
        comm = rec.total_mpi_us()
        if slot is not None:
            comp.add_node(name, workload, slot=slot, comm_us=comm)
            continue
        model = models.get(name) or models.get(rec.label)
        if model is None:
            wall = rec.wall_series()
            mean = float(wall.mean()) if wall.size else 0.0
            # Constant fallback: two identical points make fit_constant valid.
            cfit = fit_constant([0.0, 1.0], [mean, mean])
            model = PerformanceModel(name=f"{name}:measured-mean", mean_fit=cfit)
            comp.add_node(name, Workload((0.0,), (len(rec),)), model=model, comm_us=comm)
        else:
            comp.add_node(name, workload, model=model, comm_us=comm)
    for (caller, callee), count in mastermind.callpath.edge_counts.items():
        if caller in comp.nodes() and callee in comp.nodes():
            comp.add_edge(caller, callee, count)
    return comp
