"""The PMM (performance measurement and modeling) infrastructure.

Paper Section 4: "Our performance system consists of three distinct
component types: a TAU component, proxy components and a 'Mastermind'
component."  The TAU component lives in :mod:`repro.tau.component`; this
package holds the other two plus the modeling machinery they feed:

* :mod:`repro.perf.proxy` — automatic generation of same-interface proxy
  components that snoop method invocations, extract performance parameters
  and forward the call;
* :mod:`repro.perf.records` — per-method record objects storing
  per-invocation measurements;
* :mod:`repro.perf.callpath` — caller/callee trace recording;
* :mod:`repro.perf.mastermind` — the Mastermind component: gathers, stores
  and reports measurement data, builds performance models and the
  application dual;
* :mod:`repro.perf.dualgraph` — the dual directed graph of Figure 10;
* :mod:`repro.perf.optimizer` — component-assembly optimization over the
  composite model.
"""

from repro.perf.monitor import MonitorPort
from repro.perf.records import InvocationRecord, MethodRecord
from repro.perf.callpath import CallPathRecorder
from repro.perf.proxy import perf_params, make_proxy_port, ProxyComponent, insert_proxy
from repro.perf.mastermind import Mastermind
from repro.perf.dualgraph import build_dual, dual_to_composite, insignificant_subgraph_nodes
from repro.perf.optimizer import AssemblyOptimizer, OptimizationResult
from repro.perf.online import OnlineMonitor, Expectation, Candidate, DriftReport

__all__ = [
    "MonitorPort",
    "InvocationRecord",
    "MethodRecord",
    "CallPathRecorder",
    "perf_params",
    "make_proxy_port",
    "ProxyComponent",
    "insert_proxy",
    "Mastermind",
    "build_dual",
    "dual_to_composite",
    "insignificant_subgraph_nodes",
    "AssemblyOptimizer",
    "OptimizationResult",
    "OnlineMonitor",
    "Expectation",
    "Candidate",
    "DriftReport",
]
