"""Experiment harness: regenerate every table and figure of the paper.

One function per experiment (see the index in DESIGN.md Section 4):

* :func:`repro.harness.figures.fig3_profile` — FUNCTION SUMMARY table;
* :func:`repro.harness.figures.fig4_states_modes` — States sequential vs
  strided execution times;
* :func:`repro.harness.figures.fig5_stride_ratio` — strided/sequential
  ratio vs Q;
* :func:`repro.harness.figures.fig6_states_model` / ``fig7`` / ``fig8`` —
  mean + standard deviation vs Q with Eq. 1/2-style fits for States,
  GodunovFlux, EFMFlux;
* :func:`repro.harness.figures.fig9_comm_levels` — per-level ghost-update
  message-passing times with one mid-run regrid;
* :func:`repro.harness.figures.fig10_dual_graph` — the application dual
  and assembly optimization.

:mod:`repro.harness.report` renders the results as text and assembles
EXPERIMENTS.md.
"""

from repro.harness.casestudy import CaseStudyConfig, compose_case_study, run_case_study
from repro.harness.sweeps import (
    q_grid,
    synthetic_patch_stack,
    measure_mode_sweep,
    SweepSamples,
)
from repro.harness.visualization import (ascii_field, assemble_level_field,
                                         field_to_csv, wiring_to_text)
from repro.harness.figures import (
    fig3_profile,
    fig4_states_modes,
    fig5_stride_ratio,
    fig6_states_model,
    fig7_godunov_model,
    fig8_efm_model,
    fig9_comm_levels,
    fig10_dual_graph,
)

__all__ = [
    "CaseStudyConfig",
    "compose_case_study",
    "run_case_study",
    "q_grid",
    "synthetic_patch_stack",
    "measure_mode_sweep",
    "SweepSamples",
    "fig3_profile",
    "fig4_states_modes",
    "fig5_stride_ratio",
    "fig6_states_model",
    "fig7_godunov_model",
    "fig8_efm_model",
    "fig9_comm_levels",
    "fig10_dual_graph",
    "ascii_field",
    "assemble_level_field",
    "field_to_csv",
    "wiring_to_text",
]
