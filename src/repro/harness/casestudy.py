"""Composition and execution of the instrumented case-study application.

Assembles the paper's Figure 2 component graph: ShockDriver, AMRMesh, RK2,
InviscidFlux, States and a flux implementation (EFMFlux or GodunovFlux),
plus the PMM infrastructure — TauMeasurement, Mastermind and three proxies
(States, flux, AMRMesh) interposed exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cca.framework import Framework
from repro.cca.scmd import ScmdResult, run_scmd
from repro.euler.efm import EFMFluxComponent
from repro.euler.godunov import GodunovFluxComponent
from repro.euler.inviscid import InviscidFluxComponent
from repro.euler.mesh_component import AMRMeshComponent
from repro.euler.ports import DriverParams
from repro.euler.rk2 import RK2Component
from repro.euler.shockdriver import ShockDriver
from repro.euler.states import StatesComponent
from repro.mpi.network import NetworkModel
from repro.perf.mastermind import Mastermind
from repro.perf.proxy import insert_proxy
from repro.tau.component import TauMeasurementComponent

FLUX_CLASSES = {"efm": EFMFluxComponent, "godunov": GodunovFluxComponent}

#: proxy labels following the paper's profile (Figure 3): sc_proxy wraps
#: States, g_proxy wraps the flux component, amr_proxy wraps AMRMesh.
STATES_PROXY = "sc_proxy"
FLUX_PROXY = "g_proxy"
MESH_PROXY = "amr_proxy"
#: extension beyond the paper's three proxies: monitoring InviscidFlux's
#: RhsPort gives the call trace its caller/callee nesting, so the dual
#: graph (Figure 10) gets real invocation-weighted edges.
RHS_PROXY = "if_proxy"


@dataclass
class CaseStudyConfig:
    """Everything one case-study run needs."""

    params: DriverParams = field(default_factory=DriverParams)
    flux: str = "efm"
    instrument: bool = True
    nranks: int = 3
    seed: int | None = 0
    #: network calibrated so message passing is a significant fraction of
    #: the profile (the paper's commodity cluster spent ~25% of runtime in
    #: MPI_Waitsome; our Python compute is slower relative to the wire, so
    #: the modeled wire is made correspondingly slower — see EXPERIMENTS.md)
    network: NetworkModel = field(default_factory=lambda: NetworkModel(
        latency_us=3000.0, bandwidth_bytes_per_us=4.0, jitter_sigma=0.25))
    balancer: str = "knapsack"
    #: also proxy InviscidFlux's rhs port (call-path nesting for the dual)
    proxy_rhs: bool = True


@dataclass
class RankHarvest:
    """Per-rank measurement payload pulled out of the rank thread."""

    #: the rank's Mastermind (records, call path, model building)
    mastermind: Mastermind
    records: dict[tuple[str, str], Any]
    callpath_edges: dict[tuple[str, str], int]
    wiring_nodes: list[str]


def compose_case_study(fw: Framework, config: CaseStudyConfig) -> None:
    """Create and wire the full application inside one rank's framework."""
    try:
        flux_cls = FLUX_CLASSES[config.flux]
    except KeyError:
        raise ValueError(
            f"flux must be one of {sorted(FLUX_CLASSES)}, got {config.flux!r}"
        ) from None
    fw.create("states", StatesComponent, batch=config.params.batch)
    fw.create("flux", flux_cls, batch=config.params.batch)
    fw.create("inviscid", InviscidFluxComponent)
    fw.create("rk2", RK2Component)
    mesh = fw.create("mesh", AMRMeshComponent, params=config.params,
                     balancer=config.balancer)
    fw.create("driver", ShockDriver, params=config.params)
    fw.connect("inviscid", "states", "states", "states")
    fw.connect("inviscid", "flux", "flux", "flux")
    fw.connect("rk2", "mesh", "mesh", "mesh")
    fw.connect("rk2", "rhs", "inviscid", "rhs")
    fw.connect("driver", "mesh", "mesh", "mesh")
    fw.connect("driver", "integrator", "rk2", "integrator")
    if not config.instrument:
        return
    fw.create("tau", TauMeasurementComponent)
    fw.create("mastermind", Mastermind)
    fw.connect("mastermind", "measurement", "tau", "measurement")
    insert_proxy(fw, "inviscid", "states", "mastermind", label=STATES_PROXY)
    insert_proxy(fw, "inviscid", "flux", "mastermind", label=FLUX_PROXY)
    if config.proxy_rhs:
        insert_proxy(fw, "rk2", "rhs", "mastermind", label=RHS_PROXY)

    def _mesh_params(args: tuple, kwargs: dict) -> dict:
        level = args[0] if args else kwargs.get("level", 0)
        h = mesh._hierarchy
        return {"level": int(level), "decomp": h.regrid_count if h is not None else 0}

    insert_proxy(
        fw, "rk2", "mesh", "mastermind", label=MESH_PROXY,
        methods=["ghost_update", "sync_down"],
        extractors={"ghost_update": _mesh_params, "sync_down": _mesh_params},
    )


def _harvest(fw: Framework) -> RankHarvest | None:
    try:
        mm: Mastermind = fw.component("mastermind")
    except KeyError:
        return None
    return RankHarvest(
        mastermind=mm,
        records={rec.key: rec for rec in mm.all_records()},
        callpath_edges=dict(mm.callpath.edge_counts),
        wiring_nodes=fw.instance_names(),
    )


def run_case_study(config: CaseStudyConfig | None = None) -> ScmdResult:
    """Run the case study on ``config.nranks`` simulated processors.

    ``result.extras[rank]`` holds each rank's :class:`RankHarvest` when
    instrumentation is on.
    """
    config = config or CaseStudyConfig()
    return run_scmd(
        config.nranks,
        lambda fw: compose_case_study(fw, config),
        go_instance="driver",
        network=config.network,
        seed=config.seed,
        extract=_harvest,
    )
