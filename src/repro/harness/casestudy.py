"""Composition and execution of the instrumented case-study application.

Assembles the paper's Figure 2 component graph: ShockDriver, AMRMesh, RK2,
InviscidFlux, States and a flux implementation (EFMFlux or GodunovFlux),
plus the PMM infrastructure — TauMeasurement, Mastermind and three proxies
(States, flux, AMRMesh) interposed exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cca.framework import Framework
from repro.cca.scmd import ScmdResult, run_scmd
from repro.euler.efm import EFMFluxComponent
from repro.faults.checkpoint import (CheckpointConfig, Checkpointer,
                                     hierarchy_state, latest_step,
                                     load_rank_state)
from repro.faults.injector import SimulatedCrash
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.euler.godunov import GodunovFluxComponent
from repro.euler.inviscid import InviscidFluxComponent
from repro.euler.mesh_component import AMRMeshComponent
from repro.euler.ports import DriverParams
from repro.euler.rk2 import RK2Component
from repro.euler.shockdriver import ShockDriver
from repro.euler.states import StatesComponent
from repro.mpi.network import NetworkModel
from repro.perf.mastermind import Mastermind
from repro.perf.proxy import insert_proxy
from repro.tau.component import TauMeasurementComponent

FLUX_CLASSES = {"efm": EFMFluxComponent, "godunov": GodunovFluxComponent}

#: proxy labels following the paper's profile (Figure 3): sc_proxy wraps
#: States, g_proxy wraps the flux component, amr_proxy wraps AMRMesh.
STATES_PROXY = "sc_proxy"
FLUX_PROXY = "g_proxy"
MESH_PROXY = "amr_proxy"
#: extension beyond the paper's three proxies: monitoring InviscidFlux's
#: RhsPort gives the call trace its caller/callee nesting, so the dual
#: graph (Figure 10) gets real invocation-weighted edges.
RHS_PROXY = "if_proxy"


@dataclass
class CaseStudyConfig:
    """Everything one case-study run needs."""

    params: DriverParams = field(default_factory=DriverParams)
    flux: str = "efm"
    instrument: bool = True
    nranks: int = 3
    seed: int | None = 0
    #: network calibrated so message passing is a significant fraction of
    #: the profile (the paper's commodity cluster spent ~25% of runtime in
    #: MPI_Waitsome; our Python compute is slower relative to the wire, so
    #: the modeled wire is made correspondingly slower — see EXPERIMENTS.md)
    network: NetworkModel = field(default_factory=lambda: NetworkModel(
        latency_us=3000.0, bandwidth_bytes_per_us=4.0, jitter_sigma=0.25))
    balancer: str = "knapsack"
    #: also proxy InviscidFlux's rhs port (call-path nesting for the dual)
    proxy_rhs: bool = True
    #: fault-injection plan (None runs fault-free)
    fault_plan: FaultPlan | None = None
    #: MPI/proxy retry-and-recovery policy (None keeps non-resilient runs)
    resilience: ResiliencePolicy | None = None
    #: periodic checkpointing of mesh + driver + Mastermind state
    checkpoint: CheckpointConfig | None = None
    #: resume from the newest complete checkpoint in ``checkpoint.directory``
    resume: bool = False
    #: wall-clock deadlock timeout handed to the simulated world
    timeout_s: float = 300.0
    #: span tracing + metrics (see repro.obs); None traces nothing
    observe: Any = None
    #: runtime MPI sanitizers (a repro.analysis SanitizerConfig); None
    #: checks nothing
    sanitize: Any = None
    #: communicator backend: "thread" (default, deterministic in-process)
    #: or "mp-shm" (one forked process per rank over shared-memory rings)
    backend: str = "thread"
    #: collective-algorithm family (None legacy, "flat", "hier")
    collectives: str | None = None


@dataclass
class RankHarvest:
    """Per-rank measurement payload pulled out of the rank thread."""

    #: the rank's Mastermind (records, call path, model building)
    mastermind: Mastermind
    records: dict[tuple[str, str], Any]
    callpath_edges: dict[tuple[str, str], int]
    wiring_nodes: list[str]
    #: bit-exact hierarchy state at the end of the run (restart fidelity)
    mesh_state: dict | None = None
    #: per-step dt sizes actually taken by the driver
    dt_history: list[float] = field(default_factory=list)
    #: this rank's ResilienceStats counters
    resilience: dict[str, int] | None = None
    #: steps this rank checkpointed / bytes it wrote doing so
    checkpoint_steps: list[int] = field(default_factory=list)
    checkpoint_bytes: int = 0


def compose_case_study(fw: Framework, config: CaseStudyConfig) -> None:
    """Create and wire the full application inside one rank's framework."""
    try:
        flux_cls = FLUX_CLASSES[config.flux]
    except KeyError:
        raise ValueError(
            f"flux must be one of {sorted(FLUX_CLASSES)}, got {config.flux!r}"
        ) from None
    fw.create("states", StatesComponent, batch=config.params.batch)
    fw.create("flux", flux_cls, batch=config.params.batch)
    fw.create("inviscid", InviscidFluxComponent)
    fw.create("rk2", RK2Component)
    mesh = fw.create("mesh", AMRMeshComponent, params=config.params,
                     balancer=config.balancer)
    driver = fw.create("driver", ShockDriver, params=config.params)
    fw.connect("inviscid", "states", "states", "states")
    fw.connect("inviscid", "flux", "flux", "flux")
    fw.connect("rk2", "mesh", "mesh", "mesh")
    fw.connect("rk2", "rhs", "inviscid", "rhs")
    fw.connect("driver", "mesh", "mesh", "mesh")
    fw.connect("driver", "integrator", "rk2", "integrator")
    mastermind = None
    if config.instrument:
        fw.create("tau", TauMeasurementComponent)
        mastermind = fw.create("mastermind", Mastermind)
        fw.connect("mastermind", "measurement", "tau", "measurement")
        insert_proxy(fw, "inviscid", "states", "mastermind", label=STATES_PROXY)
        insert_proxy(fw, "inviscid", "flux", "mastermind", label=FLUX_PROXY)
        if config.proxy_rhs:
            insert_proxy(fw, "rk2", "rhs", "mastermind", label=RHS_PROXY)

        def _mesh_params(args: tuple, kwargs: dict) -> dict:
            level = args[0] if args else kwargs.get("level", 0)
            h = mesh._hierarchy
            return {"level": int(level),
                    "decomp": h.regrid_count if h is not None else 0}

        insert_proxy(
            fw, "rk2", "mesh", "mastermind", label=MESH_PROXY,
            methods=["ghost_update", "sync_down"],
            extractors={"ghost_update": _mesh_params, "sync_down": _mesh_params},
        )
    _wire_resilience(fw, config, driver, mesh, mastermind)


def _wire_resilience(fw: Framework, config: CaseStudyConfig, driver: ShockDriver,
                     mesh: AMRMeshComponent, mastermind: Mastermind | None) -> None:
    """Attach crash, checkpoint and resume behavior to the driver's loop."""
    comm = fw.comm
    injector = comm.world.injector if comm is not None else None
    rank = comm.rank if comm is not None else 0
    nranks = comm.world.nranks if comm is not None else 1

    if injector is not None and injector.plan.kill_at_step is not None:
        def crash(step: int) -> None:
            if injector.crash_due(rank, step):
                injector.note(rank, "fault.crash", float(step))
                raise SimulatedCrash(f"rank {rank} killed before step {step}")
        driver.pre_step_hooks.append(crash)

    ckpt_cfg = config.checkpoint
    if ckpt_cfg is None or not ckpt_cfg.enabled:
        return
    ckpt = Checkpointer(ckpt_cfg, rank=rank, nranks=nranks, comm=comm,
                        injector=injector)
    # Parked on the driver so _harvest can report checkpoint overhead.
    driver.checkpointer = ckpt

    def save(step: int) -> None:
        if not ckpt.due(step):
            return
        state = {
            "mesh": hierarchy_state(mesh.hierarchy()),
            "dt_history": list(driver.dt_history),
            "next_step": step + 1,
            "mastermind": (mastermind.records_state()
                           if mastermind is not None else None),
        }
        ckpt.save(step, state)
    driver.post_step_hooks.append(save)

    if config.resume:
        step = latest_step(ckpt_cfg.directory)
        if step is None:
            raise FileNotFoundError(
                f"resume requested but no checkpoint manifest in "
                f"{ckpt_cfg.directory!r}"
            )
        state = load_rank_state(ckpt_cfg.directory, step, rank)
        driver.resume_state = state
        if mastermind is not None and state.get("mastermind") is not None:
            mastermind.restore_records(state["mastermind"])


def _harvest(fw: Framework) -> RankHarvest | None:
    try:
        mm: Mastermind = fw.component("mastermind")
    except KeyError:
        return None
    driver: ShockDriver = fw.component("driver")
    mesh: AMRMeshComponent = fw.component("mesh")
    comm = fw.comm
    resilience = None
    if comm is not None and comm.world.policy is not None:
        resilience = comm.world.resilience[comm.rank].as_dict()
    ckpt = getattr(driver, "checkpointer", None)
    return RankHarvest(
        mastermind=mm,
        records={rec.key: rec for rec in mm.all_records()},
        callpath_edges=dict(mm.callpath.edge_counts),
        wiring_nodes=fw.instance_names(),
        mesh_state=(hierarchy_state(mesh._hierarchy)
                    if mesh._hierarchy is not None else None),
        dt_history=list(driver.dt_history),
        resilience=resilience,
        checkpoint_steps=list(ckpt.saved_steps) if ckpt is not None else [],
        checkpoint_bytes=ckpt.bytes_written if ckpt is not None else 0,
    )


def run_case_study(config: CaseStudyConfig | None = None) -> ScmdResult:
    """Run the case study on ``config.nranks`` simulated processors.

    ``result.extras[rank]`` holds each rank's :class:`RankHarvest` when
    instrumentation is on.  With ``config.fault_plan`` set the run is
    subjected to the plan's faults; ``config.resilience`` turns on the MPI
    and proxy recovery machinery; ``config.checkpoint`` periodically saves
    restartable state and ``config.resume`` continues a killed run from the
    newest complete checkpoint (bitwise identical to an uninterrupted run).
    """
    config = config or CaseStudyConfig()
    return run_scmd(
        config.nranks,
        lambda fw: compose_case_study(fw, config),
        go_instance="driver",
        network=config.network,
        seed=config.seed,
        extract=_harvest,
        timeout_s=config.timeout_s,
        fault_plan=config.fault_plan,
        resilience=config.resilience,
        observe=config.observe,
        sanitize=config.sanitize,
        backend=config.backend,
        collectives=config.collectives,
    )
