"""``python -m repro.harness [--fast]`` — regenerate EXPERIMENTS.md."""

import sys

from repro.harness.report import ReportScale, write_experiments_md

if __name__ == "__main__":
    fast = "--fast" in sys.argv
    print(write_experiments_md(scale=ReportScale.fast() if fast else None))
