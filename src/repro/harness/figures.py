"""One experiment per paper figure (see DESIGN.md Section 4).

Every function returns a result object with the raw data, derived
statistics the reproduction criteria are checked against, and a
``render()`` method producing the text analog of the figure/table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cca.scmd import MAIN_TIMER, ScmdResult
from repro.euler.efm import EFMFluxComponent, EFMKernel
from repro.euler.godunov import GodunovFluxComponent, GodunovKernel
from repro.euler.states import StatesKernel
from repro.harness.casestudy import (FLUX_PROXY, MESH_PROXY, STATES_PROXY,
                                     CaseStudyConfig, run_case_study)
from repro.harness.sweeps import SweepSamples, measure_mode_sweep
from repro.models.performance import PerformanceModel, bin_by_q, build_model
from repro.perf.dualgraph import build_dual, dual_to_composite
from repro.perf.optimizer import AssemblyOptimizer, OptimizationResult
from repro.tau.summary import function_summary, merge_snapshots, summary_rows
from repro.util.tabular import format_table


# --------------------------------------------------------------------- #
# Figure 3: FUNCTION SUMMARY profile
# --------------------------------------------------------------------- #
@dataclass
class Fig3Result:
    """Profile table + the headline fractions the paper reports."""

    summary_text: str
    rows: list[tuple[float, float, float, float, float, str]]
    mpi_fraction: float
    proxy_fractions: dict[str, float]
    scmd: ScmdResult

    def render(self) -> str:
        lines = [self.summary_text, ""]
        lines.append(f"fraction of runtime in MPI routines: {self.mpi_fraction:.1%}")
        for name, frac in sorted(self.proxy_fractions.items()):
            lines.append(f"fraction in {name}: {frac:.1%}")
        return "\n".join(lines)


def fig3_profile(config: CaseStudyConfig | None = None) -> Fig3Result:
    """Instrumented case-study run -> mean FUNCTION SUMMARY (Figure 3)."""
    config = config or CaseStudyConfig()
    scmd = run_case_study(config)
    merged = merge_snapshots(scmd.timer_snapshots)
    rows = summary_rows(merged, nranks=scmd.nranks, total_name=MAIN_TIMER)
    total_us = merged[MAIN_TIMER].inclusive_us
    mpi_us = sum(t.inclusive_us for t in merged.values() if t.group == "MPI")
    proxy_fracs = {
        t.name: t.inclusive_us / total_us
        for t in merged.values()
        if t.group == "proxied"
    }
    return Fig3Result(
        summary_text=function_summary(scmd.timer_snapshots, total_name=MAIN_TIMER),
        rows=rows,
        mpi_fraction=mpi_us / total_us if total_us > 0 else 0.0,
        proxy_fractions=proxy_fracs,
        scmd=scmd,
    )


# --------------------------------------------------------------------- #
# Figures 4-5: States dual-mode timings and their ratio
# --------------------------------------------------------------------- #
@dataclass
class Fig4Result:
    samples: SweepSamples
    nprocs: int
    batch: bool = False

    def mode_means(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """mode -> (Q bins, mean time) pooled over procs."""
        out = {}
        for mode in ("x", "y"):
            q, t = self.samples.select(mode=mode)
            qb, mean, _std, _n = bin_by_q(q, t)
            out[mode] = (qb, mean)
        return out

    def render(self) -> str:
        mm = self.mode_means()
        qx, tx = mm["x"]
        qy, ty = mm["y"]
        rows = [(int(q), f"{a:.1f}", f"{b:.1f}") for q, a, b in zip(qx, tx, ty)]
        sweep = "batched sweep" if self.batch else "line sweep"
        return format_table(
            ["Q", "sequential (X) us", "strided (Y) us"],
            rows,
            title=f"Figure 4: States execution time by access mode ({sweep})",
        )


def _states_invoke(nghost: int = 2, batch: bool = True) -> Callable:
    kernel = StatesKernel(nghost=nghost, batch=batch)
    return kernel.compute


def fig4_states_modes(
    qs: Sequence[int] | None = None, nprocs: int = 3, repeats: int = 3,
    seed: int = 0, batch: bool = False,
) -> Fig4Result:
    """Time States in sequential/strided modes over a Q sweep (Figure 4).

    The default ``batch=False`` measures the historical line-at-a-time
    sweep whose sequential/strided asymmetry the paper's Figures 4-5
    characterize.  ``batch=True`` measures the production batched path:
    its cache-blocked tiles shrink the strided penalty, so the asymmetry
    survives but is smaller — the benchmark records both.
    """
    samples = measure_mode_sweep(
        _states_invoke(batch=batch), qs, nprocs=nprocs, repeats=repeats, seed=seed
    )
    return Fig4Result(samples=samples, nprocs=nprocs, batch=batch)


@dataclass
class Fig5Result:
    q: np.ndarray
    ratio: np.ndarray

    def render(self) -> str:
        rows = [(int(q), f"{r:.2f}") for q, r in zip(self.q, self.ratio)]
        return format_table(
            ["Q", "strided/sequential"],
            rows,
            title="Figure 5: ratio of strided to sequential States timings",
        )


def fig5_stride_ratio(fig4: Fig4Result | None = None, **kwargs) -> Fig5Result:
    """Strided/sequential ratio vs Q (Figure 5; reuses Figure 4's sweep)."""
    fig4 = fig4 or fig4_states_modes(**kwargs)
    mm = fig4.mode_means()
    qx, tx = mm["x"]
    qy, ty = mm["y"]
    if not np.array_equal(qx, qy):
        raise RuntimeError("mode sweeps produced different Q bins")
    return Fig5Result(q=qx, ratio=ty / tx)


# --------------------------------------------------------------------- #
# Figures 6-8 / Eqs. 1-2: component performance models
# --------------------------------------------------------------------- #
@dataclass
class ModelFigResult:
    """Mean+std vs Q with fitted models, for one component (Figs 6/7/8)."""

    name: str
    samples: SweepSamples
    q_bins: np.ndarray
    mean_us: np.ndarray
    std_us: np.ndarray
    model: PerformanceModel

    def render(self) -> str:
        rows = [
            (int(q), f"{m:.1f}", f"{s:.1f}",
             f"{float(self.model.predict_mean(q)):.1f}")
            for q, m, s in zip(self.q_bins, self.mean_us, self.std_us)
        ]
        table = format_table(
            ["Q", "mean us", "std us", "model mean us"],
            rows,
            title=f"{self.name}: execution time vs array size",
        )
        eq1 = f"Eq.1 analog (mean): {self.model.mean_fit.formula}"
        eq2 = (
            f"Eq.2 analog (std):  {self.model.std_fit.formula}"
            if self.model.std_fit is not None
            else "Eq.2 analog (std):  (no sigma model)"
        )
        return "\n".join([table, eq1, eq2])


def _model_fig(
    name: str,
    invoke: Callable,
    qs: Sequence[int] | None,
    nprocs: int,
    repeats: int,
    seed: int,
    mean_families: tuple[str, ...],
    quality: float = 1.0,
) -> ModelFigResult:
    samples = measure_mode_sweep(invoke, qs, nprocs=nprocs, repeats=repeats, seed=seed)
    q, t = samples.mode_averaged()
    qb, mean, std, _ = bin_by_q(q, t, min_count=2)
    model = build_model(name, q, t, mean_families=mean_families, quality=quality)
    return ModelFigResult(name=name, samples=samples, q_bins=qb,
                          mean_us=mean, std_us=std, model=model)


def fig6_states_model(qs=None, nprocs: int = 3, repeats: int = 3,
                      seed: int = 0) -> ModelFigResult:
    """States mean/std vs Q with a power-law mean fit (Figure 6, Eq. 1)."""
    return _model_fig("States", _states_invoke(), qs, nprocs, repeats, seed,
                      mean_families=("power", "linear"))


def _flux_invoke(flux_kernel, nghost: int = 2) -> Callable:
    """Flux-only timing: interface states are precomputed outside the timer."""
    states = StatesKernel(nghost=nghost)
    cache: dict[tuple[int, str], tuple[np.ndarray, np.ndarray]] = {}

    def invoke(U: np.ndarray, mode: str):
        key = (id(U), mode)
        if key not in cache:
            if len(cache) > 64:
                cache.clear()
            cache[key] = states.compute(U, mode)
        wl, wr = cache[key]
        return flux_kernel.compute(wl, wr, mode)

    return invoke


def fig7_godunov_model(qs=None, nprocs: int = 3, repeats: int = 3,
                       seed: int = 0) -> ModelFigResult:
    """GodunovFlux mean/std vs Q with a linear mean fit (Figure 7, Eq. 1)."""
    return _model_fig(
        "GodunovFlux", _flux_invoke(GodunovKernel()), qs, nprocs, repeats, seed,
        mean_families=("linear", "power"), quality=GodunovFluxComponent.QUALITY,
    )


def fig8_efm_model(qs=None, nprocs: int = 3, repeats: int = 3,
                   seed: int = 0) -> ModelFigResult:
    """EFMFlux mean/std vs Q with a linear mean fit (Figure 8, Eq. 1)."""
    return _model_fig(
        "EFMFlux", _flux_invoke(EFMKernel()), qs, nprocs, repeats, seed,
        mean_families=("linear", "power"), quality=EFMFluxComponent.QUALITY,
    )


# --------------------------------------------------------------------- #
# Figure 9: per-level ghost-update communication times
# --------------------------------------------------------------------- #
@dataclass
class Fig9Result:
    """(rank, level, decomposition generation, mpi_us) samples."""

    samples: list[tuple[int, int, int, float]]
    nranks: int
    scmd: ScmdResult

    def cluster_stats(self) -> dict[tuple[int, int], tuple[float, float, int]]:
        """(level, decomp) -> (mean_us, std_us, n) pooled over ranks."""
        groups: dict[tuple[int, int], list[float]] = {}
        for _rank, level, decomp, t in self.samples:
            groups.setdefault((level, decomp), []).append(t)
        return {
            k: (float(np.mean(v)), float(np.std(v)), len(v))
            for k, v in groups.items()
        }

    def level_samples(self, level: int, rank: int | None = None) -> list[float]:
        return [
            t for r, lev, _d, t in self.samples
            if lev == level and (rank is None or r == rank)
        ]

    def render(self) -> str:
        rows = [
            (lev, dec, f"{m:.1f}", f"{s:.1f}", n)
            for (lev, dec), (m, s, n) in sorted(self.cluster_stats().items())
        ]
        return format_table(
            ["level", "decomposition", "mean us", "std us", "n"],
            rows,
            title="Figure 9: ghost-cell update message-passing time clusters",
        )


def fig9_comm_levels(config: CaseStudyConfig | None = None) -> Fig9Result:
    """Per-level ghost-update MPI times with one mid-run regrid (Figure 9)."""
    config = config or CaseStudyConfig()
    if not config.instrument:
        raise ValueError("Figure 9 requires an instrumented run")
    scmd = run_case_study(config)
    samples: list[tuple[int, int, int, float]] = []
    for rank, harvest in enumerate(scmd.extras):
        rec = harvest.records.get((MESH_PROXY, "ghost_update"))
        if rec is None:
            raise RuntimeError("no AMRMesh ghost_update record; proxy missing?")
        for inv in rec.invocations:
            samples.append(
                (rank, int(inv.params["level"]), int(inv.params["decomp"]), inv.mpi_us)
            )
    return Fig9Result(samples=samples, nranks=scmd.nranks, scmd=scmd)


# --------------------------------------------------------------------- #
# Figure 10: the application dual and assembly optimization
# --------------------------------------------------------------------- #
@dataclass
class Fig10Result:
    dual_nodes: dict[str, dict]
    dual_edges: list[tuple[str, str, int]]
    optimization: OptimizationResult
    qos_optimization: OptimizationResult
    flux_models: dict[str, PerformanceModel]

    def render(self) -> str:
        lines = ["Figure 10: application dual (vertex weights in us)"]
        for name, data in sorted(self.dual_nodes.items()):
            lines.append(
                f"  {name}: compute={data.get('compute_us', 0.0):.1f} "
                f"comm={data.get('comm_us', 0.0):.1f} "
                f"invocations={data.get('invocations', 0)}"
            )
        for u, v, n in sorted(self.dual_edges):
            lines.append(f"  edge {u} -> {v}: {n} invocations")
        lines.append("")
        lines.append("pure-performance selection:")
        lines.append(self.optimization.summary())
        lines.append("QoS-weighted selection (accuracy matters):")
        lines.append(self.qos_optimization.summary())
        return "\n".join(lines)


def qos_flip_weight(plain: OptimizationResult) -> float | None:
    """Smallest QoS weight at which the cost winner stops winning.

    Solves ``cost_b (1 + w (1-q_b)) = cost_o (1 + w (1-q_o))`` for each
    runner-up o; returns the smallest positive solution, or None when no
    weight can flip the choice (the winner already has maximal quality).
    """
    best = plain.ranked[0]
    candidates = []
    for other in plain.ranked[1:]:
        denom = best.cost_us * (1.0 - best.quality) - other.cost_us * (1.0 - other.quality)
        if denom > 0:
            w = (other.cost_us - best.cost_us) / denom
            if w > 0:
                candidates.append(w)
    return min(candidates) if candidates else None


def fig10_dual_graph(
    config_efm: CaseStudyConfig | None = None,
    config_godunov: CaseStudyConfig | None = None,
    qos_weight: float | None = None,
) -> Fig10Result:
    """Build the dual from recorded runs; optimize the flux slot.

    Runs the case study once per flux implementation, fits each
    implementation's performance model from its Mastermind records, builds
    the EFM run's dual/composite with the flux node as a free slot, and
    selects implementations with and without a QoS weight — EFMFlux wins on
    cost, GodunovFlux under a sufficient accuracy weight (the paper's
    Section 5 trade-off).
    """
    config_efm = config_efm or CaseStudyConfig(flux="efm")
    config_godunov = config_godunov or CaseStudyConfig(flux="godunov")
    if config_efm.flux != "efm" or config_godunov.flux != "godunov":
        raise ValueError("configs must select efm and godunov respectively")

    run_e = run_case_study(config_efm)
    run_g = run_case_study(config_godunov)
    mm_e = run_e.extras[0].mastermind
    mm_g = run_g.extras[0].mastermind

    model_states = mm_e.build_performance_model(
        STATES_PROXY, "compute", mean_families=("power", "linear"), min_bin_count=2
    )
    model_efm = mm_e.build_performance_model(
        FLUX_PROXY, "compute", mean_families=("linear", "power"), min_bin_count=2
    )
    model_efm = PerformanceModel(
        name="EFMFlux", mean_fit=model_efm.mean_fit, std_fit=model_efm.std_fit,
        quality=EFMFluxComponent.QUALITY,
    )
    model_god = mm_g.build_performance_model(
        FLUX_PROXY, "compute", mean_families=("linear", "power"), min_bin_count=2
    )
    model_god = PerformanceModel(
        name="GodunovFlux", mean_fit=model_god.mean_fit, std_fit=model_god.std_fit,
        quality=GodunovFluxComponent.QUALITY,
    )

    dual = build_dual(
        mm_e, models={f"{STATES_PROXY}::compute()": model_states}
    )
    composite = dual_to_composite(
        mm_e,
        slots={FLUX_PROXY: "flux"},
        models={f"{STATES_PROXY}::compute()": model_states},
    )
    optimizer = AssemblyOptimizer(composite, {"flux": [model_efm, model_god]})
    plain = optimizer.optimize(qos_weight=0.0)
    if qos_weight is None:
        # Just past the flip point, so the accuracy-preferring choice wins.
        flip = qos_flip_weight(plain)
        qos_weight = 1.25 * flip if flip is not None else 0.0
    qos = optimizer.optimize(qos_weight=qos_weight)
    return Fig10Result(
        dual_nodes={n: dict(dual.nodes[n]) for n in dual.nodes},
        dual_edges=[(u, v, d["count"]) for u, v, d in dual.edges(data=True)],
        optimization=plain,
        qos_optimization=qos,
        flux_models={"efm": model_efm, "godunov": model_god},
    )
