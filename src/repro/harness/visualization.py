"""Field visualization: ASCII/CSV renderings of hierarchy data (Figure 1).

The paper's Figure 1 plots the density field with the AMR patch outlines.
In a text-only environment we render the coarse field as ASCII shades with
a refinement overlay, and export exact data as CSV for external plotting.
"""

from __future__ import annotations

import numpy as np

from repro.amr.hierarchy import GridHierarchy
from repro.util.validation import check_positive

#: density shades from low to high
SHADES = " .:-=+*#%@"
#: marker drawn where a finer level covers the cell
REFINED_MARK = "&"


def assemble_level_field(hierarchy: GridHierarchy, field: str,
                         level: int = 0) -> np.ndarray:
    """Stitch a level's local patch interiors into one global array.

    Cells not covered by a locally-owned patch are NaN (distributed runs
    own only part of the level; serial runs produce a complete field).
    """
    lbox = hierarchy.level_box(level)
    out = np.full(lbox.shape, np.nan)
    for p in hierarchy.levels[level]:
        if hierarchy.is_local(p) and field in p.fields:
            out[p.box.slices(lbox)] = p.interior(field)
    return out


def refinement_mask(hierarchy: GridHierarchy, level: int = 0) -> np.ndarray:
    """Boolean mask over a level: True where level+1 patches cover it."""
    lbox = hierarchy.level_box(level)
    mask = np.zeros(lbox.shape, dtype=bool)
    if level + 1 >= hierarchy.max_levels:
        return mask
    for p in hierarchy.levels[level + 1]:
        cb = p.box.coarsen(hierarchy.r)
        ov = cb.intersection(lbox)
        if ov is not None:
            mask[ov.slices(lbox)] = True
    return mask


def ascii_field(
    hierarchy: GridHierarchy,
    field: str = "rho",
    width: int = 64,
    height: int = 28,
    show_refinement: bool = True,
) -> str:
    """ASCII rendering of a level-0 field with the refinement overlay."""
    check_positive("width", width)
    check_positive("height", height)
    data = assemble_level_field(hierarchy, field, 0)
    refined = refinement_mask(hierarchy, 0) if show_refinement else \
        np.zeros_like(data, dtype=bool)
    finite = data[np.isfinite(data)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = (hi - lo) or 1.0
    ni, nj = data.shape
    rows = []
    for i in np.linspace(0, ni - 1, min(height, ni)).astype(int):
        row = []
        for j in np.linspace(0, nj - 1, min(width, nj)).astype(int):
            if refined[i, j]:
                row.append(REFINED_MARK)
            elif not np.isfinite(data[i, j]):
                row.append("?")
            else:
                k = int((data[i, j] - lo) / span * (len(SHADES) - 1))
                row.append(SHADES[k])
        rows.append("".join(row))
    return "\n".join(rows)


def wiring_to_text(g) -> str:
    """Text rendering of a framework wiring diagram (the Figure-2 analog).

    One line per component with its class, then one line per port
    connection, in deterministic order.
    """
    lines = ["components:"]
    for node in sorted(g.nodes):
        data = g.nodes[node]
        func = data.get("functionality")
        suffix = f" (functionality: {func})" if func else ""
        lines.append(f"  {node}: {data.get('component_class', '?')}{suffix}")
    lines.append("connections (user --port--> provider):")
    edges = sorted(g.edges(data=True), key=lambda e: (e[0], e[1], e[2].get("port", "")))
    for user, provider, data in edges:
        lines.append(f"  {user} --{data.get('port', '?')}--> {provider}")
    if len(edges) == 0:
        lines.append("  (none)")
    return "\n".join(lines)


def field_to_csv(hierarchy: GridHierarchy, field: str, path: str,
                 level: int = 0) -> None:
    """Write one level's field as ``x,y,value`` CSV (local patches only)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("x,y,value\n")
        for p in hierarchy.levels[level]:
            if not (hierarchy.is_local(p) and field in p.fields):
                continue
            X, Y = hierarchy.cell_centers(p)
            vals = p.interior(field)
            for x, y, v in zip(X.ravel(), Y.ravel(), vals.ravel()):
                fh.write(f"{x:.6g},{y:.6g},{v:.6g}\n")
