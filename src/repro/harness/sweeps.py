"""Workload generation and kernel timing sweeps (Figures 4-8).

The paper times States/GodunovFlux/EFMFlux per invocation against the
input array size Q ("the actual number of elements in the array. The
elements are double precision numbers"), in both the sequential (X) and
strided (Y) access modes, on 3 processors.

:func:`measure_mode_sweep` reproduces that data collection: for each Q a
square ghosted patch stack with shock-like content is built, the component
is invoked through its public port in both modes, and wall times are
recorded per (Q, mode, proc).  "Procs" are measured sequentially — the
timing variability within a proc is the host's genuine cache/noise
behaviour, which is what the paper's models capture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.euler.eos import GAMMA_DEFAULT, conserved_from_primitive
from repro.util.rng import make_rng
from repro.util.timebase import now_us
from repro.util.validation import check_positive


def q_grid(n_points: int = 10, qmin: int = 1_000, qmax: int = 450_000) -> list[int]:
    """Geometric grid of array sizes spanning the paper's Q range.

    Sizes are snapped to perfect squares so patches are square (any aspect
    ratio works; squares keep the two sweep directions comparable).
    """
    check_positive("n_points", n_points)
    if not (0 < qmin < qmax):
        raise ValueError(f"need 0 < qmin < qmax, got {qmin}, {qmax}")
    sides = np.unique(
        np.round(np.geomspace(math.sqrt(qmin), math.sqrt(qmax), n_points)).astype(int)
    )
    return [int(s * s) for s in sides]


def synthetic_patch_stack(
    q: int,
    nghost: int = 2,
    seed: int | np.random.Generator | None = 0,
    gamma: float = GAMMA_DEFAULT,
) -> np.ndarray:
    """A ghosted conserved stack ``(4, n+2g, n+2g)`` with ``n*n ~ q``.

    Contents mix a contact, a shock-like pressure jump and smooth noise so
    the Godunov solver's Newton iteration count varies with the data, as it
    does on real patches.
    """
    check_positive("q", q)
    rng = make_rng(seed)
    n = max(4, int(round(math.sqrt(q))))
    m = n + 2 * nghost
    x = np.linspace(0.0, 1.0, m)
    X, Y = np.meshgrid(x, x, indexing="ij")
    rho = np.where(X < 0.5, 1.0, 3.0) + 0.05 * rng.standard_normal((m, m))
    p = np.where(Y < 0.5, 1.0, 2.5) + 0.05 * rng.standard_normal((m, m))
    u = 0.3 * np.sin(2 * np.pi * X) + 0.02 * rng.standard_normal((m, m))
    v = 0.2 * np.cos(2 * np.pi * Y) + 0.02 * rng.standard_normal((m, m))
    rho = np.maximum(rho, 0.1)
    p = np.maximum(p, 0.1)
    return conserved_from_primitive(np.stack([rho, u, v, p]), gamma)


@dataclass
class SweepSamples:
    """Flat sample table from a mode sweep."""

    q: list[int] = field(default_factory=list)
    mode: list[str] = field(default_factory=list)
    proc: list[int] = field(default_factory=list)
    time_us: list[float] = field(default_factory=list)

    def add(self, q: int, mode: str, proc: int, time_us: float) -> None:
        self.q.append(q)
        self.mode.append(mode)
        self.proc.append(proc)
        self.time_us.append(time_us)

    def __len__(self) -> int:
        return len(self.q)

    def select(self, mode: str | None = None, proc: int | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
        """(Q, time_us) arrays filtered by mode and/or proc."""
        qs, ts = [], []
        for i in range(len(self.q)):
            if mode is not None and self.mode[i] != mode:
                continue
            if proc is not None and self.proc[i] != proc:
                continue
            qs.append(self.q[i])
            ts.append(self.time_us[i])
        return np.asarray(qs, dtype=float), np.asarray(ts, dtype=float)

    def mode_averaged(self) -> tuple[np.ndarray, np.ndarray]:
        """All samples pooled over modes and procs (the paper's averaging:
        'both the X- and Y-derivatives are calculated and the two modes ...
        are invoked in an alternating fashion. Thus, for performance
        modeling purposes, we consider an average')."""
        return self.select()


def time_call(fn: Callable[[], object]) -> float:
    """Wall-clock one call in microseconds."""
    t0 = now_us()
    fn()
    return now_us() - t0


def measure_mode_sweep(
    invoke: Callable[[np.ndarray, str], object],
    qs: Sequence[int] | None = None,
    *,
    nprocs: int = 3,
    repeats: int = 3,
    nghost: int = 2,
    seed: int = 0,
    warmup: bool = True,
) -> SweepSamples:
    """Time ``invoke(U, mode)`` over a Q sweep in both access modes.

    ``invoke`` is the component's public entry point — e.g.
    ``states.compute`` or a composed ``states+flux`` call — so proxies can
    be part of the measured path when the caller wires them in.
    """
    qs = list(qs) if qs is not None else q_grid()
    samples = SweepSamples()
    rng = make_rng(seed)
    if warmup:
        invoke(synthetic_patch_stack(qs[0], nghost, rng), "x")
    for proc in range(nprocs):
        for q in qs:
            U = synthetic_patch_stack(q, nghost, rng)
            for _ in range(repeats):
                for mode in ("x", "y"):
                    dt_us = time_call(lambda: invoke(U, mode))
                    samples.add(q, mode, proc, dt_us)
    return samples
