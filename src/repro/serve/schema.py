"""Typed request/response schemas for the model-serving API.

Every wire payload has a frozen dataclass here with a ``from_obj``
constructor that validates plain-JSON input (types, ranges, required
keys) and raises :class:`ValidationError` with a path-qualified message
— the HTTP layer maps that to a 400 whose body names the offending
field.  Responses carry ``to_obj`` so handlers never hand-build dicts.

The validators are deliberately hand-rolled: the service is stdlib-only
(no jsonschema dependency), and the schemas are small enough that
explicit checks read better than a meta-language.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = [
    "ValidationError", "PredictRequest", "Prediction", "PredictResponse",
    "BatchPredictRequest", "BatchPredictResponse", "SlotSpec",
    "OptimizeRequest", "AssemblyChoice", "OptimizeResponse", "ModelInfo",
]

#: refuse unbounded batch bodies before they reach the batching queue
MAX_BATCH_REQUESTS = 4096


class ValidationError(ValueError):
    """A request payload failed schema validation (HTTP 400)."""


def _require_mapping(obj: Any, where: str) -> Mapping[str, Any]:
    if not isinstance(obj, Mapping):
        raise ValidationError(f"{where}: expected a JSON object, "
                              f"got {type(obj).__name__}")
    return obj


def _get_str(obj: Mapping[str, Any], key: str, where: str) -> str:
    if key not in obj:
        raise ValidationError(f"{where}: missing required key {key!r}")
    v = obj[key]
    if not isinstance(v, str) or not v:
        raise ValidationError(f"{where}: {key!r} must be a non-empty string, "
                              f"got {v!r}")
    return v


def _get_opt_str(obj: Mapping[str, Any], key: str, where: str) -> str | None:
    v = obj.get(key)
    if v is None:
        return None
    if not isinstance(v, str) or not v:
        raise ValidationError(f"{where}: {key!r} must be a non-empty string "
                              f"or null, got {v!r}")
    return v


def _get_number(obj: Mapping[str, Any], key: str, where: str, *,
                default: float | None = None, positive: bool = False,
                minimum: float | None = None) -> float:
    if key not in obj:
        if default is not None:
            return default
        raise ValidationError(f"{where}: missing required key {key!r}")
    v = obj[key]
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        raise ValidationError(f"{where}: {key!r} must be a number, got {v!r}")
    v = float(v)
    if v != v or v in (float("inf"), float("-inf")):
        raise ValidationError(f"{where}: {key!r} must be finite, got {v!r}")
    if positive and v <= 0:
        raise ValidationError(f"{where}: {key!r} must be > 0, got {v!r}")
    if minimum is not None and v < minimum:
        raise ValidationError(f"{where}: {key!r} must be >= {minimum}, "
                              f"got {v!r}")
    return v


# --------------------------------------------------------------- predict
@dataclass(frozen=True)
class PredictRequest:
    """One cost query: expected cost of ``component`` at workload ``q``.

    ``mode`` selects a per-access-mode model (e.g. ``"strided"``); omit it
    to query a pooled (mode-averaged) model.
    """

    component: str
    q: float
    mode: str | None = None

    @classmethod
    def from_obj(cls, obj: Any, where: str = "predict request") -> "PredictRequest":
        m = _require_mapping(obj, where)
        return cls(
            component=_get_str(m, "component", where),
            q=_get_number(m, "q", where, positive=True),
            mode=_get_opt_str(m, "mode", where),
        )


@dataclass(frozen=True)
class Prediction:
    """One evaluated prediction (the unit shared by single and batch)."""

    component: str
    mode: str | None
    q: float            # requested workload
    q_bucket: float     # bucket representative the model was evaluated at
    mean_us: float
    std_us: float
    model: str          # implementation name that answered
    cached: bool

    def to_obj(self) -> dict[str, Any]:
        return {
            "component": self.component,
            "mode": self.mode,
            "q": self.q,
            "q_bucket": self.q_bucket,
            "mean_us": self.mean_us,
            "std_us": self.std_us,
            "model": self.model,
            "cached": self.cached,
        }


@dataclass(frozen=True)
class PredictResponse:
    prediction: Prediction
    model_version: str

    def to_obj(self) -> dict[str, Any]:
        return {"prediction": self.prediction.to_obj(),
                "model_version": self.model_version}


@dataclass(frozen=True)
class BatchPredictRequest:
    requests: tuple[PredictRequest, ...]

    @classmethod
    def from_obj(cls, obj: Any) -> "BatchPredictRequest":
        where = "batch predict request"
        m = _require_mapping(obj, where)
        raw = m.get("requests")
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ValidationError(f"{where}: 'requests' must be a JSON array")
        if not raw:
            raise ValidationError(f"{where}: 'requests' must be non-empty")
        if len(raw) > MAX_BATCH_REQUESTS:
            raise ValidationError(
                f"{where}: at most {MAX_BATCH_REQUESTS} requests per batch, "
                f"got {len(raw)}")
        return cls(tuple(
            PredictRequest.from_obj(r, f"{where}[{i}]")
            for i, r in enumerate(raw)))


@dataclass(frozen=True)
class BatchPredictResponse:
    predictions: tuple[Prediction, ...]
    model_version: str

    def to_obj(self) -> dict[str, Any]:
        return {"predictions": [p.to_obj() for p in self.predictions],
                "model_version": self.model_version}


# -------------------------------------------------------------- optimize
@dataclass(frozen=True)
class SlotSpec:
    """One free slot of the composite: the workload its node observed.

    Mirrors :class:`repro.models.composite.Workload` — ``q_values[i]`` was
    presented ``counts[i]`` times — plus the node's measured communication
    time, carried separately per the paper's dual-graph vertex weights.
    """

    slot: str
    q_values: tuple[float, ...]
    counts: tuple[int, ...]
    comm_us: float = 0.0

    @classmethod
    def from_obj(cls, obj: Any, where: str) -> "SlotSpec":
        m = _require_mapping(obj, where)
        slot = _get_str(m, "slot", where)
        raw_q = m.get("q_values")
        raw_c = m.get("counts")
        if not isinstance(raw_q, Sequence) or isinstance(raw_q, (str, bytes)) or not raw_q:
            raise ValidationError(f"{where}: 'q_values' must be a non-empty array")
        q_values = tuple(
            _get_number({"q": v}, "q", f"{where}.q_values[{i}]", positive=True)
            for i, v in enumerate(raw_q))
        if raw_c is None:
            counts = tuple(1 for _ in q_values)
        else:
            if (not isinstance(raw_c, Sequence) or isinstance(raw_c, (str, bytes))
                    or len(raw_c) != len(q_values)):
                raise ValidationError(
                    f"{where}: 'counts' must be an array matching 'q_values' "
                    f"({len(q_values)} entries)")
            counts = tuple(
                int(_get_number({"c": v}, "c", f"{where}.counts[{i}]", minimum=0))
                for i, v in enumerate(raw_c))
        return cls(slot=slot, q_values=q_values, counts=counts,
                   comm_us=_get_number(m, "comm_us", where, default=0.0,
                                       minimum=0.0))


@dataclass(frozen=True)
class OptimizeRequest:
    """Assembly recommendation over the repository's candidate models."""

    slots: tuple[SlotSpec, ...]
    qos_weight: float = 0.0
    min_quality: float | None = None
    top: int = 5

    @classmethod
    def from_obj(cls, obj: Any) -> "OptimizeRequest":
        where = "optimize request"
        m = _require_mapping(obj, where)
        raw = m.get("slots")
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)) or not raw:
            raise ValidationError(f"{where}: 'slots' must be a non-empty array")
        slots = tuple(SlotSpec.from_obj(s, f"{where}.slots[{i}]")
                      for i, s in enumerate(raw))
        names = [s.slot for s in slots]
        if len(set(names)) != len(names):
            raise ValidationError(f"{where}: duplicate slot names in {names}")
        min_q = m.get("min_quality")
        return cls(
            slots=slots,
            qos_weight=_get_number(m, "qos_weight", where, default=0.0,
                                   minimum=0.0),
            min_quality=None if min_q is None else
            _get_number(m, "min_quality", where, minimum=0.0),
            top=int(_get_number(m, "top", where, default=5.0, positive=True)),
        )


@dataclass(frozen=True)
class AssemblyChoice:
    """One ranked assembly: slot -> implementation name plus its score."""

    binding: Mapping[str, str]
    cost_us: float
    quality: float
    score: float

    def to_obj(self) -> dict[str, Any]:
        return {"binding": dict(self.binding), "cost_us": self.cost_us,
                "quality": self.quality, "score": self.score}


@dataclass(frozen=True)
class OptimizeResponse:
    best: AssemblyChoice
    ranked: tuple[AssemblyChoice, ...]
    search_space: int
    model_version: str

    def to_obj(self) -> dict[str, Any]:
        return {"best": self.best.to_obj(),
                "ranked": [r.to_obj() for r in self.ranked],
                "search_space": self.search_space,
                "model_version": self.model_version}


# ---------------------------------------------------------------- models
@dataclass(frozen=True)
class ModelInfo:
    """Catalog entry returned by ``GET /v1/models``."""

    component: str
    mode: str | None
    functionality: str
    family: str
    r2: float
    quality: float
    context: Mapping[str, Any] = field(default_factory=dict)

    def to_obj(self) -> dict[str, Any]:
        return {"component": self.component, "mode": self.mode,
                "functionality": self.functionality, "family": self.family,
                "r2": self.r2, "quality": self.quality,
                "context": dict(self.context)}
