"""Micro-batching: coalesce concurrent predictions into vectorized evals.

Prediction requests do not call the model directly; they enqueue a
pending item and await a future.  A dispatcher task drains the queue and
evaluates each ``(component, mode)`` group with **one** vectorized
``predict_mean``/``predict_std`` call over the group's bucketed Q values.
Under concurrency this turns N python-level model evaluations into one
NumPy call; an isolated request simply becomes a batch of one, flowing
through the *same* code path — which is what makes batched and single
predictions bitwise-identical (elementwise NumPy ops do not depend on
their neighbours in the array).

Back-pressure: the pending queue is bounded.  When it is full the
request is shed immediately with :class:`LoadShedError` (HTTP 503 +
``Retry-After``) instead of building an unbounded latency tail.

Each flush captures **one** model snapshot and stamps every result (and
cache entry) with that snapshot's version, so a hot-reload mid-flight
can never mix models within a batch or mislabel a response.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import PredictionCache, QBucketer
from repro.serve.schema import Prediction, PredictRequest
from repro.serve.store import ModelUnavailable, ServingModelStore, UnknownModel

__all__ = ["LoadShedError", "MicroBatcher"]

#: batch-size histogram buckets: exact small counts, then doublings
_BATCH_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class LoadShedError(RuntimeError):
    """The pending queue is full; the request was rejected unprocessed."""

    def __init__(self, queue_limit: int) -> None:
        self.queue_limit = queue_limit
        super().__init__(f"prediction queue full ({queue_limit} pending)")


@dataclass
class _Item:
    req: PredictRequest
    q_bucket: float
    future: "asyncio.Future[tuple[Prediction, str]]"


class MicroBatcher:
    """Bounded queue + dispatcher evaluating grouped predictions.

    ``start()`` must run inside the event loop that will issue
    ``predict`` calls; ``stop()`` drains nothing — pending futures are
    cancelled so shutdown is prompt and loud rather than slow and silent.
    """

    def __init__(self, store: ServingModelStore, cache: PredictionCache,
                 bucketer: QBucketer,
                 metrics: MetricsRegistry | None = None,
                 max_batch: int = 512, queue_limit: int = 2048) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.store = store
        self.cache = cache
        self.bucketer = bucketer
        self.metrics = metrics
        self.max_batch = max_batch
        self.queue_limit = queue_limit
        self._pending: list[_Item] = []
        self._wakeup = asyncio.Event()
        self._task: asyncio.Task | None = None

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a flush (healthz/live feed)."""
        return len(self._pending)

    # --------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch(), name="serve-batcher")

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for item in self._pending:
            if not item.future.done():
                item.future.cancel()
        self._pending.clear()

    # ------------------------------------------------------------- entry
    async def predict(self, req: PredictRequest) -> tuple[Prediction, str]:
        """Resolve one request; returns ``(prediction, model_version)``.

        Raises :class:`UnknownModel`, :class:`ModelUnavailable` or
        :class:`LoadShedError`.
        """
        q_bucket = self.bucketer.bucket(req.q)
        key = (self.store.snapshot.generation, req.component, req.mode,
               q_bucket)
        hit = self.cache.get(key)
        if hit is not None:
            pred, version = hit
            return (dataclasses.replace(pred, q=req.q, cached=True), version)
        if len(self._pending) >= self.queue_limit:
            if self.metrics is not None:
                self.metrics.counter("serve_shed_total",
                                     "requests rejected by load shedding").inc()
            raise LoadShedError(self.queue_limit)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append(_Item(req=req, q_bucket=q_bucket, future=future))
        if self.metrics is not None:
            self.metrics.gauge("serve_queue_depth",
                               "pending prediction requests").set(
                                   len(self._pending))
        self._wakeup.set()
        return await future

    # -------------------------------------------------------- dispatcher
    async def _dispatch(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            # Yield once so concurrently-arriving requests join this flush:
            # the awaiting handlers get scheduled before the drain below.
            await asyncio.sleep(0)
            while self._pending:
                batch = self._pending[:self.max_batch]
                del self._pending[:len(batch)]
                self._flush(batch)

    def _flush(self, batch: list[_Item]) -> None:
        snapshot = self.store.snapshot
        if self.metrics is not None:
            self.metrics.histogram("serve_batch_size",
                                   "coalesced requests per flush",
                                   bounds=_BATCH_BOUNDS).observe(len(batch))
        groups: dict[tuple[str, str | None], list[_Item]] = {}
        for item in batch:
            groups.setdefault((item.req.component, item.req.mode),
                              []).append(item)
        for (component, mode), items in groups.items():
            try:
                model = snapshot.lookup(component, mode)
            except (UnknownModel, ModelUnavailable) as exc:
                for item in items:
                    if not item.future.done():
                        item.future.set_exception(exc)
                continue
            qs = np.asarray([item.q_bucket for item in items], dtype=float)
            means = np.atleast_1d(np.asarray(model.predict_mean(qs), dtype=float))
            stds = np.atleast_1d(np.asarray(model.predict_std(qs), dtype=float))
            if stds.shape != means.shape:
                stds = np.broadcast_to(stds, means.shape)
            for i, item in enumerate(items):
                pred = Prediction(
                    component=component, mode=mode, q=item.req.q,
                    q_bucket=item.q_bucket, mean_us=float(means[i]),
                    std_us=float(stds[i]), model=model.name, cached=False)
                key = (snapshot.generation, component, mode, item.q_bucket)
                self.cache.put(key, (pred, snapshot.version))
                if not item.future.done():
                    item.future.set_result((pred, snapshot.version))
