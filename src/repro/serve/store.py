"""Hot-reloadable view of a :class:`~repro.models.serialize.ModelRepository`.

The serving layer never reads model files per request.  Instead it holds
an immutable :class:`ModelSnapshot` — every model in the repository
directory, fully deserialized, plus a version stamp — and swaps the whole
snapshot atomically when the directory changes.  A request captures one
snapshot reference at dispatch and uses only that, so concurrent reloads
can never produce a torn read: the version stamp in a response always
names exactly the model set that computed it.

Change detection is a fingerprint over ``(filename, mtime_ns, size)`` of
the repository's ``*.json`` files; :meth:`ServingModelStore.refresh`
rebuilds off to the side and publishes with a single reference
assignment.  ``ModelRepository.store`` writes atomically (temp +
``os.replace``), so a reload can never observe a half-written file.

Per-mode models are recognized by the ``name[mode]`` convention that
:func:`repro.models.permode.build_modal_model` produces: an impl stored
as ``GodunovFlux[strided]`` serves ``(component="GodunovFlux",
mode="strided")``; a plain name serves the pooled (mode=None) query.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.models.performance import PerformanceModel
from repro.models.serialize import model_from_dict
from repro.serve.schema import ModelInfo

__all__ = ["ModelUnavailable", "UnknownModel", "ModelSnapshot",
           "ServingModelStore", "split_modal_name"]


class ModelUnavailable(RuntimeError):
    """No models are loaded (HTTP 503 + Retry-After)."""


class UnknownModel(KeyError):
    """The requested (component, mode) is not in the snapshot (HTTP 404)."""

    def __init__(self, component: str, mode: str | None,
                 available: list[str]) -> None:
        self.component = component
        self.mode = mode
        self.available = available
        detail = f"component={component!r} mode={mode!r}"
        if available:
            detail += f"; available: {', '.join(available)}"
        super().__init__(detail)


def split_modal_name(impl_name: str) -> tuple[str, str | None]:
    """``"X[m]"`` -> ``("X", "m")``; plain names -> ``(name, None)``."""
    if impl_name.endswith("]") and "[" in impl_name:
        base, _, mode = impl_name[:-1].partition("[")
        if base and mode:
            return base, mode
    return impl_name, None


@dataclass(frozen=True)
class _Entry:
    functionality: str
    model: PerformanceModel


@dataclass(frozen=True)
class ModelSnapshot:
    """An immutable, versioned model set.

    ``generation`` increments on every swap (cache-key component);
    ``version`` additionally carries a content hash so two distinct model
    sets can never share a stamp even across server restarts.
    """

    generation: int
    fingerprint: str
    by_key: Mapping[tuple[str, str | None], _Entry] = field(default_factory=dict)

    @property
    def version(self) -> str:
        return f"g{self.generation}-{self.fingerprint[:10]}"

    def __len__(self) -> int:
        return len(self.by_key)

    def lookup(self, component: str, mode: str | None) -> PerformanceModel:
        """Model for ``(component, mode)`` or :class:`UnknownModel`."""
        if not self.by_key:
            raise ModelUnavailable("no models loaded")
        entry = self.by_key.get((component, mode))
        if entry is None:
            available = sorted(
                c if m is None else f"{c}[{m}]"
                for c, m in self.by_key if c == component)
            raise UnknownModel(component, mode, available)
        return entry.model

    def candidates(self, functionality: str) -> list[PerformanceModel]:
        """All models stored under one functionality (optimizer input)."""
        return [e.model for (_c, _m), e in sorted(self.by_key.items())
                if e.functionality == functionality]

    def catalog(self) -> list[ModelInfo]:
        """Sorted catalog entries for ``GET /v1/models``."""
        out = []
        for (component, mode), entry in sorted(
                self.by_key.items(), key=lambda kv: (kv[0][0], kv[0][1] or "")):
            out.append(ModelInfo(
                component=component, mode=mode,
                functionality=entry.functionality,
                family=entry.model.mean_fit.family,
                r2=entry.model.mean_fit.r2,
                quality=entry.model.quality,
                context=dict(entry.model.context)))
        return out


def _fingerprint(directory: str) -> str:
    """Digest of the repository's file listing (names, mtimes, sizes)."""
    h = hashlib.sha256()
    try:
        names = sorted(os.listdir(directory))
    except FileNotFoundError:
        return "absent"
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            st = os.stat(path)
        except FileNotFoundError:
            continue  # deleted between listdir and stat; next poll catches it
        h.update(f"{name}:{st.st_mtime_ns}:{st.st_size};".encode())
    return h.hexdigest()


def _load_entries(directory: str) -> dict[tuple[str, str | None], _Entry]:
    entries: dict[tuple[str, str | None], _Entry] = {}
    try:
        names = sorted(os.listdir(directory))
    except FileNotFoundError:
        return entries
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as fh:
                payload: dict[str, Any] = json.load(fh)
            model = model_from_dict(payload["model"])
            functionality = str(payload.get("functionality", ""))
        except (OSError, ValueError, KeyError, TypeError):
            # A foreign or malformed file must not take serving down; the
            # rest of the repository still loads.  (Half-written files are
            # impossible: ModelRepository.store is atomic.)
            continue
        key = split_modal_name(model.name)
        entries[key] = _Entry(functionality=functionality, model=model)
    return entries


class ServingModelStore:
    """Directory watcher publishing atomic :class:`ModelSnapshot` swaps."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.reloads = 0
        self._snapshot = ModelSnapshot(generation=0, fingerprint="unloaded")
        self.refresh()

    @property
    def snapshot(self) -> ModelSnapshot:
        """The current snapshot (capture once per request, then use only it)."""
        return self._snapshot

    def refresh(self) -> bool:
        """Reload if the directory changed; returns True when swapped.

        The new snapshot is fully constructed before the single reference
        assignment below — readers see either the complete old set or the
        complete new one, never a mixture.
        """
        fp = _fingerprint(self.directory)
        if fp == self._snapshot.fingerprint:
            return False
        entries = _load_entries(self.directory)
        new = ModelSnapshot(generation=self._snapshot.generation + 1,
                            fingerprint=fp, by_key=entries)
        self._snapshot = new
        self.reloads += 1
        return True

    async def watch(self, interval_s: float = 0.5,
                    stop: asyncio.Event | None = None) -> None:
        """Poll the directory until ``stop`` is set (or forever)."""
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        while stop is None or not stop.is_set():
            self.refresh()
            try:
                if stop is None:
                    await asyncio.sleep(interval_s)
                else:
                    await asyncio.wait_for(stop.wait(), timeout=interval_s)
            except asyncio.TimeoutError:
                continue
