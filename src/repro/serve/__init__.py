"""Performance-model serving: the paper's models as an online service.

The end goal of the paper's measurement infrastructure is that Mastermind
records become predictive cost models (Eq. 1/2) that guide component-
assembly optimization.  This package productionizes that step: an
asyncio HTTP/JSON service (stdlib-only) that answers

* single and batched cost predictions ("expected cost of GodunovFlux at
  Q=512 in strided mode") from a :class:`~repro.models.serialize.ModelRepository`,
* assembly recommendations via the existing composite-model optimizer,
* live metrics from the observability registry (Prometheus + JSON),

with micro-batched vectorized evaluation, an LRU+TTL prediction cache
keyed by ``(component, mode, Q-bucket)``, hot-reload of models on
repository changes (atomic snapshot swap, version stamp in every
response), bounded queues with load shedding, and a deterministic
seeded load generator that gates p50/p99 latency and throughput in the
``BENCH_serving.json`` trajectory.
"""

from repro.serve.batching import LoadShedError, MicroBatcher
from repro.serve.cache import PredictionCache, QBucketer
from repro.serve.schema import (AssemblyChoice, BatchPredictRequest,
                                BatchPredictResponse, ModelInfo,
                                OptimizeRequest, OptimizeResponse,
                                Prediction, PredictRequest, PredictResponse,
                                SlotSpec, ValidationError)
from repro.serve.server import ModelServer, Response, ServeConfig
from repro.serve.store import (ModelSnapshot, ModelUnavailable,
                               ServingModelStore, UnknownModel)

_LOADGEN_NAMES = ("LoadMix", "LoadStats", "run_load", "generate_requests")


def __getattr__(name: str):
    # Lazy so `python -m repro.serve.loadgen` does not re-execute a module
    # the package already imported (runpy's double-import RuntimeWarning).
    if name in _LOADGEN_NAMES:
        from repro.serve import loadgen
        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AssemblyChoice",
    "BatchPredictRequest",
    "BatchPredictResponse",
    "LoadMix",
    "LoadShedError",
    "LoadStats",
    "MicroBatcher",
    "ModelInfo",
    "ModelServer",
    "ModelSnapshot",
    "ModelUnavailable",
    "OptimizeRequest",
    "OptimizeResponse",
    "Prediction",
    "PredictRequest",
    "PredictResponse",
    "PredictionCache",
    "QBucketer",
    "Response",
    "ServeConfig",
    "ServingModelStore",
    "SlotSpec",
    "UnknownModel",
    "ValidationError",
    "run_load",
]
