"""Deterministic load generator for the serving stack.

Drives thousands of requests through :meth:`ModelServer.handle`
**in-process** — no sockets — so the measured p50/p99 latency and
throughput are the service's own cost (routing, validation, batching,
cache, model math), which is what the ``BENCH_serving.json`` trajectory
gates on.

Determinism: the request stream is a pure function of the seed.  Each
concurrent worker draws from :func:`repro.util.rng.rng_from_key`
``(seed, worker_id)``, so the set of issued requests is identical run to
run regardless of asyncio interleaving (only the arrival order varies,
as it would under real traffic).

CLI::

    python -m repro.serve.loadgen --models runs/models \
        --requests 5000 --concurrency 64 --seed 0 [--json out.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
from dataclasses import dataclass

import numpy as np

from repro.serve.schema import ValidationError
from repro.serve.server import ModelServer, ServeConfig
from repro.util.rng import rng_from_key
from repro.util.timebase import now_us

__all__ = ["LoadMix", "LoadStats", "run_load", "generate_requests", "main"]


@dataclass(frozen=True)
class LoadMix:
    """Traffic composition (weights; normalized internally)."""

    predict: float = 0.80
    batch: float = 0.15
    models: float = 0.04
    metrics: float = 0.01
    #: requests per /v1/predict/batch body
    batch_size: int = 16
    q_lo: float = 1e3
    q_hi: float = 3e5

    def weights(self) -> np.ndarray:
        w = np.asarray([self.predict, self.batch, self.models, self.metrics],
                       dtype=float)
        if w.sum() <= 0 or (w < 0).any():
            raise ValueError(f"load mix weights must be >= 0 and sum > 0: {w}")
        return w / w.sum()


@dataclass(frozen=True)
class LoadStats:
    """Aggregate results of one load run."""

    requests: int
    errors: int
    duration_us: float
    p50_us: float
    p99_us: float
    mean_us: float
    latencies_us: tuple[float, ...]
    status_counts: dict[int, int]

    @property
    def throughput_rps(self) -> float:
        return self.requests / (self.duration_us / 1e6) if self.duration_us else 0.0

    def format(self) -> str:
        statuses = ", ".join(f"{s}: {n}" for s, n in
                             sorted(self.status_counts.items()))
        return "\n".join([
            f"requests:    {self.requests} ({self.errors} errors)",
            f"duration:    {self.duration_us / 1e6:.3f} s",
            f"throughput:  {self.throughput_rps:,.0f} req/s",
            f"latency p50: {self.p50_us:,.1f} us",
            f"latency p99: {self.p99_us:,.1f} us",
            f"latency mean:{self.mean_us:,.1f} us",
            f"statuses:    {statuses}",
        ])


def generate_requests(seed: int, worker: int, n: int, components: list[str],
                      modes: dict[str, list[str | None]],
                      mix: LoadMix) -> list[tuple[str, str, bytes]]:
    """The worker's deterministic request stream: (method, path, body)."""
    if not components:
        raise ValueError("need at least one component to generate load")
    rng = rng_from_key(seed, worker)
    weights = mix.weights()
    kinds = ("predict", "batch", "models", "metrics")
    out: list[tuple[str, str, bytes]] = []

    def one_query() -> dict:
        comp = components[int(rng.integers(len(components)))]
        mode = modes[comp][int(rng.integers(len(modes[comp])))]
        q = float(np.exp(rng.uniform(np.log(mix.q_lo), np.log(mix.q_hi))))
        body = {"component": comp, "q": q}
        if mode is not None:
            body["mode"] = mode
        return body

    for _ in range(n):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        if kind == "predict":
            out.append(("POST", "/v1/predict",
                        json.dumps(one_query()).encode()))
        elif kind == "batch":
            reqs = [one_query() for _ in range(mix.batch_size)]
            out.append(("POST", "/v1/predict/batch",
                        json.dumps({"requests": reqs}).encode()))
        elif kind == "models":
            out.append(("GET", "/v1/models", b""))
        else:
            out.append(("GET", "/metrics", b""))
    return out


async def run_load(server: ModelServer, *, total: int = 2000,
                   concurrency: int = 32, seed: int = 0,
                   mix: LoadMix | None = None) -> LoadStats:
    """Issue ``total`` requests through ``server.handle`` and measure.

    ``concurrency`` workers each run their slice of the stream
    back-to-back (closed-loop), which is what exercises the micro-batcher:
    at any instant up to ``concurrency`` predictions are pending and get
    coalesced into vectorized evaluations.
    """
    if total < 1 or concurrency < 1:
        raise ValueError(f"need total >= 1 and concurrency >= 1, "
                         f"got {total}, {concurrency}")
    mix = mix or LoadMix()
    catalog = server.store.snapshot.catalog()
    components = sorted({m.component for m in catalog})
    modes: dict[str, list[str | None]] = {}
    for m in catalog:
        modes.setdefault(m.component, []).append(m.mode)

    per = [total // concurrency + (1 if w < total % concurrency else 0)
           for w in range(concurrency)]
    # Generate every worker's stream before the clock starts: measured
    # latency is the service's, not the generator's.
    streams = [generate_requests(seed, w, per[w], components, modes, mix)
               for w in range(concurrency)]
    latencies: list[float] = []
    status_counts: dict[int, int] = {}
    errors = 0

    async def worker(wid: int) -> None:
        nonlocal errors
        for method, path, body in streams[wid]:
            t0 = now_us()
            resp = await server.handle(method, path, body)
            latencies.append(now_us() - t0)
            status_counts[resp.status] = status_counts.get(resp.status, 0) + 1
            if resp.status >= 400:
                errors += 1

    t_start = now_us()
    await asyncio.gather(*(worker(w) for w in range(concurrency)))
    duration = now_us() - t_start

    lat = np.asarray(latencies, dtype=float)
    return LoadStats(
        requests=int(lat.size),
        errors=errors,
        duration_us=float(duration),
        p50_us=float(np.percentile(lat, 50)),
        p99_us=float(np.percentile(lat, 99)),
        mean_us=float(lat.mean()),
        latencies_us=tuple(float(x) for x in lat),
        status_counts=status_counts,
    )


async def _amain(args: argparse.Namespace) -> LoadStats:
    server = ModelServer(args.models, ServeConfig(
        cache_capacity=args.cache_capacity,
        bucket_per_decade=args.bucket_per_decade))
    async with server:
        return await run_load(server, total=args.requests,
                              concurrency=args.concurrency, seed=args.seed)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Seeded in-process load generator for the model server")
    ap.add_argument("--models", required=True,
                    help="ModelRepository directory to serve")
    ap.add_argument("--requests", type=int, default=2000)
    ap.add_argument("--concurrency", type=int, default=32)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--cache-capacity", type=int, default=4096)
    ap.add_argument("--bucket-per-decade", type=int, default=64)
    ap.add_argument("--json", dest="json_out", default=None,
                    help="also write the stats to this JSON file")
    args = ap.parse_args(argv)
    try:
        stats = asyncio.run(_amain(args))
    except (ValidationError, ValueError, OSError) as exc:
        print(f"loadgen error: {exc}")
        return 2
    print(stats.format())
    if args.json_out:
        doc = {"requests": stats.requests, "errors": stats.errors,
               "duration_us": stats.duration_us,
               "throughput_rps": stats.throughput_rps,
               "p50_us": stats.p50_us, "p99_us": stats.p99_us,
               "mean_us": stats.mean_us,
               "status_counts": {str(k): v for k, v in
                                 sorted(stats.status_counts.items())}}
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if stats.errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
