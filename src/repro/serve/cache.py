"""LRU + TTL prediction cache.

Entries are keyed by ``(generation, component, mode, q_bucket)``: the
model-snapshot generation is part of the key, so a hot-reload makes every
cached prediction unreachable instead of requiring an explicit flush —
stale entries age out of the LRU tail on their own, and a cached value can
never be served with a version stamp it was not computed under.

The clock is injected (:class:`repro.util.timebase.Clock`) so TTL expiry
is testable without sleeping; the default is the real wall clock.  Hit,
miss, eviction and expiry counts feed the serving
:class:`~repro.obs.metrics.MetricsRegistry` so the cache's behaviour is
visible on the ``/metrics`` endpoint it accelerates.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.obs.metrics import MetricsRegistry
from repro.util.timebase import Clock, WallClock

__all__ = ["PredictionCache", "QBucketer"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class QBucketer:
    """Quantize workloads onto a fixed log grid.

    Serving evaluates models at a bucket *representative* rather than the
    raw Q: requests within ~1% of each other share a cache entry, which is
    what makes the cache effective under real traffic where Q values
    cluster but rarely repeat exactly.  ``per_decade=None`` disables
    quantization (exact-Q keys, representative == request).

    The representative is a pure function of the bucket index, so the
    single-request path and the batched path quantize identically —
    a precondition for their bitwise-equal results.
    """

    __slots__ = ("per_decade",)

    def __init__(self, per_decade: int | None = 64) -> None:
        if per_decade is not None and per_decade < 1:
            raise ValueError(f"per_decade must be >= 1 or None, got {per_decade}")
        self.per_decade = per_decade

    def bucket(self, q: float) -> float:
        """Bucket representative for workload ``q`` (requires q > 0)."""
        if q <= 0:
            raise ValueError(f"workload must be > 0, got {q}")
        if self.per_decade is None:
            return float(q)
        idx = round(math.log10(q) * self.per_decade)
        return float(10.0 ** (idx / self.per_decade))


class PredictionCache(Generic[K, V]):
    """Bounded LRU cache with optional per-entry TTL.

    ``get`` returns ``None`` on miss (values are never ``None``); ``put``
    inserts at the MRU end and evicts from the LRU end past ``capacity``.
    An entry older than ``ttl_us`` counts as an expiry (reported
    separately from capacity evictions) and is removed on access.
    """

    def __init__(self, capacity: int = 4096, ttl_us: float | None = None,
                 clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl_us is not None and ttl_us <= 0:
            raise ValueError(f"ttl_us must be > 0 or None, got {ttl_us}")
        self.capacity = capacity
        self.ttl_us = ttl_us
        self.clock = clock if clock is not None else WallClock()
        self.metrics = metrics
        self._entries: OrderedDict[K, tuple[float, V]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expiries = 0

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[K]:
        """Keys in LRU-to-MRU order (eviction order), for introspection."""
        return list(self._entries)

    def _count(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"serve_cache_{event}_total",
                                 "prediction cache events").inc()
            self.metrics.gauge("serve_cache_entries",
                               "live cache entries").set(len(self._entries))

    def get(self, key: K) -> V | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._count("misses")
            return None
        inserted_at, value = entry
        if (self.ttl_us is not None
                and self.clock.now() - inserted_at >= self.ttl_us):
            del self._entries[key]
            self.expiries += 1
            self.misses += 1
            self._count("expiries")
            self._count("misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._count("hits")
        return value

    def put(self, key: K, value: V) -> None:
        if key in self._entries:
            # Refresh both recency and the TTL epoch.
            del self._entries[key]
        self._entries[key] = (self.clock.now(), value)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("evictions")
        if self.metrics is not None:
            self.metrics.gauge("serve_cache_entries",
                               "live cache entries").set(len(self._entries))

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
