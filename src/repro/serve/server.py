"""The serving application: routes, handlers and the asyncio HTTP front.

Two layers, deliberately separable:

* :class:`ModelServer` — the pure application.  ``await
  server.handle(method, path, body)`` returns a :class:`Response`; no
  sockets involved.  The load generator and the tests drive this layer
  directly (in-process serving), so measured throughput is the service's
  own cost, not loopback-TCP's.

* :meth:`ModelServer.serve_http` — a minimal HTTP/1.1 front end on
  ``asyncio`` streams (stdlib only): request line + headers +
  Content-Length body, keep-alive, one task per connection.  Everything
  it does is delegate to ``handle``.

Endpoints::

    GET  /healthz            liveness + model version + queue depth
    GET  /v1/models          model catalog
    POST /v1/predict         one prediction
    POST /v1/predict/batch   many predictions, one vectorized evaluation
    POST /v1/optimize        assembly recommendation over stored candidates
    GET  /metrics            Prometheus text exposition
    GET  /metrics.json       the same registry as JSON
    GET  /debug/spans        recent request spans (requires a tracer)
    GET  /live               SSE stream of periodic serving aggregates

Failure contract: malformed payloads are 400 with the offending field
named; unknown models 404; no models loaded or queue full 503 with
``Retry-After``; oversized bodies 413.  Every response from the model
path carries ``model_version`` so clients can detect reloads.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from repro.models.composite import CompositeModel, Workload
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanTracer
from repro.perf.optimizer import AssemblyOptimizer
from repro.serve.batching import LoadShedError, MicroBatcher
from repro.serve.cache import PredictionCache, QBucketer
from repro.serve.schema import (AssemblyChoice, BatchPredictRequest,
                                BatchPredictResponse, OptimizeRequest,
                                OptimizeResponse, PredictRequest,
                                PredictResponse, ValidationError)
from repro.serve.store import (ModelUnavailable, ServingModelStore,
                               UnknownModel)
from repro.util.httpd import (Response, read_request, render_response,
                              sse_event, sse_preamble)
from repro.util.timebase import Clock, now_us

__all__ = ["Response", "ServeConfig", "ModelServer"]

#: latency histogram buckets: 1 us .. 10 s, six per decade
_LATENCY_BOUNDS = tuple(10.0 ** (k / 6.0) for k in range(43))

# Internal aliases kept: the HTTP plumbing moved to repro.util.httpd
# (shared with the obs sidecar) and these names are this module's API
# toward its own front-end loop.
_read_request = read_request
_render_response = render_response


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the serving stack (defaults sized for the case study)."""

    #: Q quantization resolution (buckets per decade); None = exact-Q keys
    bucket_per_decade: int | None = 64
    cache_capacity: int = 4096
    #: prediction TTL in seconds; None = entries live until evicted
    cache_ttl_s: float | None = None
    max_batch: int = 512
    queue_limit: int = 2048
    reload_interval_s: float = 0.5
    max_body_bytes: int = 8 * 1024 * 1024
    #: cap on ranked assemblies returned by /v1/optimize
    optimize_top_max: int = 50
    #: period of the SSE ``/live`` aggregate stream
    live_interval_s: float = 0.5
    #: spans returned by ``/debug/spans``
    debug_spans: int = 100


_Handler = Callable[["ModelServer", bytes], Awaitable[Response]]


class ModelServer:
    """The serving application over one model repository directory."""

    def __init__(self, models_dir: str, config: ServeConfig | None = None,
                 metrics: MetricsRegistry | None = None,
                 clock: Clock | None = None,
                 tracer: SpanTracer | None = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: optional request tracer feeding /debug/spans (and, through an
        #: attached AdaptiveSampler, budgeted request sampling)
        self.tracer = tracer
        self.store = ServingModelStore(models_dir)
        ttl_us = (None if self.config.cache_ttl_s is None
                  else self.config.cache_ttl_s * 1e6)
        self.cache: PredictionCache = PredictionCache(
            capacity=self.config.cache_capacity, ttl_us=ttl_us,
            clock=clock, metrics=self.metrics)
        self.batcher = MicroBatcher(
            self.store, self.cache, QBucketer(self.config.bucket_per_decade),
            metrics=self.metrics, max_batch=self.config.max_batch,
            queue_limit=self.config.queue_limit)
        self._stop = asyncio.Event()
        self._watcher: asyncio.Task | None = None
        self._routes: dict[tuple[str, str], _Handler] = {
            ("GET", "/healthz"): ModelServer._handle_healthz,
            ("GET", "/v1/models"): ModelServer._handle_models,
            ("POST", "/v1/predict"): ModelServer._handle_predict,
            ("POST", "/v1/predict/batch"): ModelServer._handle_predict_batch,
            ("POST", "/v1/optimize"): ModelServer._handle_optimize,
            ("GET", "/metrics"): ModelServer._handle_metrics_prom,
            ("GET", "/metrics.json"): ModelServer._handle_metrics_json,
            ("GET", "/debug/spans"): ModelServer._handle_debug_spans,
        }

    # --------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Start the batch dispatcher and the model-directory watcher."""
        self._stop.clear()
        self.batcher.start()
        if self._watcher is None or self._watcher.done():
            self._watcher = asyncio.get_running_loop().create_task(
                self.store.watch(self.config.reload_interval_s,
                                 stop=self._stop),
                name="serve-watcher")

    async def stop(self) -> None:
        self._stop.set()
        await self.batcher.stop()
        if self._watcher is not None:
            try:
                await self._watcher
            except asyncio.CancelledError:
                pass
            self._watcher = None

    async def __aenter__(self) -> "ModelServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # ----------------------------------------------------------- routing
    async def handle(self, method: str, path: str,
                     body: bytes = b"") -> Response:
        """Dispatch one request; never raises (errors become responses)."""
        handler = self._routes.get((method, path))
        if handler is None:
            if any(p == path for (_m, p) in self._routes):
                resp = Response.error(405, f"method {method} not allowed "
                                           f"for {path}")
            else:
                resp = Response.error(404, f"no route for {method} {path}")
        else:
            span = (self.tracer.start(path, "serve", sampled=True)
                    if self.tracer is not None else None)
            t0 = now_us()
            resp = await self._guarded(handler, body)
            self.metrics.histogram(
                "serve_latency_us", "request latency by route",
                bounds=_LATENCY_BOUNDS, route=path).observe(now_us() - t0)
            self.metrics.counter(
                "serve_requests_total", "requests by route and status",
                route=path, status=str(resp.status)).inc()
            if self.tracer is not None:
                if span is not None:
                    span.attrs["status"] = resp.status
                self.tracer.end(span)
        return resp

    async def _guarded(self, handler: _Handler, body: bytes) -> Response:
        retry_after = str(max(1, math.ceil(self.config.reload_interval_s)))
        try:
            return await handler(self, body)
        except ValidationError as exc:
            return Response.error(400, str(exc))
        except UnknownModel as exc:
            return Response.error(404, f"unknown model: {exc.args[0]}")
        except ModelUnavailable:
            return Response.error(
                503, "no models loaded; repository is empty or reloading",
                headers=(("Retry-After", retry_after),))
        except LoadShedError as exc:
            return Response.error(
                503, str(exc), headers=(("Retry-After", "1"),))

    @staticmethod
    def _parse_json(body: bytes, where: str) -> Any:
        try:
            return json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{where}: body is not valid JSON "
                                  f"({exc.msg} at pos {exc.pos})") from None

    # ---------------------------------------------------------- handlers
    async def _handle_healthz(self, body: bytes) -> Response:
        snap = self.store.snapshot
        ok = len(snap) > 0
        return Response.json(200 if ok else 503, {
            "status": "ok" if ok else "unavailable",
            "model_version": snap.version,
            "models": len(snap),
            "reloads": self.store.reloads,
            "queue_depth": self.batcher.queue_depth,
        })

    async def _handle_models(self, body: bytes) -> Response:
        snap = self.store.snapshot
        return Response.json(200, {
            "model_version": snap.version,
            "models": [m.to_obj() for m in snap.catalog()],
        })

    async def _handle_predict(self, body: bytes) -> Response:
        req = PredictRequest.from_obj(
            self._parse_json(body, "predict request"))
        pred, version = await self.batcher.predict(req)
        return Response.json(
            200, PredictResponse(prediction=pred,
                                 model_version=version).to_obj())

    async def _handle_predict_batch(self, body: bytes) -> Response:
        batch = BatchPredictRequest.from_obj(
            self._parse_json(body, "batch predict request"))
        results = await asyncio.gather(
            *(self.batcher.predict(r) for r in batch.requests))
        # All sub-requests of one batch must answer from one model set;
        # a reload races the flushes only at the boundary between them.
        versions = {version for _pred, version in results}
        if len(versions) > 1:
            return Response.error(
                503, "model reload raced this batch; retry",
                headers=(("Retry-After", "1"),))
        return Response.json(200, BatchPredictResponse(
            predictions=tuple(pred for pred, _v in results),
            model_version=versions.pop()).to_obj())

    async def _handle_optimize(self, body: bytes) -> Response:
        req = OptimizeRequest.from_obj(
            self._parse_json(body, "optimize request"))
        snap = self.store.snapshot
        if len(snap) == 0:
            raise ModelUnavailable("no models loaded")
        composite = CompositeModel()
        candidates = {}
        for spec in req.slots:
            pool = snap.candidates(spec.slot)
            if not pool:
                return Response.error(
                    404, f"no candidate models stored under functionality "
                         f"{spec.slot!r}")
            candidates[spec.slot] = pool
            composite.add_node(spec.slot,
                               Workload(spec.q_values, spec.counts),
                               slot=spec.slot, comm_us=spec.comm_us)
        optimizer = AssemblyOptimizer(composite, candidates)
        try:
            result = optimizer.optimize(qos_weight=req.qos_weight,
                                        min_quality=req.min_quality)
        except ValueError as exc:
            return Response.error(400, f"optimize request: {exc}")
        top = min(req.top, self.config.optimize_top_max)
        choices = tuple(
            AssemblyChoice(binding=ra.binding_names(), cost_us=ra.cost_us,
                           quality=ra.quality, score=ra.score)
            for ra in result.ranked[:top])
        return Response.json(200, OptimizeResponse(
            best=choices[0], ranked=choices,
            search_space=optimizer.search_space_size(),
            model_version=snap.version).to_obj())

    async def _handle_metrics_prom(self, body: bytes) -> Response:
        return Response(status=200, body=self.metrics.to_prometheus().encode(),
                        content_type="text/plain; version=0.0.4")

    async def _handle_metrics_json(self, body: bytes) -> Response:
        return Response(status=200, body=self.metrics.to_json().encode())

    async def _handle_debug_spans(self, body: bytes) -> Response:
        if self.tracer is None:
            return Response.json(200, {"spans": [], "tracing": "off"})
        spans = self.tracer.recent_spans(self.config.debug_spans)
        return Response.json(200, {
            "spans": [s.to_dict() for s in spans],
            "dropped": self.tracer.dropped_count,
            "sampled_out": self.tracer.sampled_out,
        })

    # ----------------------------------------------------- live stream
    def live_snapshot(self) -> dict[str, Any]:
        """One frame of the SSE ``/live`` stream: serving aggregates."""
        snap = self.store.snapshot
        requests = sum(
            inst.value for name, _lk, inst in self.metrics.series()
            if name == "serve_requests_total")
        frame: dict[str, Any] = {
            "t_us": now_us(),
            "model_version": snap.version,
            "models": len(snap),
            "reloads": self.store.reloads,
            "queue_depth": self.batcher.queue_depth,
            "requests_total": requests,
        }
        if self.tracer is not None:
            frame["spans"] = len(self.tracer)
            frame["dropped"] = self.tracer.dropped_count
        return frame

    async def _stream_live(self, writer: asyncio.StreamWriter) -> None:
        """Serve one SSE client until it disconnects or the server stops."""
        writer.write(sse_preamble())
        await writer.drain()
        while not self._stop.is_set():
            writer.write(sse_event(self.live_snapshot()))
            await writer.drain()
            try:
                await asyncio.wait_for(self._stop.wait(),
                                       self.config.live_interval_s)
            except asyncio.TimeoutError:
                pass

    # ------------------------------------------------------ HTTP front
    async def serve_http(self, host: str = "127.0.0.1",
                         port: int = 8077) -> "asyncio.base_events.Server":
        """Open a listening socket; returns the asyncio server object."""
        return await asyncio.start_server(self._client, host, port)

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await _read_request(
                    reader, max_body=self.config.max_body_bytes)
                if request is None:
                    break
                method, path, body, keep_alive, too_large = request
                if too_large:
                    resp = Response.error(413, "request body too large")
                    keep_alive = False
                elif method == "GET" and path == "/live":
                    # SSE: the connection becomes a one-way event stream
                    # and never returns to request parsing.
                    await self._stream_live(writer)
                    break
                else:
                    resp = await self.handle(method, path, body)
                writer.write(_render_response(resp, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # close raced the peer's reset
