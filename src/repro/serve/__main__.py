"""CLI: run the model-serving HTTP front end.

Usage::

    python -m repro.serve --models runs/models [--host 127.0.0.1]
        [--port 8077] [--cache-ttl 0] [--reload-interval 0.5]

Serves until interrupted.  Try it::

    curl -s localhost:8077/v1/predict -d \
        '{"component": "GodunovFlux", "mode": "strided", "q": 512}'
"""

from __future__ import annotations

import argparse
import asyncio

from repro.serve.server import ModelServer, ServeConfig


async def _amain(args: argparse.Namespace) -> None:
    config = ServeConfig(
        cache_ttl_s=args.cache_ttl if args.cache_ttl > 0 else None,
        reload_interval_s=args.reload_interval)
    server = ModelServer(args.models, config)
    async with server:
        http = await server.serve_http(args.host, args.port)
        snap = server.store.snapshot
        print(f"serving {len(snap)} model(s) [{snap.version}] "
              f"on http://{args.host}:{args.port}")
        async with http:
            await http.serve_forever()


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Performance-model serving over HTTP/JSON")
    ap.add_argument("--models", required=True,
                    help="ModelRepository directory to serve")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8077)
    ap.add_argument("--cache-ttl", type=float, default=0.0,
                    help="prediction TTL in seconds (0 = no TTL)")
    ap.add_argument("--reload-interval", type=float, default=0.5,
                    help="model-directory poll interval in seconds")
    args = ap.parse_args(argv)
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
