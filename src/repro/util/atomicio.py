"""Crash-safe file writes.

Every persistent store in this package (model repository, Mastermind record
dumps, checkpoints, traces) writes through these helpers: the payload goes
to a temporary file in the destination directory, is flushed and fsynced,
and is then moved into place with :func:`os.replace` — which is atomic on
POSIX and Windows.  An injected fault (or a real crash) mid-dump can
therefore never leave a truncated or corrupt file behind: readers see
either the complete old content or the complete new content.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any


def _atomic_write(path: str, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically; returns ``path``.

    The temp file lives in the same directory as the destination so the
    final :func:`os.replace` never crosses a filesystem boundary.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix="~")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        # Leave the destination untouched; remove the partial temp file.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Atomically write raw bytes to ``path``."""
    return _atomic_write(path, data)


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    """Atomically write text to ``path``."""
    return _atomic_write(path, text.encode(encoding))


def atomic_pickle(path: str, obj: Any) -> str:
    """Atomically pickle ``obj`` to ``path`` (highest protocol)."""
    return _atomic_write(path, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
