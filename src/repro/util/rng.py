"""Seeded random-number-generator helpers.

Every stochastic element in the simulator (network jitter, workload
generation) draws from a :class:`numpy.random.Generator` created here, so
experiments are reproducible given a seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a Generator.

    Accepts ``None`` (non-deterministic), an integer seed, or an existing
    generator (returned unchanged) so APIs can take a flexible ``seed``
    argument.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent child generators from one seed.

    Used to give each simulated MPI rank its own stream so per-rank draws do
    not depend on thread interleaving.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def rng_from_key(*key: int) -> np.random.Generator:
    """Create a Generator keyed by a tuple of integers.

    A counter-based construction: the same ``(seed, site, index, rank, ...)``
    key always yields the same stream, independent of call order — use it
    wherever a draw must be reproducible at an arbitrary program point
    (e.g. per-event fault decisions).
    """
    return np.random.default_rng(np.random.SeedSequence(list(key)))
