"""Clock abstractions.

All timing in this package is expressed in **microseconds** (the unit used
throughout the paper's figures).  Two clock kinds exist:

* :class:`WallClock` — real elapsed time from :func:`time.perf_counter_ns`.
  Used to time genuine computational kernels (States, EFMFlux, GodunovFlux),
  whose cache behaviour we want to observe for real.

* :class:`VirtualClock` — a logical per-rank clock advanced explicitly by
  the simulated MPI layer's network model.  Used to account message-passing
  time, since all simulated ranks share one host process and real wall time
  would measure thread scheduling noise, not network cost.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


def now_us() -> float:
    """Current wall-clock timestamp in microseconds (monotonic)."""
    return time.perf_counter_ns() / 1_000.0


@runtime_checkable
class Clock(Protocol):
    """Minimal clock protocol: a monotonically non-decreasing ``now()``."""

    def now(self) -> float:
        """Return the current time in microseconds."""
        ...


class WallClock:
    """Real monotonic wall clock (microseconds)."""

    def now(self) -> float:
        return now_us()


class VirtualClock:
    """Explicitly advanced logical clock (microseconds).

    The simulated MPI layer advances a rank's virtual clock by the modeled
    cost of each communication operation.  ``advance`` returns the new time
    so callers can conveniently charge and read in one step.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock start must be non-negative, got {start}")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta_us: float) -> float:
        """Advance the clock by ``delta_us`` (must be non-negative)."""
        if delta_us < 0.0:
            raise ValueError(f"cannot advance clock backwards by {delta_us}")
        self._now += float(delta_us)
        return self._now

    def advance_to(self, t_us: float) -> float:
        """Advance the clock to ``t_us`` if that is in the future."""
        if t_us > self._now:
            self._now = float(t_us)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.3f}us)"
