"""Minimal HTTP/1.1 plumbing shared by the serving front and the ops sidecar.

Originally private to :mod:`repro.serve.server`; factored out so the
observability sidecar (:mod:`repro.obs.ops`) can serve the same live
endpoints without depending on the model-serving stack.  Three pieces:

* :class:`Response` — the application-layer response value (status, body,
  content type, extra headers) with ``json``/``error`` constructors;
* :func:`read_request` / :func:`render_response` — one-request parse and
  serialize over ``asyncio`` streams (request line + headers +
  Content-Length body, keep-alive);
* :func:`sse_preamble` / :func:`sse_event` — Server-Sent Events framing
  for streaming endpoints (``/live``): a response header block that
  disables buffering, then one ``data:`` frame per event.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any

__all__ = ["Response", "STATUS_TEXT", "read_request", "render_response",
           "sse_preamble", "sse_event"]

STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 413: "Payload Too Large",
               503: "Service Unavailable"}


@dataclass(frozen=True)
class Response:
    """One application-layer response (pre-serialization of HTTP)."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = ()

    @classmethod
    def json(cls, status: int, obj: Any,
             headers: tuple[tuple[str, str], ...] = ()) -> "Response":
        body = json.dumps(obj, sort_keys=True).encode() + b"\n"
        return cls(status=status, body=body, headers=headers)

    @classmethod
    def error(cls, status: int, message: str,
              headers: tuple[tuple[str, str], ...] = ()) -> "Response":
        return cls.json(status, {"error": message}, headers=headers)


async def read_request(reader: asyncio.StreamReader, max_body: int
                       ) -> tuple[str, str, bytes, bool, bool] | None:
    """Parse one HTTP/1.1 request; None on clean EOF before a request.

    Returns ``(method, path, body, keep_alive, too_large)``; the query
    string is split off the target and discarded by the caller's router
    (handlers that need it re-parse the raw target themselves).
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line or not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 3:
        return None
    method, target = parts[0].upper(), parts[1]
    path = target.split("?", 1)[0]
    headers: dict[str, str] = {}
    while True:
        hline = await reader.readline()
        if not hline or hline in (b"\r\n", b"\n"):
            break
        name, _, value = hline.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        length = 0
    if length > max_body:
        # Drain nothing: answering 413 then closing is the contract.
        return method, path, b"", False, True
    body = await reader.readexactly(length) if length else b""
    return method, path, body, keep_alive, False


def render_response(resp: Response, keep_alive: bool) -> bytes:
    reason = STATUS_TEXT.get(resp.status, "Response")
    lines = [f"HTTP/1.1 {resp.status} {reason}",
             f"Content-Type: {resp.content_type}",
             f"Content-Length: {len(resp.body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    lines += [f"{k}: {v}" for k, v in resp.headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + resp.body


def sse_preamble() -> bytes:
    """Header block opening a Server-Sent Events stream (no Content-Length:
    the connection stays open and closes when the stream ends)."""
    return (b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n")


def sse_event(obj: Any) -> bytes:
    """One ``data:`` frame carrying ``obj`` as JSON."""
    return b"data: " + json.dumps(obj, sort_keys=True).encode() + b"\n\n"
