"""Small argument-validation helpers used across the package."""

from __future__ import annotations

from typing import Any


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        tn = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be {tn}, got {type(value).__name__}")
    return value
