"""Shared low-level utilities: clocks, RNG handling, validation, tables.

These helpers are deliberately free of dependencies on the rest of the
package so that every subsystem (MPI simulator, TAU measurement layer, CCA
framework, AMR/Euler substrate) can use them without import cycles.
"""

from repro.util.timebase import WallClock, VirtualClock, Clock, now_us
from repro.util.rng import make_rng, spawn_rngs
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
)
from repro.util.tabular import format_table, format_series

__all__ = [
    "WallClock",
    "VirtualClock",
    "Clock",
    "now_us",
    "make_rng",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "format_table",
    "format_series",
]
