"""Plain-text table/series formatting for profiles and experiment reports.

The harness prints every reproduced table and figure as text (rows for
tables, (x, y) series for figures) in the spirit of the paper's Figure 3
"FUNCTION SUMMARY" dump.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width text table.

    Floats are rendered with ``float_fmt``; everything else with ``str``.
    """
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)

    ncols = len(headers)
    for r in rendered:
        if len(r) != ncols:
            raise ValueError(f"row has {len(r)} cells, expected {ncols}: {r}")

    widths = [len(h) for h in headers]
    for r in rendered:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))

    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for r in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence[float],
    y: Sequence[float],
    *,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str | None = None,
) -> str:
    """Render an (x, y) series as a two-column table (one figure curve)."""
    if len(x) != len(y):
        raise ValueError(f"series length mismatch: {len(x)} vs {len(y)}")
    return format_table([xlabel, ylabel], zip(x, y), title=title, float_fmt="{:.4g}")
