"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP
517 editable installs fail with "invalid command 'bdist_wheel'".  With this
shim, ``pip install -e . --no-build-isolation --no-use-pep517`` uses the
classic ``setup.py develop`` path, which needs only setuptools.
"""

from setuptools import setup

setup()
