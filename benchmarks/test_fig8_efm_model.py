"""Figure 8 / Eq. 1-2 (EFMFlux): mean + std vs Q, linear fit.

Paper: T_EFM = -8.13 + 0.16 Q us — about half GodunovFlux's slope; the
performance-preferred implementation in the QoS trade-off.
"""

from conftest import write_out

from repro.euler.efm import EFMKernel
from repro.euler.states import StatesKernel
from repro.harness.figures import fig7_godunov_model, fig8_efm_model
from repro.harness.sweeps import synthetic_patch_stack


def test_fig8_efm_model(benchmark, bench_qs, out_dir):
    qs = bench_qs[:-1]
    fig8 = fig8_efm_model(qs, nprocs=3, repeats=2)
    fig7 = fig7_godunov_model(qs[:4], nprocs=1, repeats=2)
    write_out(out_dir, "fig8_efm_model.txt", fig8.render())

    assert fig8.model.mean_fit.r2 > 0.90
    # Cost ordering at a common size: Godunov > EFM (the paper's headline).
    q_common = float(qs[3])
    g = float(fig7.model.predict_mean(q_common))
    e = float(fig8.model.predict_mean(q_common))
    assert g > e
    benchmark.extra_info["godunov_over_efm"] = round(g / e, 2)
    benchmark.extra_info["mean_formula"] = fig8.model.mean_fit.formula

    states = StatesKernel()
    efm = EFMKernel()
    U = synthetic_patch_stack(qs[len(qs) // 2])
    WL, WR = states.compute(U, "x")
    benchmark(lambda: efm.compute(WL, WR, "x"))
