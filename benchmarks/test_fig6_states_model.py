"""Figure 6 / Eq. 1-2 (States): mean + std vs Q with fitted models.

Paper: T_states = exp(1.19 log Q - 3.68) us — a power law with large sigma
from averaging the two access modes.
"""

from conftest import write_out

from repro.euler.states import StatesKernel
from repro.harness.figures import fig6_states_model
from repro.harness.sweeps import synthetic_patch_stack


def test_fig6_states_model(benchmark, bench_qs, out_dir):
    fig6 = fig6_states_model(bench_qs, nprocs=3, repeats=2)
    write_out(out_dir, "fig6_states_model.txt", fig6.render())

    assert fig6.model.mean_fit.r2 > 0.90
    assert fig6.model.predict_mean(bench_qs[-1]) > fig6.model.predict_mean(bench_qs[0])
    assert fig6.model.std_fit is not None
    benchmark.extra_info["mean_formula"] = fig6.model.mean_fit.formula
    benchmark.extra_info["family"] = fig6.model.mean_fit.family

    kern = StatesKernel()
    U = synthetic_patch_stack(bench_qs[len(bench_qs) // 2])
    benchmark(lambda: (kern.compute(U, "x"), kern.compute(U, "y")))
