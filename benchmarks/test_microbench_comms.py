"""Wire-codec and coalescing microbench (the ISSUE-9 acceptance gate).

Measures, on one core:

* small-frame encode+decode round-trips through :mod:`repro.mpi.codec`
  vs the pre-codec baseline (pickling the whole envelope), as
  round-trips/s and as a gated speedup cell — the acceptance criterion
  is a >= 2x median speedup;
* large-frame decode bandwidth (zero-copy ``np.frombuffer`` path),
  trend only;
* pushing a burst of small frames through a real :class:`ShmRing` as one
  coalesced batch write vs one ring write per frame, gated as a speedup.

Writes ``benchmarks/out/microbench_comms.txt`` and the
``BENCH_comms.json`` trajectory cells (committed baseline at the repo
root; CI regenerates and gates against it).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle

import numpy as np

from benchmarks.conftest import SMOKE, median_us, paired_median_us, write_out
from repro.bench import record_cell, record_cell_samples
from repro.mpi import codec
from repro.mpi.message import Envelope
from repro.mpi.shm import ShmFlag, ShmRing

TRAJECTORY = os.path.join(os.path.dirname(__file__), "out",
                          "BENCH_comms.json")

_KIND = 0  # _KIND_DELIVER; the codec treats it as opaque

#: per-measurement inner iterations (one timed sample encodes+decodes this
#: many frames, so a sample is ~ms-scale and clock-resolution-proof)
INNER = 200


def _small_env() -> Envelope:
    # A halo-exchange-sized control frame: the regime the coalescer and
    # the packed header exist for.
    return Envelope(source=0, dest=1, tag=7,
                    payload=np.arange(64, dtype=np.float64),
                    nbytes=512, cost_us=41.0)


def _samples(fn, n):
    return [median_us(fn, n=1, warmup=0) for _ in range(n)]


def test_codec_small_frame_speedup(out_dir):
    # Each sample is ~ms-scale, so even smoke keeps a real sample count;
    # A/B interleaving (paired timing) cancels CPU-frequency drift.
    repeats = 10 if SMOKE else 30
    env = _small_env()

    def codec_roundtrips():
        for _ in range(INNER):
            frame = codec.encode_bytes(_KIND, "world", env)
            codec.decode(frame)

    def pickle_roundtrips():
        # The pre-codec wire format: the whole envelope as one pickle.
        for _ in range(INNER):
            blob = pickle.dumps((_KIND, "world", env),
                                protocol=pickle.HIGHEST_PROTOCOL)
            pickle.loads(blob)

    ta, tb, diff = [], [], []
    for _ in range(repeats):
        a, b, d = paired_median_us(codec_roundtrips, pickle_roundtrips,
                                   n=1, warmup=1)
        ta.append(a); tb.append(b); diff.append(d)
    t_codec, t_pickle = ta, tb
    rps_codec = [1e6 * INNER / t for t in t_codec]
    rps_pickle = [1e6 * INNER / t for t in t_pickle]
    speedup = float(np.median(t_pickle) / np.median(t_codec))

    record_cell_samples(TRAJECTORY, "codec_small_roundtrips_per_s",
                        rps_codec, unit="1/s", higher_is_better=True,
                        gate=False,
                        meta={"note": "machine-speed trend: 512B ndarray "
                                      "envelope, encode_bytes+decode"})
    record_cell_samples(TRAJECTORY, "pickle_small_roundtrips_per_s",
                        rps_pickle, unit="1/s", higher_is_better=True,
                        gate=False,
                        meta={"note": "pre-codec baseline: whole-envelope "
                                      "pickle.dumps+loads"})
    record_cell(TRAJECTORY, "codec_small_speedup", speedup, unit="x",
                higher_is_better=True, gate=True,
                meta={"note": "acceptance: packed-header codec must stay "
                              ">= ~2x whole-envelope pickling on small "
                              "frames (committed cell is a conservative "
                              "floor)"})

    lines = [
        f"Small-frame codec bench ({INNER} round-trips/sample, median of "
        f"{repeats}):",
        f"  codec:  {np.median(t_codec):9.1f} us  "
        f"({np.median(rps_codec):12.0f} frames/s)",
        f"  pickle: {np.median(t_pickle):9.1f} us  "
        f"({np.median(rps_pickle):12.0f} frames/s)",
        f"  speedup: {speedup:.2f}x",
    ]
    write_out(out_dir, "microbench_comms.txt", "\n".join(lines))
    print("\n".join(lines))
    assert speedup >= 2.0, (
        f"codec is only {speedup:.2f}x whole-envelope pickling")


def test_codec_large_frame_bandwidth(out_dir):
    repeats = 3 if SMOKE else 15
    arr = np.arange(1 << 21, dtype=np.float64)  # 16 MiB
    env = Envelope(source=0, dest=1, tag=7, payload=arr,
                   nbytes=arr.nbytes, cost_us=0.0)
    frame = bytearray(codec.encode_bytes(_KIND, "world", env))

    t_dec = _samples(lambda: codec.decode(frame), repeats)
    mbps = [arr.nbytes / t for t in t_dec]  # bytes/us == MB/s
    record_cell_samples(TRAJECTORY, "codec_large_decode_mb_per_s", mbps,
                        unit="MB/s", higher_is_better=True, gate=False,
                        meta={"note": "16 MiB float64 frame; zero-copy "
                                      "frombuffer path, machine-speed "
                                      "trend"})
    line = (f"Large-frame decode: {np.median(mbps):9.0f} MB/s "
            f"(16 MiB, median of {repeats})")
    with open(os.path.join(out_dir, "microbench_comms.txt"), "a",
              encoding="utf-8") as fh:
        fh.write(line + "\n")
    print(line)
    # Zero-copy decode must run at memory speed, not serialization speed.
    assert np.median(mbps) > 1000.0


def test_coalesced_ring_roundtrip_speedup(out_dir):
    # Bursts are ~ms-scale: keep a real sample count in smoke too, and
    # interleave the two variants so scheduler drift cancels.
    repeats = 10 if SMOKE else 30
    nframes = 64
    ctx = mp.get_context("fork")
    ring, flag = ShmRing(1 << 20, ctx), ShmFlag()
    try:
        env = _small_env()
        frames = [codec.encode(_KIND, "world", env) for _ in range(nframes)]

        # Transport-only on purpose: sub-frame *decode* cost is identical
        # on both sides (and measured by the codec cells above); this cell
        # isolates what coalescing actually changes — ring writes, length
        # prefixes, counter publishes and recv round-trips.
        def per_frame():
            for f in frames:
                ring.send_segments(f, flag)
            for _ in range(nframes):
                ring.recv(flag)
                ring.mark_deposited()

        def coalesced():
            ring.send_segments(codec.encode_batch(frames), flag)
            batch = ring.recv(flag)
            n = sum(1 for _ in codec.iter_batch(batch))
            assert n == nframes
            ring.mark_deposited()

        t_coal, t_per = [], []
        for _ in range(repeats):
            c, p, _ = paired_median_us(coalesced, per_frame, n=1, warmup=1)
            t_coal.append(c); t_per.append(p)
        speedup = float(np.median(t_per) / np.median(t_coal))

        record_cell_samples(TRAJECTORY, "ring_perframe_burst_us", t_per,
                            unit="us", gate=False,
                            meta={"note": f"{nframes} small frames, one "
                                          "ring write each; machine-speed "
                                          "trend"})
        record_cell_samples(TRAJECTORY, "ring_coalesced_burst_us", t_coal,
                            unit="us", gate=False,
                            meta={"note": f"{nframes} small frames as one "
                                          "batch write; machine-speed "
                                          "trend"})
        record_cell(TRAJECTORY, "ring_coalesce_speedup", speedup, unit="x",
                    higher_is_better=True, gate=True,
                    meta={"note": "one batch write vs 64 per-frame writes "
                                  "through a real ring (committed cell is "
                                  "a conservative floor)"})
        lines = [
            f"Coalesced ring burst ({nframes} frames, median of {repeats}):",
            f"  per-frame: {np.median(t_per):9.1f} us",
            f"  coalesced: {np.median(t_coal):9.1f} us  ({speedup:.2f}x)",
        ]
        with open(os.path.join(out_dir, "microbench_comms.txt"), "a",
                  encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        print("\n".join(lines))
        assert speedup >= 2.0, (
            f"coalescing gained only {speedup:.2f}x over per-frame writes")
    finally:
        ring.close(); ring.unlink()
        flag.close(); flag.unlink()
