"""Scalability sweep: message-passing fraction vs processor count.

Paper Section 5: "message passing times are generally comparable to the
purely computational loads ... and it is unlikely that the code, in the
current configuration ... will scale well.  This is also borne out by
Figure 3 where almost a quarter of the time is shown to be spent in
message passing."

This bench runs the fixed-size case study at P = 1, 2, 3 ranks and reports
the MPI share of the profile — the expected shape is a growing fraction
(fixed problem, more boundaries, same wire).
"""

import dataclasses

from conftest import write_out

from repro.cca.scmd import MAIN_TIMER
from repro.harness.casestudy import run_case_study
from repro.tau.summary import merge_snapshots
from repro.util.tabular import format_table


def mpi_fraction(result) -> float:
    merged = merge_snapshots(result.timer_snapshots)
    total = merged[MAIN_TIMER].inclusive_us
    mpi = sum(t.inclusive_us for t in merged.values() if t.group == "MPI")
    return mpi / total if total > 0 else 0.0


def test_scaling_ranks(benchmark, bench_config, out_dir):
    holder = {}

    def run():
        for p in (1, 2, 3):
            cfg = dataclasses.replace(
                bench_config, nranks=p,
                params=dataclasses.replace(bench_config.params, steps=3),
            )
            holder[p] = run_case_study(cfg)

    benchmark.pedantic(run, rounds=1, iterations=1)

    fracs = {p: mpi_fraction(res) for p, res in holder.items()}
    rows = [(p, f"{f:.1%}") for p, f in sorted(fracs.items())]
    write_out(out_dir, "scaling_ranks.txt", format_table(
        ["ranks", "MPI fraction of runtime"], rows,
        title="Fixed-size scaling: message-passing share vs processor count",
    ))

    # Shape: multi-rank runs pay a visible MPI share; P=1 pays ~nothing
    # through the wire (collectives with one rank are floor-cost only).
    assert fracs[1] < fracs[3]
    assert fracs[3] > 0.05
    benchmark.extra_info["mpi_fractions"] = {p: round(f, 4) for p, f in fracs.items()}
