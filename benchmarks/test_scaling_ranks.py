"""Scalability sweeps: message passing vs computation, 1 to 64 ranks.

Paper Section 5: "message passing times are generally comparable to the
purely computational loads ... and it is unlikely that the code, in the
current configuration ... will scale well.  This is also borne out by
Figure 3 where almost a quarter of the time is shown to be spent in
message passing."

Three benches:

* the paper-scale fixed-size run at P = 1, 2, 3 (the original Figure 3
  shape check);
* strong- and weak-scaling curves to P = 64 on the thread backend with
  hierarchical collectives, whose modeled (virtual-microsecond) MPI
  costs land in the ``BENCH_scaling.json`` trajectory as gated cells —
  deterministic given the seed, so CI can hold them to a tight
  regression tolerance;
* a thread vs mp-shm backend comparison at P up to 64: same modeled
  world, real processes — wall-clock recorded ungated (noise), modeled
  results asserted identical, and the parallel speedup asserted only on
  hosts with enough cores for the comparison to mean anything.
"""

from __future__ import annotations

import dataclasses
import os

import pytest
from conftest import SMOKE, write_out

from repro.bench import record_cell
from repro.cca.scmd import MAIN_TIMER
from repro.euler.ports import DriverParams
from repro.harness.casestudy import CaseStudyConfig, run_case_study
from repro.mpi.network import NetworkModel
from repro.tau.summary import merge_snapshots
from repro.util.tabular import format_table

TRAJECTORY = os.path.join(os.path.dirname(__file__), "out",
                          "BENCH_scaling.json")

#: P values for the 64-rank curves (SMOKE drops the 64-rank legs so CI
#: smoke passes stay in seconds)
CURVE_RANKS = (4, 16) if SMOKE else (4, 16, 64)

NETWORK = NetworkModel(latency_us=3000.0, bandwidth_bytes_per_us=4.0,
                       jitter_sigma=0.25)


def scaled_config(nranks: int, nx: int, backend: str = "thread",
                  steps: int = 2) -> CaseStudyConfig:
    return CaseStudyConfig(
        params=DriverParams(nx=nx, ny=nx, max_levels=2, steps=steps,
                            regrid_every=2, max_patch_cells=1024),
        nranks=nranks, seed=0, network=NETWORK, backend=backend,
        collectives="hier")


def mpi_fraction(result) -> float:
    merged = merge_snapshots(result.timer_snapshots)
    total = merged[MAIN_TIMER].inclusive_us
    mpi = sum(t.inclusive_us for t in merged.values() if t.group == "MPI")
    return mpi / total if total > 0 else 0.0


def modeled_mpi_us(result) -> float:
    """Max per-rank modeled MPI time, excluding ``MPI_Waitsome`` (its
    completion grouping depends on wall-clock arrival order, so it is the
    one row that differs run-to-run and backend-to-backend)."""
    acc = result.world.accounting
    return max(
        sum(s.total_us for name, s in acc[r].routine_totals().items()
            if name != "MPI_Waitsome")
        for r in range(result.nranks))


def test_scaling_ranks(benchmark, bench_config, out_dir):
    holder = {}

    def run():
        for p in (1, 2, 3):
            cfg = dataclasses.replace(
                bench_config, nranks=p,
                params=dataclasses.replace(bench_config.params, steps=3),
            )
            holder[p] = run_case_study(cfg)

    benchmark.pedantic(run, rounds=1, iterations=1)

    fracs = {p: mpi_fraction(res) for p, res in holder.items()}
    rows = [(p, f"{f:.1%}") for p, f in sorted(fracs.items())]
    write_out(out_dir, "scaling_ranks.txt", format_table(
        ["ranks", "MPI fraction of runtime"], rows,
        title="Fixed-size scaling: message-passing share vs processor count",
    ))

    # Shape: multi-rank runs pay a visible MPI share; P=1 pays ~nothing
    # through the wire (collectives with one rank are floor-cost only).
    assert fracs[1] < fracs[3]
    assert fracs[3] > 0.05
    benchmark.extra_info["mpi_fractions"] = {p: round(f, 4) for p, f in fracs.items()}


def test_scaling_curves_to_64(benchmark, out_dir):
    """Strong (fixed 32x32) and weak (nx ~ sqrt(P)) curves on the thread
    backend; modeled MPI cost per P becomes the gated trajectory cells."""
    weak_nx = {4: 24, 16: 48, 64: 96}
    strong, weak = {}, {}

    def run():
        for p in CURVE_RANKS:
            strong[p] = run_case_study(scaled_config(p, nx=32))
            weak[p] = run_case_study(scaled_config(p, nx=weak_nx[p]))

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, curve in (("strong", strong), ("weak", weak)):
        for p, res in sorted(curve.items()):
            us = modeled_mpi_us(res)
            frac = mpi_fraction(res)
            nx = 32 if label == "strong" else weak_nx[p]
            rows.append((label, p, f"{nx}x{nx}", f"{us / 1e3:.1f}",
                         f"{frac:.1%}"))
            record_cell(
                TRAJECTORY, f"scmd_{label}_p{p}_modeled_mpi_us", us,
                meta={"ranks": p, "nx": nx, "collectives": "hier",
                      "mpi_fraction": round(frac, 4)})
    write_out(out_dir, "scaling_curves.txt", format_table(
        ["curve", "ranks", "grid", "modeled MPI (ms)", "MPI fraction"], rows,
        title="Strong and weak scaling to 64 ranks (thread backend, hier)",
    ))

    # Fixed problem + more ranks = more boundary traffic: the strong curve
    # must grow monotonically in modeled comm cost.
    s = [modeled_mpi_us(strong[p]) for p in sorted(strong)]
    assert s == sorted(s), s


#: walls measured by the backend-comparison bench, consumed by the
#: speedup-gate test below (same module, runs later in file order)
_BACKEND_WALLS: dict[tuple[str, int], float] = {}


def test_scaling_backends_thread_vs_mpshm(benchmark, out_dir):
    """Same job on both backends: identical modeled outcome, real
    processes vs threads for wall-clock.  Wall numbers are recorded
    ungated; the >2x speedup claim is gated separately in
    :func:`test_mpshm_speedup_multicore` (the backends are
    indistinguishable on one core)."""
    import time

    walls = _BACKEND_WALLS
    runs: dict[tuple[str, int], object] = {}

    def run():
        for p in CURVE_RANKS:
            for backend in ("thread", "mp-shm"):
                t0 = time.perf_counter()
                runs[(backend, p)] = run_case_study(
                    scaled_config(p, nx=32, backend=backend))
                walls[(backend, p)] = time.perf_counter() - t0

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for p in CURVE_RANKS:
        rt, rp = runs[("thread", p)], runs[("mp-shm", p)]
        # Modeled conformance at scale: same physics, same modeled comm.
        for r in range(p):
            assert rt.extras[r].dt_history == rp.extras[r].dt_history, p
        assert abs(modeled_mpi_us(rt) - modeled_mpi_us(rp)) < 0.5, p
        wt, wp = walls[("thread", p)], walls[("mp-shm", p)]
        rows.append((p, f"{wt:.2f}", f"{wp:.2f}", f"{wt / wp:.2f}x"))
        for backend in ("thread", "mp-shm"):
            record_cell(
                TRAJECTORY, f"scmd_wall_{backend}_p{p}_s",
                walls[(backend, p)], unit="s", gate=False,
                meta={"ranks": p, "cpu_count": os.cpu_count()})
    write_out(out_dir, "scaling_backends.txt", format_table(
        ["ranks", "thread wall (s)", "mp-shm wall (s)", "speedup"], rows,
        title="Thread vs mp-shm backend wall clock (identical modeled runs)",
    ))

    benchmark.extra_info["walls_s"] = {
        f"{b}_p{p}": round(w, 3) for (b, p), w in walls.items()}


def _note_speedup_outcome(out_dir: str, line: str) -> None:
    """Append the speedup-gate verdict to the scaling out-file, so a
    re-anchor reading ``scaling_ranks.txt`` can tell "never ran" from
    "passed" without digging through CI logs."""
    with open(os.path.join(out_dir, "scaling_ranks.txt"), "a",
              encoding="utf-8") as fh:
        fh.write(f"mp-shm >2x speedup gate: {line}\n")


def test_mpshm_speedup_multicore(out_dir):
    """The mp-shm backend must beat the GIL by >2x — on real parallel
    hardware.  On fewer than 8 cores the claim is untestable, and the
    skip is *loud*: an explicit reason plus a never-ran note in the
    out-file (a silent pass here used to be indistinguishable from a
    pass on a 64-core box)."""
    cores = os.cpu_count() or 1
    if cores < 8:
        _note_speedup_outcome(
            out_dir, f"NEVER RAN on this host ({cores} core(s) < 8)")
        pytest.skip(f"mp-shm >2x speedup assert needs >= 8 cores, "
                    f"host has {cores}; recorded as never-ran in "
                    f"scaling_ranks.txt")
    if not _BACKEND_WALLS:
        pytest.skip("backend-comparison bench did not run in this session; "
                    "no wall-clock samples to judge")
    # Compute-bound cell: real processes must beat the GIL by >2x.
    p = max(p for p in CURVE_RANKS if p <= cores)
    ratio = _BACKEND_WALLS[("thread", p)] / _BACKEND_WALLS[("mp-shm", p)]
    _note_speedup_outcome(
        out_dir, f"ran at P={p} on {cores} cores: {ratio:.2f}x "
                 f"{'PASS' if ratio > 2.0 else 'FAIL'}")
    assert ratio > 2.0, _BACKEND_WALLS
