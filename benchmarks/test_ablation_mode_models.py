"""Ablation: pooled vs per-mode performance models.

The paper averages the sequential/strided modes into one model and carries
the resulting scatter as a large sigma (Figures 6-8).  This ablation fits
one model per mode from the *same* measurements over a cache-spanning Q
sweep and quantifies how much of that sigma was mode mixing: the
mode-aware residual RMS drops below the pooled model's, and the modal
model predicts the Figure-5 stride ratio directly.

(On the case-study's own records the two models coincide — its patches are
small enough to stay cache-resident, where the paper also observes the
modes costing the same.)
"""

from conftest import write_out

from repro.euler.states import StatesKernel
from repro.harness.sweeps import measure_mode_sweep
from repro.models.performance import build_model
from repro.models.permode import build_modal_model, variance_explained
from repro.perf.records import InvocationRecord, MethodRecord
from repro.tau.query import InvocationMeasurement
from repro.util.tabular import format_table


def record_from_sweep(samples) -> MethodRecord:
    """Package sweep samples as a Mastermind-style method record."""
    rec = MethodRecord("sc_proxy", "compute")
    for q, mode, _proc, t in zip(samples.q, samples.mode, samples.proc,
                                 samples.time_us):
        rec.add(InvocationRecord(
            params={"Q": q, "mode": mode},
            measurement=InvocationMeasurement(wall_us=t, mpi_us=0.0),
        ))
    return rec


def test_ablation_mode_models(benchmark, bench_qs, out_dir):
    holder = {}

    def run():
        holder["samples"] = measure_mode_sweep(
            StatesKernel().compute, bench_qs, nprocs=2, repeats=3,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    rec = record_from_sweep(holder["samples"])

    pooled = build_model("States[pooled]", rec.param_series("Q"),
                         rec.wall_series(), mean_families=("linear", "power"),
                         min_bin_count=2)
    modal = build_modal_model(rec, mean_families=("linear", "power"),
                              min_bin_count=2)
    rms_pooled, rms_modal = variance_explained(rec, modal, pooled)
    qtop = float(rec.param_series("Q").max())
    ratio_top = float(modal.mode_ratio(qtop))

    table = format_table(
        ["model", "residual RMS (us)"],
        [("pooled (paper's averaging)", f"{rms_pooled:.1f}"),
         ("per-mode (this ablation)", f"{rms_modal:.1f}")],
        title="Ablation: mode-aware models vs the paper's mode averaging "
              f"(States sweep, {len(rec)} invocations)",
    )
    ratio_text = (f"modal prediction of the Figure-5 stride ratio at "
                  f"Q={int(qtop)}: {ratio_top:.2f}")
    write_out(out_dir, "ablation_mode_models.txt", table + "\n" + ratio_text)

    # Mode awareness must not hurt, and the modal model must see the
    # strided penalty at the top of the sweep.
    assert rms_modal <= rms_pooled * 1.02
    assert ratio_top > 1.0
    benchmark.extra_info["rms_pooled"] = round(rms_pooled, 1)
    benchmark.extra_info["rms_modal"] = round(rms_modal, 1)
    benchmark.extra_info["stride_ratio_at_max_q"] = round(ratio_top, 3)
