"""Figure 3: the FUNCTION SUMMARY profile of the instrumented case study.

Regenerates the paper's timing-profile table (mean over 3 processors) and
times one full instrumented run.
"""

from conftest import write_out

from repro.harness.figures import fig3_profile


def test_fig3_profile_summary(benchmark, bench_config, out_dir):
    result_holder = {}

    def run():
        result_holder["res"] = fig3_profile(bench_config)
        return result_holder["res"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    res = result_holder["res"]

    write_out(out_dir, "fig3_function_summary.txt", res.render())

    # Reproduction criteria (paper: ~25% in MPI_Waitsome; proxy compute
    # methods keep a visible share — smaller than the paper's now that the
    # batched kernels cut the monitored compute time).
    assert res.rows[0][5].startswith("int main")
    assert res.mpi_fraction > 0.05
    assert res.proxy_fractions["g_proxy::compute()"] > 0.02
    assert res.proxy_fractions["sc_proxy::compute()"] > 0.02
    benchmark.extra_info["mpi_fraction"] = round(res.mpi_fraction, 4)
    benchmark.extra_info["top_rows"] = [r[5] for r in res.rows[:4]]
