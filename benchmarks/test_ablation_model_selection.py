"""Ablation: regression-family selection by AIC.

The paper picks its functional forms (power law for States, linear for the
flux components) by inspection; this bench verifies that AIC model
selection recovers those choices on synthetic data with the paper's own
coefficients, and reports the families chosen on our measured data.
"""

import numpy as np
from conftest import write_out

from repro.harness.figures import fig6_states_model, fig8_efm_model
from repro.models.fits import select_best
from repro.util.tabular import format_table


def test_ablation_model_selection(benchmark, bench_qs, out_dir):
    rng = np.random.default_rng(0)
    q = np.geomspace(1e3, 1.5e5, 12)

    # Paper Eq. 1 forms with 3% multiplicative noise.
    t_states = np.exp(1.19 * np.log(q) - 3.68) * rng.lognormal(0, 0.03, q.size)
    t_god = np.maximum(-963 + 0.315 * q, 1.0) + rng.normal(0, 30, q.size)
    t_efm = np.maximum(-8.13 + 0.16 * q, 1.0) + rng.normal(0, 15, q.size)

    best_states = select_best(q, t_states, families=("linear", "power", "exponential"))
    best_god = select_best(q, t_god, families=("linear", "power"))
    best_efm = select_best(q, t_efm, families=("linear", "power"))

    rows = [
        ("States (paper data)", "power", best_states.family,
         f"{best_states.r2:.4f}"),
        ("GodunovFlux (paper data)", "linear", best_god.family,
         f"{best_god.r2:.4f}"),
        ("EFMFlux (paper data)", "linear", best_efm.family,
         f"{best_efm.r2:.4f}"),
    ]

    # Families selected on data measured from our kernels.
    qs = bench_qs[:5]
    f6 = fig6_states_model(qs, nprocs=1, repeats=2)
    f8 = fig8_efm_model(qs, nprocs=1, repeats=2)
    rows.append(("States (measured)", "-", f6.model.mean_fit.family,
                 f"{f6.model.mean_fit.r2:.4f}"))
    rows.append(("EFMFlux (measured)", "-", f8.model.mean_fit.family,
                 f"{f8.model.mean_fit.r2:.4f}"))

    table = format_table(
        ["dataset", "paper family", "AIC-selected", "R^2"],
        rows,
        title="Ablation: functional-form selection by AIC",
    )
    write_out(out_dir, "ablation_model_selection.txt", table)

    assert best_states.family == "power"
    assert best_god.family == "linear"
    assert best_efm.family == "linear"
    # The paper's exponent is recovered from its own functional form.
    assert best_states.coeffs[1] == pytest_approx(1.19, 0.05)

    benchmark(lambda: select_best(q, t_states, families=("linear", "power")))


def pytest_approx(value, tol):
    import pytest

    return pytest.approx(value, abs=tol)
