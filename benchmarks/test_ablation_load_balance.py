"""Ablation: knapsack load balancing vs naive round-robin.

The paper's AMRMesh performs "load-balancing and domain (re-)
decomposition"; this bench quantifies what the balancer buys on the actual
post-regrid patch populations of the case study.
"""

import dataclasses

from conftest import write_out

from repro.harness.casestudy import run_case_study
from repro.util.tabular import format_table


def test_ablation_load_balance(benchmark, bench_config, out_dir):
    holder = {}

    def run():
        for balancer in ("knapsack", "round_robin"):
            cfg = dataclasses.replace(bench_config, balancer=balancer)
            cfg = dataclasses.replace(
                cfg, params=dataclasses.replace(cfg.params, steps=2))
            holder[balancer] = run_case_study(cfg)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    imbalances = {}
    for balancer, res in holder.items():
        # Post-run per-rank wall time spent in the flux component is the
        # observable consequence of the decomposition.
        flux_us = []
        for harvest in res.extras:
            rec = harvest.records[("g_proxy", "compute")]
            flux_us.append(rec.total_wall_us())
        mean = sum(flux_us) / len(flux_us)
        imbalance = max(flux_us) / mean if mean > 0 else 1.0
        imbalances[balancer] = imbalance
        rows.append((balancer, f"{mean / 1000:.1f}", f"{imbalance:.3f}"))

    table = format_table(
        ["balancer", "mean flux ms/rank", "max/mean imbalance"],
        rows,
        title="Ablation: load balancing strategy (case-study regrids)",
    )
    write_out(out_dir, "ablation_load_balance.txt", table)

    # Knapsack should not be (meaningfully) worse than round-robin.
    assert imbalances["knapsack"] <= imbalances["round_robin"] * 1.25
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in imbalances.items()}
    )
