"""Static-analysis engine microbench (the ISSUE-10 acceptance gate).

Measures the whole-program engine over the real ``src/`` tree:

* cold full-tree analysis time (parse + extract + symbol table + call
  graph + flow rules), trend-only — absolute wall-clock on shared CI
  runners is too noisy to gate;
* incremental re-run of the *unchanged* tree against the content-hash
  cache, as a cold/warm speedup ratio — machine-independent, gated with a
  >= 5x floor (the acceptance criterion);
* one-file-edited incremental run, trend-only, to keep the
  invalidation-scope story honest (it should track the warm time, not
  the cold time).

Writes ``benchmarks/out/microbench_analysis.txt`` and the
``BENCH_analysis.json`` trajectory cells (committed baseline at the repo
root; CI regenerates and gates against it).
"""

from __future__ import annotations

import os
import shutil

import numpy as np

from benchmarks.conftest import SMOKE, write_out
from repro.analysis.engine import analyze_paths
from repro.bench import record_cell, record_cell_samples
from repro.harness.sweeps import time_call

TRAJECTORY = os.path.join(os.path.dirname(__file__), "out",
                          "BENCH_analysis.json")

#: the incremental-rerun speedup floor from the issue's acceptance criteria
SPEEDUP_FLOOR = 5.0


def _copy_tree(dst_root: str) -> str:
    """A private copy of src/ so cache files and edits never touch the repo."""
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    dst = os.path.join(dst_root, "src")
    shutil.copytree(os.path.abspath(src), dst)
    return dst


def _ms(fn) -> float:
    return time_call(fn) / 1000.0


def test_full_tree_and_incremental_speedup(out_dir, tmp_path):
    tree = _copy_tree(str(tmp_path))
    cache = str(tmp_path / "ra_cache.json")
    repeats = 2 if SMOKE else 5

    cold_ms, warm_ms, edited_ms = [], [], []
    for _ in range(repeats):
        if os.path.exists(cache):
            os.remove(cache)
        cold_ms.append(_ms(lambda: analyze_paths([tree], cache_path=cache)))
        warm_ms.append(_ms(lambda: analyze_paths([tree], cache_path=cache)))
        # Touch one mid-size module: only it should re-extract.
        victim = os.path.join(tree, "repro", "amr", "ghost.py")
        with open(victim, "a", encoding="utf-8") as fh:
            fh.write("\n# bench edit marker\n")
        edited_ms.append(_ms(lambda: analyze_paths([tree], cache_path=cache)))

    cold = float(np.median(cold_ms))
    warm = float(np.median(warm_ms))
    edited = float(np.median(edited_ms))
    speedups = [c / w for c, w in zip(cold_ms, warm_ms)]
    speedup = float(np.median(speedups))

    record_cell_samples(TRAJECTORY, "analysis_full_tree_ms", cold_ms,
                        unit="ms", gate=False,
                        meta={"files": "src/", "smoke": SMOKE})
    record_cell_samples(TRAJECTORY, "analysis_incremental_speedup_x",
                        speedups, unit="x", higher_is_better=True, gate=True,
                        meta={"floor": SPEEDUP_FLOOR, "smoke": SMOKE})
    record_cell(TRAJECTORY, "analysis_one_file_edit_ms", edited,
                unit="ms", gate=False, meta={"edited": "repro/amr/ghost.py"})

    write_out(out_dir, "microbench_analysis.txt", "\n".join([
        "static-analysis engine microbench (src/ tree)",
        f"  full tree (cold cache): {cold:.1f} ms",
        f"  unchanged rerun (warm): {warm:.1f} ms",
        f"  one file edited:        {edited:.1f} ms",
        f"  incremental speedup:    {speedup:.1f}x (floor {SPEEDUP_FLOOR}x)",
    ]))

    # The acceptance floor. Ratio of two same-machine runs, so it holds on
    # slow shared runners just as it does locally.
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental rerun only {speedup:.1f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x)")
    # Invalidation scope: an edited run re-extracts one file, so it must
    # stay much closer to warm than to cold.
    assert edited < cold, "one-file edit should not pay the full cold cost"


def test_incremental_findings_identical_to_cold(tmp_path):
    """Speed without soundness is worthless: cold and warm runs over the
    same tree must produce byte-identical findings."""
    tree = _copy_tree(str(tmp_path))
    cache = str(tmp_path / "ra_cache.json")
    cold = analyze_paths([tree], cache_path=cache)
    warm = analyze_paths([tree], cache_path=cache)
    assert warm.stats["cache_hits"] == warm.stats["files"]
    assert ([f.format() for f in cold.findings]
            == [f.format() for f in warm.findings])
