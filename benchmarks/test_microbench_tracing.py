"""Tracing-tax microbench: case-study wall time off / sampled / full.

Writes ``benchmarks/out/microbench_tracing.txt`` with the measured and
self-reported overhead of the observability layer.  The tracer's
*self-reported* cost must stay under 10% of the run's wall time; in
non-smoke runs (median of several repeats) the measured off-vs-full wall
inflation must additionally stay under a loose 25% hard bound.  Wall
comparisons of sub-second threaded runs are noisy; the self-report is
the precise instrument.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import SMOKE, write_out
from repro.cca.scmd import MAIN_TIMER
from repro.euler.ports import DriverParams
from repro.harness.casestudy import CaseStudyConfig, run_case_study
from repro.mpi.network import NetworkModel
from repro.obs import ObsConfig, collect


def _config(observe):
    # Patch sizes large enough that kernel work dominates per-op tracing
    # cost — the representative regime; a pure message-storm microloop
    # would measure Python allocation speed, not the tracing design.
    return CaseStudyConfig(
        params=DriverParams(nx=64, ny=64, steps=2, max_patch_cells=16384),
        nranks=3,
        network=NetworkModel(latency_us=500.0, bandwidth_bytes_per_us=16.0,
                             jitter_sigma=0.0),
        observe=observe,
    )


def _main_wall_us(res):
    return sum(snap[MAIN_TIMER].inclusive_us for snap in res.timer_snapshots)


def test_tracing_overhead(out_dir):
    repeats = 1 if SMOKE else 3
    variants = {"off": None, "sampled": ObsConfig(sample_every=16),
                "full": ObsConfig()}
    # One warmup of each variant, then interleaved repeats so allocator
    # state and CPU-frequency drift cancel (the conftest paired-timing
    # argument, applied to whole runs).
    results = {name: run_case_study(_config(obs))
               for name, obs in variants.items()}
    walls: dict[str, list[float]] = {name: [] for name in variants}
    for _ in range(repeats):
        for name, obs in variants.items():
            t0 = time.perf_counter()
            results[name] = run_case_study(_config(obs))
            walls[name].append(time.perf_counter() - t0)
    t_off, t_sampled, t_full = (float(np.median(walls[k]))
                                for k in ("off", "sampled", "full"))
    res_sampled, res_full = results["sampled"], results["full"]

    pct_sampled = 100.0 * (t_sampled - t_off) / t_off
    pct_full = 100.0 * (t_full - t_off) / t_off

    # Self-reported tax: the tracer's own sampled clock-read accounting,
    # relative to the summed per-rank main-timer walls.
    def self_pct(res):
        dump = collect(res)
        tax = sum(rep["self_overhead_us"]
                  for rep in dump.overhead_by_rank.values())
        return 100.0 * tax / _main_wall_us(res), dump

    self_sampled, dump_sampled = self_pct(res_sampled)
    self_full, dump_full = self_pct(res_full)

    lines = [
        "Tracing overhead microbench (3-rank case study, median of "
        f"{repeats} run(s))",
        f"  off:     {t_off:8.3f} s",
        f"  sampled: {t_sampled:8.3f} s  ({pct_sampled:+6.2f}% wall, "
        f"self-reported {self_sampled:.3f}%, "
        f"{len(dump_sampled.spans)} spans)",
        f"  full:    {t_full:8.3f} s  ({pct_full:+6.2f}% wall, "
        f"self-reported {self_full:.3f}%, "
        f"{len(dump_full.spans)} spans)",
        f"  sampled_out (1-in-16): "
        f"{sum(dump_sampled.sampled_out_by_rank.values())} spans skipped",
    ]
    write_out(out_dir, "microbench_tracing.txt", "\n".join(lines))
    print("\n".join(lines))

    # Acceptance: full tracing pays < 10% by its own accounting; and the
    # wall-clock comparison stays under a loose bound.  The wall bound
    # needs a median of several runs to be meaningful — a single sample
    # of a sub-second threaded run swings tens of percent on scheduler
    # noise alone — so it is asserted only in non-smoke mode.
    assert self_full < 10.0, f"self-reported tracing tax {self_full:.2f}% >= 10%"
    assert self_sampled < 10.0
    if not SMOKE:
        assert pct_full < 25.0, f"measured tracing overhead {pct_full:.1f}% >= 25%"
