"""Tracing-tax microbench: case-study wall time off / sampled / full.

Writes ``benchmarks/out/microbench_tracing.txt`` with the measured and
self-reported overhead of the observability layer.  The tracer's
*self-reported* cost must stay under 10% of the run's wall time; in
non-smoke runs (median of several repeats) the measured off-vs-full wall
inflation must additionally stay under a loose 25% hard bound.  Wall
comparisons of sub-second threaded runs are noisy; the self-report is
the precise instrument.

The adaptive bench additionally gates the observability SLO of the
``BENCH_obs.json`` trajectory: with ``ObsConfig(adaptive=True)`` the
sampling controller must keep the self-reported tracing tax at or under
its 2% budget on a case-study run, flight recorder on.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import SMOKE, paired_median_us, write_out
from repro.bench import record_cell
from repro.cca.scmd import MAIN_TIMER
from repro.euler.ports import DriverParams
from repro.harness.casestudy import CaseStudyConfig, run_case_study
from repro.mpi.network import NetworkModel
from repro.obs import FlightRecorder, ObsConfig, collect
from repro.obs.span import CAT_COMPUTE, SpanTracer

TRAJECTORY = os.path.join(os.path.dirname(__file__), "out",
                          "BENCH_obs.json")

#: the observability SLO (mirrored by the committed baseline cell): the
#: adaptive controller's overhead budget in percent of wall clock
TAX_BUDGET_PCT = 2.0


def _config(observe):
    # Patch sizes large enough that kernel work dominates per-op tracing
    # cost — the representative regime; a pure message-storm microloop
    # would measure Python allocation speed, not the tracing design.
    return CaseStudyConfig(
        params=DriverParams(nx=64, ny=64, steps=2, max_patch_cells=16384),
        nranks=3,
        network=NetworkModel(latency_us=500.0, bandwidth_bytes_per_us=16.0,
                             jitter_sigma=0.0),
        observe=observe,
    )


def _main_wall_us(res):
    return sum(snap[MAIN_TIMER].inclusive_us for snap in res.timer_snapshots)


def test_tracing_overhead(out_dir):
    repeats = 1 if SMOKE else 3
    variants = {"off": None, "sampled": ObsConfig(sample_every=16),
                "full": ObsConfig()}
    # One warmup of each variant, then interleaved repeats so allocator
    # state and CPU-frequency drift cancel (the conftest paired-timing
    # argument, applied to whole runs).
    results = {name: run_case_study(_config(obs))
               for name, obs in variants.items()}
    walls: dict[str, list[float]] = {name: [] for name in variants}
    for _ in range(repeats):
        for name, obs in variants.items():
            t0 = time.perf_counter()
            results[name] = run_case_study(_config(obs))
            walls[name].append(time.perf_counter() - t0)
    t_off, t_sampled, t_full = (float(np.median(walls[k]))
                                for k in ("off", "sampled", "full"))
    res_sampled, res_full = results["sampled"], results["full"]

    pct_sampled = 100.0 * (t_sampled - t_off) / t_off
    pct_full = 100.0 * (t_full - t_off) / t_off

    # Self-reported tax: the tracer's own sampled clock-read accounting,
    # relative to the summed per-rank main-timer walls.
    def self_pct(res):
        dump = collect(res)
        tax = sum(rep["self_overhead_us"]
                  for rep in dump.overhead_by_rank.values())
        return 100.0 * tax / _main_wall_us(res), dump

    self_sampled, dump_sampled = self_pct(res_sampled)
    self_full, dump_full = self_pct(res_full)

    lines = [
        "Tracing overhead microbench (3-rank case study, median of "
        f"{repeats} run(s))",
        f"  off:     {t_off:8.3f} s",
        f"  sampled: {t_sampled:8.3f} s  ({pct_sampled:+6.2f}% wall, "
        f"self-reported {self_sampled:.3f}%, "
        f"{len(dump_sampled.spans)} spans)",
        f"  full:    {t_full:8.3f} s  ({pct_full:+6.2f}% wall, "
        f"self-reported {self_full:.3f}%, "
        f"{len(dump_full.spans)} spans)",
        f"  sampled_out (1-in-16): "
        f"{sum(dump_sampled.sampled_out_by_rank.values())} spans skipped",
    ]
    write_out(out_dir, "microbench_tracing.txt", "\n".join(lines))
    print("\n".join(lines))

    # Acceptance: full tracing pays < 10% by its own accounting; and the
    # wall-clock comparison stays under a loose bound.  The wall bound
    # needs a median of several runs to be meaningful — a single sample
    # of a sub-second threaded run swings tens of percent on scheduler
    # noise alone — so it is asserted only in non-smoke mode.
    assert self_full < 10.0, f"self-reported tracing tax {self_full:.2f}% >= 10%"
    assert self_sampled < 10.0
    if not SMOKE:
        assert pct_full < 25.0, f"measured tracing overhead {pct_full:.1f}% >= 25%"

    # Trend cell (ungated): the full-tracing tax across PRs.
    record_cell(TRAJECTORY, "tracing_tax_full_pct", self_full, unit="pct",
                gate=False,
                meta={"note": "self-reported 1-in-16 accounting, full "
                              "tracing, 3-rank case study"})


def _self_tax_pct(res) -> float:
    """Self-reported tracing tax over the summed main-timer walls."""
    dump = collect(res)
    tax = sum(rep["self_overhead_us"]
              for rep in dump.overhead_by_rank.values())
    return 100.0 * tax / _main_wall_us(res)


def test_adaptive_sampler_holds_tax_budget(out_dir):
    """The ISSUE-8 acceptance gate: adaptive tax <= budget, recorder on.

    The flight recorder is deliberately enabled — it adds per-span cost,
    which is exactly the pressure the controller exists to absorb by
    tightening the compute-span sampling rate.
    """
    obs = ObsConfig(adaptive=True, tax_budget_pct=TAX_BUDGET_PCT,
                    flight_recorder=True,
                    flightrec_dir=os.path.join(out_dir, "flightrec-bench"))
    res = run_case_study(_config(obs))
    tax = _self_tax_pct(res)
    dump = collect(res)
    rates = {r: s["rates"] for r, s in sorted(dump.sampler_by_rank.items())}
    decisions = sum(len(s["decisions"])
                    for s in dump.sampler_by_rank.values())

    lines = [
        "Adaptive sampling budget bench (3-rank case study, recorder on)",
        f"  budget:  {TAX_BUDGET_PCT:.1f}% of wall clock",
        f"  tax:     {tax:.3f}% self-reported",
        f"  spans:   {len(dump.spans)} kept, "
        f"{sum(dump.sampled_out_by_rank.values())} sampled out",
        f"  control: {decisions} rate decision(s), final rates {rates}",
    ]
    write_out(out_dir, "microbench_tracing_adaptive.txt", "\n".join(lines))
    print("\n".join(lines))

    # The controller reported on every rank, and any tightening it did is
    # visible as recorded decisions.
    assert set(dump.sampler_by_rank) == {0, 1, 2}
    record_cell(TRAJECTORY, "tracing_tax_adaptive_pct", tax, unit="pct",
                gate=True,
                meta={"note": f"SLO: adaptive controller must hold the "
                              f"self-reported tax <= {TAX_BUDGET_PCT}% "
                              "(committed cell is the budget itself)"})
    assert tax <= TAX_BUDGET_PCT, (
        f"adaptive tracing tax {tax:.3f}% exceeds the "
        f"{TAX_BUDGET_PCT}% budget (rates {rates})")


def test_flight_recorder_span_overhead(out_dir):
    """Per-span cost of the black-box ring, measured by paired timing."""
    n_spans = 1_000
    repeats = 3 if SMOKE else 20
    plain = SpanTracer(rank=0, max_spans=10 * n_spans)
    taped = SpanTracer(rank=0, max_spans=10 * n_spans)
    taped.attach_recorder(FlightRecorder(0))

    def spin(tr):
        def run():
            for _ in range(n_spans):
                tr.end(tr.start("w", CAT_COMPUTE))
        return run

    t_plain, t_taped, diff = paired_median_us(
        spin(plain), spin(taped), n=repeats, warmup=2)
    pct = 100.0 * diff / t_plain
    per_span_ns = 1e3 * diff / n_spans
    lines = [
        f"Flight-recorder overhead ({n_spans} spans/run, median of "
        f"{repeats}):",
        f"  plain tracer: {t_plain:9.1f} us",
        f"  with ring:    {t_taped:9.1f} us  "
        f"({pct:+.2f}%, {per_span_ns:+.0f} ns/span)",
    ]
    write_out(out_dir, "microbench_flightrec.txt", "\n".join(lines))
    print("\n".join(lines))
    record_cell(TRAJECTORY, "flightrec_overhead_pct", pct, unit="pct",
                gate=False,
                meta={"note": "paired-timing delta of the span ring on a "
                              "tight open/close loop; trend only"})
    # A deque append must not double the tracer's hot path.
    assert pct < 100.0, f"flight recorder added {pct:.1f}% to span cost"
