"""Figure 5: ratio of strided to sequential States timings vs Q.

Paper: ratio ~1 for cache-resident arrays rising toward ~4 for the largest
(on a 512 kB-L2 Xeon; amplitude is host-cache-dependent, shape reproduced).
The line-sweep ratio is the figure's observable; the batched sweep's ratio
is recorded alongside it to show the asymmetry survives batching.
"""

from conftest import write_out

from repro.euler.states import StatesKernel
from repro.harness.figures import fig4_states_modes, fig5_stride_ratio
from repro.harness.sweeps import synthetic_patch_stack


def test_fig5_stride_ratio(benchmark, bench_qs, out_dir, smoke):
    repeats = 1 if smoke else 3
    fig4 = fig4_states_modes(bench_qs, nprocs=3, repeats=repeats, batch=False)
    fig5 = fig5_stride_ratio(fig4)
    fig4_b = fig4_states_modes(bench_qs, nprocs=3, repeats=repeats, batch=True)
    fig5_b = fig5_stride_ratio(fig4_b)
    write_out(
        out_dir, "fig5_stride_ratio.txt",
        fig5.render() + "\n\nbatched sweep (cache-blocked tiles):\n"
        + fig5_b.render(),
    )

    # Near parity at the smallest size; penalty does not shrink with Q.
    assert 0.7 < fig5.ratio[0] < 1.6
    assert fig5.ratio.max() >= fig5.ratio[0]
    benchmark.extra_info["ratio_min_q"] = round(float(fig5.ratio[0]), 3)
    benchmark.extra_info["ratio_max"] = round(float(fig5.ratio.max()), 3)
    # Batched sweep: at cache-busting sizes the strided penalty keeps its
    # sign (tiling shrinks its magnitude); small-Q ratios are noise-parity.
    assert fig5_b.ratio[-1] >= 0.85
    benchmark.extra_info["batched_ratio_at_max_q"] = round(float(fig5_b.ratio[-1]), 3)

    kern = StatesKernel()
    U = synthetic_patch_stack(bench_qs[-1])
    benchmark(lambda: kern.compute(U, "x"))
