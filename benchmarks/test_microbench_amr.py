"""Microbenchmarks of the AMR substrate.

Characterizes the Berger-Rigoutsos clustering and the ghost-exchange
planning/execution path at case-study-like sizes.
"""

import numpy as np
from conftest import write_out

from repro.amr import Box, GridHierarchy, cluster_flags
from repro.amr.ghost import execute_transfers, plan_same_level_exchange


def _shock_flags(n=256):
    flags = np.zeros((n, n), dtype=bool)
    j = n // 2
    flags[:, j - 2 : j + 2] = True  # shock column
    flags[n // 4 : n // 2, 3 * n // 4 :] = True  # interface blob
    return flags


def test_microbench_clustering(benchmark, out_dir):
    n = 256
    flags = _shock_flags(n)
    origin = Box(0, 0, n - 1, n - 1)

    boxes = benchmark(lambda: cluster_flags(flags, origin, min_fill=0.7,
                                            max_cells=4096, min_width=4))
    covered = sum(b.ncells for b in boxes)
    write_out(out_dir, "microbench_amr_clustering.txt",
              f"{len(boxes)} boxes covering {covered} cells for "
              f"{int(flags.sum())} flags on a {n}x{n} level")
    assert boxes


def _build_level():
    h = GridHierarchy(Box(0, 0, 127, 127), ["rho", "mx", "my", "E"],
                      max_levels=1)
    h.init_level0(blocks=(4, 4))
    for p in h.levels[0]:
        for f in h.fields:
            p.data(f)[...] = 1.0
    return h


def test_microbench_ghost_plan(benchmark):
    h = _build_level()
    plan = benchmark(lambda: plan_same_level_exchange(h.levels[0]))
    assert plan  # 4x4 grid of patches has many abutting pairs


def test_microbench_ghost_execute_local(benchmark):
    h = _build_level()
    plan = plan_same_level_exchange(h.levels[0])
    benchmark(lambda: execute_transfers(plan, h.fields, comm=None))


def test_microbench_regrid(benchmark):
    def run():
        h = GridHierarchy(Box(0, 0, 63, 63), ["rho"], max_levels=3,
                          max_patch_cells=1024)
        h.init_level0()
        h.fill(0, lambda X, Y: {"rho": np.where(X < 0.5, 1.0, 4.0)})
        h.regrid()
        return len(h.levels[1])

    n_fine = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n_fine > 0
