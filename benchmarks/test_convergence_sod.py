"""Solver validation bench: L1 convergence on the exact Sod solution.

Not a paper figure — a correctness benchmark for the substrate the paper's
measurements ride on: the component solver's density profile is compared
against the exact Riemann solution, for both flux implementations, over a
resolution sweep.  The paper's QoS observation (GodunovFlux "is more
accurate") is quantified here.
"""

import numpy as np
from conftest import write_out

from repro.cca import Framework
from repro.euler import (AMRMeshComponent, DriverParams, EFMFluxComponent,
                         GodunovFluxComponent, InviscidFluxComponent,
                         RK2Component, StatesComponent, SOD_LEFT, SOD_RIGHT,
                         sod_exact)
from repro.harness.visualization import assemble_level_field
from repro.util.tabular import format_table


def run_sod(nx: int, flux_cls, steps: int):
    params = DriverParams(nx=nx, ny=8, max_levels=1, steps=steps,
                          regrid_every=0, blocks=(1, 2), cfl=0.4)
    fw = Framework()
    fw.create("states", StatesComponent)
    fw.create("flux", flux_cls)
    fw.create("inviscid", InviscidFluxComponent)
    fw.create("rk2", RK2Component)
    mesh = fw.create("mesh", AMRMeshComponent, params=params)
    fw.connect("inviscid", "states", "states", "states")
    fw.connect("inviscid", "flux", "flux", "flux")
    fw.connect("rk2", "mesh", "mesh", "mesh")
    fw.connect("rk2", "rhs", "inviscid", "rhs")

    def sod_ic(X, Y):
        rho = np.where(X < 0.5, SOD_LEFT[0], SOD_RIGHT[0])
        p = np.where(X < 0.5, SOD_LEFT[2], SOD_RIGHT[2])
        zero = np.zeros_like(rho)
        return {"rho": rho, "mx": zero, "my": zero, "E": p / 0.4}

    mesh.initialize(sod_ic)
    rk2 = fw.component("rk2")
    t = 0.0
    for _ in range(steps):
        dt = rk2.compute_dt(0.4)
        rk2.advance(0, dt)
        t += dt
    h = mesh.hierarchy()
    data = assemble_level_field(h, "rho", 0)
    mid = data[data.shape[0] // 2, :]
    dx, _ = h.dx(0)
    x = (np.arange(mid.size) + 0.5) * dx
    exact, _u, _p = sod_exact(x, t)
    return float(np.mean(np.abs(mid - exact)))


def test_convergence_sod(benchmark, out_dir):
    resolutions = [(64, 10), (128, 20), (256, 40)]
    holder = {}

    def run():
        for flux_name, flux_cls in (("Godunov", GodunovFluxComponent),
                                    ("EFM", EFMFluxComponent)):
            for nx, steps in resolutions:
                holder[(flux_name, nx)] = run_sod(nx, flux_cls, steps)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (flux_name, nx), err in sorted(holder.items()):
        rows.append((flux_name, nx, f"{err:.5f}"))
    write_out(out_dir, "convergence_sod.txt", format_table(
        ["flux", "nx", "L1 density error vs exact"],
        rows,
        title="Sod shock tube: solver error against the exact solution",
    ))

    # Errors shrink with resolution for both implementations.
    for flux_name in ("Godunov", "EFM"):
        errs = [holder[(flux_name, nx)] for nx, _ in resolutions]
        assert errs[0] > errs[1] > errs[2]
    # Godunov is the more accurate implementation at every resolution (QoS).
    for nx, _ in resolutions:
        assert holder[("Godunov", nx)] < holder[("EFM", nx)]
    benchmark.extra_info["l1_errors"] = {
        f"{k[0]}@{k[1]}": round(v, 5) for k, v in holder.items()
    }
