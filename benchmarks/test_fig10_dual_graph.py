"""Figure 10: the application dual and model-guided assembly optimization.

Paper: a directed graph with invocation-count edge weights and
model-predicted compute/comm vertex weights; the composite model serves as
the cost function selecting among flux implementations, with QoS (accuracy)
able to flip the choice.
"""

import dataclasses

from conftest import write_out

from repro.harness.figures import fig10_dual_graph


def test_fig10_dual_graph(benchmark, bench_config, out_dir):
    cfg_efm = dataclasses.replace(bench_config, flux="efm")
    cfg_god = dataclasses.replace(bench_config, flux="godunov")
    holder = {}

    def run():
        holder["res"] = fig10_dual_graph(cfg_efm, cfg_god)
        return holder["res"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    res = holder["res"]
    write_out(out_dir, "fig10_dual_graph.txt", res.render())

    assert res.dual_edges, "dual must carry invocation-weighted edges"
    assert res.dual_nodes["amr_proxy::ghost_update()"]["comm_us"] > 0
    assert res.optimization.best.binding_names()["flux"] == "EFMFlux"
    assert res.qos_optimization.best.binding_names()["flux"] == "GodunovFlux"
    benchmark.extra_info["cost_pick"] = res.optimization.best.binding_names()
    benchmark.extra_info["qos_pick"] = res.qos_optimization.best.binding_names()
