"""Serving-stack load test: throughput and latency SLO gate.

Drives a seeded request mix (single predictions, batched predictions,
catalog and metrics reads) through the in-process :class:`ModelServer`
with the micro-batcher and prediction cache enabled, then gates the
results in the ``BENCH_serving.json`` trajectory:

* ``serve_throughput_rps`` — must stay above the SLO floor committed in
  the repo-root baseline (2,000 req/s);
* ``serve_latency_p50_us`` — recorded from the raw latency samples via
  :func:`record_cell_samples` (median + seeded-bootstrap CI, gated on
  the median);
* ``serve_latency_p99_us`` — the tail SLO (50 ms ceiling).

Unlike the scaling cells (which ratchet against the previous best), the
committed serving baseline *is* the SLO: the gate fails only when the
service can no longer meet the absolute budget on the CI runner.

Also asserts the batching correctness contract: a batched prediction is
bitwise-identical to the same query issued alone.
"""

from __future__ import annotations

import asyncio
import json
import os

import numpy as np
from conftest import SMOKE, write_out

from repro.bench import record_cell, record_cell_samples
from repro.models.performance import build_model
from repro.models.serialize import ModelRepository
from repro.serve import ModelServer, ServeConfig
from repro.serve.loadgen import LoadMix, run_load
from repro.util.rng import make_rng

TRAJECTORY = os.path.join(os.path.dirname(__file__), "out",
                          "BENCH_serving.json")

TOTAL_REQUESTS = 2_500 if SMOKE else 10_000
CONCURRENCY = 16

#: the serving SLO (mirrored by the committed baseline cells)
SLO_THROUGHPUT_RPS = 2_000.0
SLO_P99_US = 50_000.0


def build_model_repo(tmpdir: str) -> str:
    """A repository resembling the case study's fitted models."""
    repo = ModelRepository(tmpdir)
    rng = make_rng(7)
    q = np.repeat([1e3, 5e3, 2e4, 8e4, 3e5], 8)
    for comp, slope, func in (("GodunovFlux", 0.315, "flux"),
                              ("EFMFlux", 0.16, "flux")):
        for mode, scale in (("sequential", 1.0), ("strided", 1.8)):
            t = 25.0 + slope * scale * q + rng.normal(0, 4.0, q.size)
            repo.store(func, build_model(
                f"{comp}[{mode}]", q, t, mean_families=("linear",),
                quality=0.9 if comp == "GodunovFlux" else 0.75))
    for mode, scale in (("x", 1.0), ("y", 1.45)):
        t = np.exp(1.19 * np.log(q) - 3.68) * scale \
            * np.exp(rng.normal(0, 0.02, q.size))
        repo.store("states", build_model(
            f"States[{mode}]", q, t, mean_families=("power",), quality=1.0))
    return tmpdir


def test_serving_load_slo(benchmark, out_dir, tmp_path):
    models_dir = build_model_repo(str(tmp_path / "models"))
    holder = {}

    async def drive():
        async with ModelServer(models_dir, ServeConfig()) as server:
            holder["stats"] = await run_load(
                server, total=TOTAL_REQUESTS, concurrency=CONCURRENCY,
                seed=0, mix=LoadMix())
            holder["server"] = server

    benchmark.pedantic(lambda: asyncio.run(drive()), rounds=1, iterations=1)

    stats, server = holder["stats"], holder["server"]
    assert stats.errors == 0, stats.status_counts
    assert stats.requests == TOTAL_REQUESTS

    lat = np.asarray(stats.latencies_us)
    record_cell(TRAJECTORY, "serve_throughput_rps", stats.throughput_rps,
                unit="rps", higher_is_better=True,
                meta={"requests": TOTAL_REQUESTS,
                      "concurrency": CONCURRENCY,
                      "cpu_count": os.cpu_count(), "smoke": SMOKE})
    record_cell_samples(TRAJECTORY, "serve_latency_p50_us", lat,
                        meta={"requests": TOTAL_REQUESTS,
                              "concurrency": CONCURRENCY})
    record_cell(TRAJECTORY, "serve_latency_p99_us", stats.p99_us,
                meta={"requests": TOTAL_REQUESTS,
                      "concurrency": CONCURRENCY})

    cache = server.cache
    write_out(out_dir, "serving_load.txt", "\n".join([
        "Serving load test (in-process, micro-batched, cached)",
        "",
        stats.format(),
        f"cache:       {cache.hits} hits / {cache.misses} misses "
        f"({cache.hit_rate():.1%}), {cache.evictions} evictions",
        f"model set:   {server.store.snapshot.version} "
        f"({len(server.store.snapshot)} models)",
        f"SLO:         >= {SLO_THROUGHPUT_RPS:,.0f} req/s, "
        f"p99 < {SLO_P99_US / 1e3:.0f} ms",
    ]))

    # The SLO itself (the trajectory gate enforces the same numbers
    # against the committed baseline).
    assert stats.throughput_rps >= SLO_THROUGHPUT_RPS, stats.format()
    assert stats.p99_us < SLO_P99_US, stats.format()
    # The batcher must actually coalesce under concurrent load.
    hist = server.metrics.histogram("serve_batch_size")
    assert hist.count > 0
    assert cache.hits > 0
    benchmark.extra_info["throughput_rps"] = round(stats.throughput_rps)
    benchmark.extra_info["p99_us"] = round(stats.p99_us, 1)


def test_batched_bitwise_equals_single(tmp_path):
    """Acceptance: batch evaluation is bitwise-equal to single requests."""
    models_dir = build_model_repo(str(tmp_path / "models"))
    qs = [512.0, 1.3e3, 7.7e3, 4.2e4, 1.1e5, 2.9e5]
    queries = [{"component": c, "mode": m, "q": q}
               for q in qs
               for c, m in (("GodunovFlux", "strided"),
                            ("States", "y"), ("EFMFlux", "sequential"))]

    async def singles():
        preds = []
        async with ModelServer(models_dir, ServeConfig()) as server:
            for obj in queries:  # sequential: every request is a batch of 1
                resp = await server.handle("POST", "/v1/predict",
                                           json.dumps(obj).encode())
                assert resp.status == 200, resp.body
                preds.append(json.loads(resp.body)["prediction"])
        return preds

    async def batched():
        async with ModelServer(models_dir, ServeConfig()) as server:
            resp = await server.handle(
                "POST", "/v1/predict/batch",
                json.dumps({"requests": queries}).encode())
            assert resp.status == 200, resp.body
            return json.loads(resp.body)["predictions"]

    one_by_one = asyncio.run(singles())
    together = asyncio.run(batched())
    assert len(one_by_one) == len(together) == len(queries)
    for single, batch in zip(one_by_one, together):
        assert single["model"] == batch["model"]
        assert single["q_bucket"] == batch["q_bucket"]
        # Bitwise: same float64, not approximately equal.
        assert single["mean_us"] == batch["mean_us"], (single, batch)
        assert single["std_us"] == batch["std_us"], (single, batch)
