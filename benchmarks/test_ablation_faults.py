"""Ablation: resilience machinery on/off under the three canned fault plans.

Each cell runs the full SCMD case study.  With resilience off, dropped
messages deadlock the job (bounded here by a short world timeout) and
transient component errors kill it; with resilience on, every scenario
completes, at the cost of retry rounds and retransmission charges.  A
final pair of runs prices the checkpoint subsystem.
"""

import dataclasses
import time

from conftest import write_out

from repro.faults.checkpoint import CheckpointConfig
from repro.faults.plan import canned_plans
from repro.faults.policy import ResiliencePolicy
from repro.harness.casestudy import run_case_study
from repro.mpi.runner import RankFailure
from repro.util.tabular import format_table


def timed_run(cfg):
    t0 = time.perf_counter()
    try:
        res = run_case_study(cfg)
        return time.perf_counter() - t0, res, None
    except RankFailure as exc:
        return time.perf_counter() - t0, None, exc


def test_ablation_faults(benchmark, bench_config, out_dir, tmp_path):
    plans = canned_plans()
    holder = {}

    def run():
        for name, plan in plans.items():
            for resilient in (True, False):
                cfg = dataclasses.replace(
                    bench_config,
                    params=dataclasses.replace(bench_config.params, steps=2),
                    fault_plan=plan,
                    resilience=ResiliencePolicy(retry_timeout_s=0.05)
                    if resilient else None,
                    # Without resilience a dropped message hangs until the
                    # world timeout; keep the bound short.
                    timeout_s=30.0 if resilient else 3.0,
                )
                holder[(name, resilient)] = timed_run(cfg)
        base = dataclasses.replace(
            bench_config,
            params=dataclasses.replace(bench_config.params, steps=2))
        holder[("no-faults", True)] = timed_run(base)
        holder[("no-faults+ckpt", True)] = timed_run(dataclasses.replace(
            base, checkpoint=CheckpointConfig(str(tmp_path / "ckpt"), every=1)))

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (name, resilient), (wall_s, res, err) in holder.items():
        if res is not None:
            merged = {}
            ckpt_bytes = 0
            for h in res.extras:
                ckpt_bytes += h.checkpoint_bytes
                for k, v in (h.resilience or {}).items():
                    merged[k] = merged.get(k, 0) + v
            outcome = "completed"
            detail = (f"retries={merged.get('retry_rounds', 0)} "
                      f"recovered={merged.get('recovered', 0)} "
                      f"comp_retries={merged.get('component_retries', 0)}")
            if ckpt_bytes:
                detail = f"checkpoint={ckpt_bytes / 1024:.0f} KiB"
        else:
            outcome = "FAILED"
            first = next(iter(err.failures.values()))
            detail = ("deadlock timeout" if "timed out" in first
                      else "component error" if "TransientComponentError" in first
                      else "comm failure")
        rows.append((name, "on" if resilient else "off", outcome,
                     f"{wall_s:.2f}", detail))

    table = format_table(
        ["plan", "resilience", "outcome", "wall s", "detail"],
        rows,
        title="Ablation: fault plans with resilience on/off (SCMD case study)",
    )
    write_out(out_dir, "ablation_faults.txt", table)

    # Resilience turns every canned scenario into a clean completion...
    for name in plans:
        assert holder[(name, True)][1] is not None, f"{name} failed resilient"
    # ...while without it, message loss and component errors are fatal.
    assert holder[("dropped-messages", False)][1] is None
    assert holder[("flaky-component", False)][1] is None
    # Checkpointing every step costs something but not the farm.
    base_s = holder[("no-faults", True)][0]
    ckpt_s = holder[("no-faults+ckpt", True)][0]
    assert ckpt_s < base_s * 5 + 5.0
    benchmark.extra_info.update({
        "checkpoint_overhead_s": round(ckpt_s - base_s, 3),
    })
