"""Figure 4: States execution time, sequential (X) vs strided (Y) access.

Regenerates the dual-mode timing series over the Q sweep for both sweep
implementations — the paper-faithful line-at-a-time loop (whose asymmetry
Figures 4-5 characterize) and the production batched path (whose
cache-blocked tiles shrink, but keep, the strided penalty) — and
benchmarks the States kernel at a cache-busting size in the strided mode.
"""

from conftest import write_out

from repro.euler.states import StatesKernel
from repro.harness.figures import fig4_states_modes
from repro.harness.sweeps import synthetic_patch_stack


def test_fig4_states_modes(benchmark, bench_qs, out_dir, smoke):
    repeats = 1 if smoke else 3
    fig4 = fig4_states_modes(bench_qs, nprocs=3, repeats=repeats, batch=False)
    fig4_b = fig4_states_modes(bench_qs, nprocs=3, repeats=repeats, batch=True)
    write_out(out_dir, "fig4_states_modes.txt",
              fig4.render() + "\n\n" + fig4_b.render())

    mm = fig4.mode_means()
    qx, tx = mm["x"]
    qy, ty = mm["y"]
    # Times grow with Q in both modes; strided >= ~sequential at the top.
    assert tx[-1] > tx[0] and ty[-1] > ty[0]
    assert ty[-1] >= 0.9 * tx[-1]
    benchmark.extra_info["ratio_at_max_q"] = round(float(ty[-1] / tx[-1]), 3)

    # The batched sweep keeps the asymmetry's sign (strided not faster
    # beyond noise) even though tiling shrinks its magnitude.
    mm_b = fig4_b.mode_means()
    tx_b = mm_b["x"][1]
    ty_b = mm_b["y"][1]
    assert ty_b[-1] >= 0.85 * tx_b[-1]
    benchmark.extra_info["batched_ratio_at_max_q"] = round(
        float(ty_b[-1] / tx_b[-1]), 3)
    # Batching must not cost time: faster than the line sweep at the top Q.
    assert tx_b[-1] <= tx[-1] and ty_b[-1] <= ty[-1]

    kern = StatesKernel()
    U = synthetic_patch_stack(bench_qs[-1])
    benchmark(lambda: kern.compute(U, "y"))
