"""Figure 4: States execution time, sequential (X) vs strided (Y) access.

Regenerates the dual-mode timing series over the Q sweep and benchmarks the
States kernel at a cache-busting size in the strided mode.
"""

import numpy as np
from conftest import write_out

from repro.euler.states import StatesKernel
from repro.harness.figures import fig4_states_modes
from repro.harness.sweeps import synthetic_patch_stack


def test_fig4_states_modes(benchmark, bench_qs, out_dir):
    fig4 = fig4_states_modes(bench_qs, nprocs=3, repeats=2)
    write_out(out_dir, "fig4_states_modes.txt", fig4.render())

    mm = fig4.mode_means()
    qx, tx = mm["x"]
    qy, ty = mm["y"]
    # Times grow with Q in both modes; strided >= ~sequential at the top.
    assert tx[-1] > tx[0] and ty[-1] > ty[0]
    assert ty[-1] >= 0.9 * tx[-1]
    benchmark.extra_info["ratio_at_max_q"] = round(float(ty[-1] / tx[-1]), 3)

    kern = StatesKernel()
    U = synthetic_patch_stack(bench_qs[-1])
    benchmark(lambda: kern.compute(U, "y"))
